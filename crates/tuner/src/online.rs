//! Online tuning: learn variant selection *during* deployment.
//!
//! The paper's workflow is offline: an expert runs the autotuner, ships a
//! model, end users consume it. Its conclusion, however, aims at "a
//! mainstream autotuning framework that supports both expert users and
//! the general programming community" — and general users won't run a
//! tuning script. [`OnlineCodeVariant`] closes that gap: it wraps a
//! configured [`CodeVariant`] and, with a (decaying) exploration
//! probability, pays for an exhaustive profile of the incoming input —
//! labeling it on the spot — then periodically retrains the model on
//! everything labeled so far. Selection quality converges toward the
//! offline-trained model without any training phase, in the spirit of
//! STAPL's dynamic selection (paper §I/§VI).
//!
//! Two safeguards keep long-running deployments healthy:
//!
//! * the labeled set is a **sliding window**
//!   ([`OnlineOptions::max_labels`]) — old examples age out FIFO, so
//!   memory stays bounded and the model tracks workload drift, and
//!   retraining stays deterministic under the cap;
//! * retraining waits for **at least two observed classes** — a one-class
//!   training set produces a degenerate classifier that would lock in
//!   whatever variant happened to win first.
//!
//! With [`OnlineCodeVariant::enable_promotion`], retrained models stop
//! installing directly: after the first (bootstrap) model, each retrain
//! is staged through a [`StagedPromotion`] — it shadow-predicts on
//! subsequent exploration calls and replaces the serving model only
//! after proving itself no worse, with automatic rollback on
//! post-promotion regression (see `nitro-store`).

use nitro_core::{
    CodeVariant, Invocation, ModelArtifact, NitroError, Result, TrainedModel, MODEL_SCHEMA_VERSION,
};
use nitro_ml::Dataset;
use nitro_store::{ArtifactStore, LifecycleEvent, PromotionPolicy, StagedPromotion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::profile::ProfileTable;

/// Options for online tuning.
#[derive(Debug, Clone, Copy)]
pub struct OnlineOptions {
    /// Initial probability of exploring (exhaustively profiling) a call.
    pub explore_probability: f64,
    /// Multiplied into the exploration probability after every
    /// exploration — exploration decays as the model matures.
    pub explore_decay: f64,
    /// Exploration probability never drops below this (drift guard).
    pub explore_floor: f64,
    /// Retrain after this many new labels.
    pub retrain_every: usize,
    /// Sliding-window cap on the labeled set: once full, the oldest
    /// example is evicted per new label (FIFO, deterministic). Memory
    /// stays bounded and the model tracks drift instead of averaging
    /// over stale workloads.
    pub max_labels: usize,
    /// Deterministic seed for the exploration coin.
    pub seed: u64,
}

impl Default for OnlineOptions {
    fn default() -> Self {
        Self {
            explore_probability: 0.5,
            explore_decay: 0.9,
            explore_floor: 0.02,
            retrain_every: 4,
            max_labels: 256,
            seed: 0x0821_9E37,
        }
    }
}

/// Counters describing an online tuner's life so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OnlineStats {
    /// Total dispatched calls.
    pub calls: u64,
    /// Calls that paid for exhaustive exploration.
    pub explorations: u64,
    /// Model retrains performed.
    pub retrains: u64,
    /// Labels evicted by the sliding window.
    pub window_evictions: u64,
    /// Retrained models staged as promotion candidates.
    pub staged: u64,
    /// Candidates promoted to serving.
    pub promotions: u64,
    /// Promotions automatically rolled back.
    pub rollbacks: u64,
}

/// A self-tuning `code_variant`: no offline phase required.
pub struct OnlineCodeVariant<I> {
    inner: CodeVariant<I>,
    options: OnlineOptions,
    explore_probability: f64,
    labeled: Dataset,
    since_retrain: usize,
    coin: StdRng,
    stats: OnlineStats,
    promotion_policy: Option<PromotionPolicy>,
    promotion: Option<StagedPromotion>,
    store: Option<ArtifactStore>,
}

impl<I: Send + Sync> OnlineCodeVariant<I> {
    /// Wrap a configured (but untrained) code variant.
    pub fn new(inner: CodeVariant<I>, options: OnlineOptions) -> Self {
        let labeled = Dataset::new(inner.n_variants());
        Self {
            inner,
            explore_probability: options.explore_probability,
            options,
            labeled,
            since_retrain: 0,
            coin: StdRng::seed_from_u64(options.seed),
            stats: OnlineStats::default(),
            promotion_policy: None,
            promotion: None,
            store: None,
        }
    }

    /// Route retrained models through staged promotion instead of
    /// installing them directly. The first retrain still installs
    /// directly (there is no incumbent to shadow against); every later
    /// retrain is staged, shadow-scored on exploration calls, and
    /// promoted / demoted / rolled back by the `nitro-store` state
    /// machine.
    pub fn enable_promotion(&mut self, policy: PromotionPolicy) {
        self.promotion_policy = Some(policy);
    }

    /// Persist the model lifecycle through a versioned artifact store:
    /// the bootstrap model is published, promotions publish successor
    /// versions, and auto-rollbacks move the store's `latest` pointer
    /// back. Implies nothing without [`OnlineCodeVariant::enable_promotion`].
    pub fn attach_store(&mut self, store: ArtifactStore) {
        self.store = Some(store);
    }

    /// Dispatch one call. Exploration calls run *every* variant (their
    /// returned [`Invocation`] reflects the best one found); exploitation
    /// calls behave exactly like [`CodeVariant::call`].
    pub fn call(&mut self, input: &I) -> Result<Invocation> {
        self.stats.calls += 1;
        let explore =
            !self.inner.has_model() || self.coin.random::<f64>() < self.explore_probability;
        if explore {
            self.stats.explorations += 1;
            self.explore_probability = (self.explore_probability * self.options.explore_decay)
                .max(self.options.explore_floor);
            return self.explore(input);
        }
        self.inner.call(input)
    }

    /// Exhaustively profile the input, record its label, maybe retrain,
    /// and report the best variant found.
    fn explore(&mut self, input: &I) -> Result<Invocation> {
        let (features, feature_cost_ns, costs, _) = ProfileTable::profile_one(&self.inner, input);
        let objective = self.inner.policy().objective;
        let worst = objective.worst();
        let mut best: Option<(usize, f64)> = None;
        for (v, &c) in costs.iter().enumerate() {
            if c == worst || c.is_nan() {
                continue;
            }
            if best.is_none_or(|(_, bc)| objective.better(c, bc)) {
                best = Some((v, c));
            }
        }
        let (variant, cost) = best.ok_or(NitroError::NoSelectionPossible)?;

        // Exploration produced ground truth: drive the promotion state
        // machine with it (shadow scoring, probation, rollback).
        self.feed_promotion(&features, &costs)?;

        self.labeled.push(features.clone(), variant);
        while self.labeled.len() > self.options.max_labels.max(1) {
            // FIFO eviction keeps the window — and thus every retrain —
            // a deterministic function of the label stream.
            self.labeled.x.remove(0);
            self.labeled.y.remove(0);
            self.stats.window_evictions += 1;
        }
        self.since_retrain += 1;
        let classes_seen = self
            .labeled
            .class_counts()
            .iter()
            .filter(|&&c| c > 0)
            .count();
        // A single-class training set yields a degenerate classifier that
        // would lock in whichever variant won first — wait for evidence
        // that selection is actually input-dependent.
        if self.since_retrain >= self.options.retrain_every && classes_seen >= 2 {
            let model = TrainedModel::train(&self.inner.policy().classifier, &self.labeled);
            self.since_retrain = 0;
            self.stats.retrains += 1;
            self.adopt(model)?;
        }

        Ok(Invocation {
            variant,
            variant_name: self.inner.variant_names()[variant].clone(),
            objective: cost,
            features,
            feature_cost_ns,
            fell_back_to_default: false,
        })
    }

    /// Feed one ground-truth observation to the promotion machine and
    /// apply whatever it decided (promotion or rollback swaps the
    /// serving model).
    fn feed_promotion(&mut self, features: &[f64], costs: &[f64]) -> Result<()> {
        let Some(sp) = &mut self.promotion else {
            return Ok(());
        };
        let label = format!("call{}", self.stats.calls);
        let events = sp.observe(&label, features, costs, self.store.as_mut())?;
        for event in events {
            match event {
                LifecycleEvent::Promoted { .. } => {
                    self.stats.promotions += 1;
                    self.inner.install_model(sp.current().model.clone());
                }
                LifecycleEvent::RolledBack { .. } => {
                    self.stats.rollbacks += 1;
                    self.inner.install_model(sp.current().model.clone());
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Route a freshly retrained model: direct install without
    /// promotion; bootstrap-then-stage with it.
    fn adopt(&mut self, model: TrainedModel) -> Result<()> {
        let Some(policy) = self.promotion_policy.clone() else {
            self.inner.install_model(model);
            return Ok(());
        };
        match &mut self.promotion {
            None => {
                // Bootstrap: no incumbent exists yet, so the first model
                // installs directly and seeds the state machine.
                self.inner.install_model(model);
                let artifact = self.inner.export_artifact()?;
                let mut sp = StagedPromotion::new(artifact.clone(), policy);
                if let Some(tracer) = self.inner.context().tracer() {
                    sp.attach_tracer(tracer);
                }
                if let Some(store) = &mut self.store {
                    let version = store.publish(&artifact, "online bootstrap")?;
                    sp.set_incumbent_version(Some(version));
                }
                self.promotion = Some(sp);
            }
            Some(sp) => {
                let candidate = ModelArtifact {
                    schema_version: MODEL_SCHEMA_VERSION,
                    function: self.inner.name().to_string(),
                    variant_names: self.inner.variant_names(),
                    feature_names: self.inner.feature_names(),
                    policy: self.inner.policy().clone(),
                    model,
                };
                let events = sp.stage_candidate(candidate)?;
                if events
                    .iter()
                    .any(|e| matches!(e, LifecycleEvent::Staged { .. }))
                {
                    self.stats.staged += 1;
                }
            }
        }
        Ok(())
    }

    /// Life-so-far counters.
    pub fn stats(&self) -> OnlineStats {
        self.stats
    }

    /// Labels currently held (bounded by [`OnlineOptions::max_labels`]).
    pub fn n_labels(&self) -> usize {
        self.labeled.len()
    }

    /// The promotion state machine, when enabled and bootstrapped.
    pub fn promotion(&self) -> Option<&StagedPromotion> {
        self.promotion.as_ref()
    }

    /// Mutable promotion access (operator actions: `release_hold`,
    /// `promote_now`).
    pub fn promotion_mut(&mut self) -> Option<&mut StagedPromotion> {
        self.promotion.as_mut()
    }

    /// The attached artifact store, when any.
    pub fn store(&self) -> Option<&ArtifactStore> {
        self.store.as_ref()
    }

    /// Read access to the wrapped code variant (e.g. to export the model).
    pub fn inner(&self) -> &CodeVariant<I> {
        &self.inner
    }

    /// Unwrap, keeping the learned model installed.
    pub fn into_inner(self) -> CodeVariant<I> {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nitro_core::{ClassifierConfig, Context, FnFeature, FnVariant};

    fn toy(ctx: &Context) -> CodeVariant<f64> {
        let mut cv = CodeVariant::new("online-toy", ctx);
        cv.add_variant(FnVariant::new("low", |&x: &f64| 1.0 + x));
        cv.add_variant(FnVariant::new("high", |&x: &f64| 11.0 - x));
        cv.set_default(0);
        cv.add_input_feature(FnFeature::new("x", |&x: &f64| x));
        cv.policy_mut().classifier = ClassifierConfig::Knn { k: 3 };
        cv
    }

    /// Deterministic stream of inputs spanning both regimes.
    fn stream(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i * 37) % 100) as f64 / 10.0).collect()
    }

    #[test]
    fn first_call_explores_and_installs_a_model_eventually() {
        let ctx = Context::new();
        let mut online = OnlineCodeVariant::new(toy(&ctx), OnlineOptions::default());
        for x in stream(40) {
            online.call(&x).unwrap();
        }
        let stats = online.stats();
        assert!(stats.explorations >= 4, "{stats:?}");
        assert!(stats.retrains >= 1, "{stats:?}");
        assert!(online.inner().has_model());
    }

    #[test]
    fn converges_to_correct_selection_without_offline_tuning() {
        let ctx = Context::new();
        let mut online = OnlineCodeVariant::new(toy(&ctx), OnlineOptions::default());
        // Warm-up traffic.
        for x in stream(120) {
            online.call(&x).unwrap();
        }
        // Fresh traffic must be routed correctly (x < 5 → low, else high).
        let mut correct = 0;
        let probes = [0.5, 2.0, 4.0, 6.0, 8.0, 9.5];
        for &x in &probes {
            let out = online.call(&x).unwrap();
            let expected = if x < 5.0 { "low" } else { "high" };
            // Exploration calls always pick the true best, exploitation
            // uses the model; both should match the expectation by now.
            if out.variant_name == expected {
                correct += 1;
            }
        }
        assert!(correct >= 5, "{correct}/6 correct after online training");
    }

    #[test]
    fn exploration_rate_decays() {
        let ctx = Context::new();
        let mut online = OnlineCodeVariant::new(
            toy(&ctx),
            OnlineOptions {
                explore_probability: 1.0,
                explore_decay: 0.5,
                ..Default::default()
            },
        );
        for x in stream(200) {
            online.call(&x).unwrap();
        }
        let s = online.stats();
        // With decay 0.5 from 1.0 and floor 0.02, explorations should be a
        // small fraction of 200 calls.
        assert!(s.explorations < 40, "{s:?}");
        assert!(s.calls == 200);
    }

    #[test]
    fn into_inner_keeps_the_learned_model() {
        let ctx = Context::new();
        let mut online = OnlineCodeVariant::new(toy(&ctx), OnlineOptions::default());
        for x in stream(60) {
            online.call(&x).unwrap();
        }
        let mut cv = online.into_inner();
        assert!(cv.has_model());
        assert_eq!(cv.call(&9.0).unwrap().variant_name, "high");
    }

    #[test]
    fn one_class_traffic_never_trains_a_degenerate_model() {
        let ctx = Context::new();
        let mut online = OnlineCodeVariant::new(toy(&ctx), OnlineOptions::default());
        // Only x < 5: variant "low" always wins, one class observed.
        for i in 0..30 {
            online.call(&((i % 40) as f64 / 10.0)).unwrap();
        }
        assert_eq!(online.stats().retrains, 0, "{:?}", online.stats());
        assert!(!online.inner().has_model());
        // The moment the second regime appears, retraining unlocks.
        for i in 0..30 {
            online.call(&(6.0 + (i % 30) as f64 / 10.0)).unwrap();
        }
        assert!(online.stats().retrains >= 1, "{:?}", online.stats());
        assert!(online.inner().has_model());
    }

    #[test]
    fn sliding_window_caps_labels_deterministically() {
        let ctx = Context::new();
        let opts = OnlineOptions {
            explore_probability: 1.0,
            explore_decay: 1.0,
            explore_floor: 1.0, // explore every call
            max_labels: 8,
            ..Default::default()
        };
        let mut a = OnlineCodeVariant::new(toy(&ctx), opts);
        let mut b = OnlineCodeVariant::new(toy(&ctx), opts);
        for x in stream(50) {
            a.call(&x).unwrap();
            b.call(&x).unwrap();
        }
        assert_eq!(a.n_labels(), 8);
        assert!(a.stats().window_evictions > 0);
        // Same stream, same window → identical labeled sets and stats.
        assert_eq!(a.stats(), b.stats());
        let (ma, mb) = (
            a.inner().export_artifact().unwrap(),
            b.inner().export_artifact().unwrap(),
        );
        assert_eq!(ma.to_json().unwrap(), mb.to_json().unwrap());
    }

    #[test]
    fn promotion_routes_retrains_through_staging() {
        let ctx = Context::new();
        let opts = OnlineOptions {
            explore_probability: 1.0,
            explore_decay: 1.0,
            explore_floor: 1.0, // every call explores → observations flow
            retrain_every: 4,
            ..Default::default()
        };
        let mut online = OnlineCodeVariant::new(toy(&ctx), opts);
        online.enable_promotion(PromotionPolicy {
            shadow_window: 5,
            probation_window: 5,
            ..Default::default()
        });
        for x in stream(80) {
            online.call(&x).unwrap();
        }
        let s = online.stats();
        assert!(s.retrains >= 2, "{s:?}");
        assert!(s.staged >= 1, "bootstrap then staged retrains: {s:?}");
        let sp = online.promotion().expect("bootstrapped");
        assert_eq!(sp.function(), "online-toy");
        // Equivalent retrains promote (no-worse bar) without rollback.
        assert_eq!(s.rollbacks, 0, "{s:?}");
        assert!(online.inner().has_model());
    }

    #[test]
    fn promotion_with_store_publishes_versions() {
        let dir = nitro_core::context::temp_model_dir("online-store").unwrap();
        let ctx = Context::new();
        let opts = OnlineOptions {
            explore_probability: 1.0,
            explore_decay: 1.0,
            explore_floor: 1.0,
            retrain_every: 4,
            ..Default::default()
        };
        let mut online = OnlineCodeVariant::new(toy(&ctx), opts);
        online.enable_promotion(PromotionPolicy {
            shadow_window: 5,
            probation_window: 5,
            ..Default::default()
        });
        online.attach_store(ArtifactStore::open(&dir, "online-toy").unwrap());
        for x in stream(80) {
            online.call(&x).unwrap();
        }
        let store = online.store().unwrap();
        assert!(store.latest().is_some(), "bootstrap published");
        let s = online.stats();
        if s.promotions > 0 {
            assert!(store.versions().len() >= 2);
        }
        assert!(store.verify().is_empty(), "store intact");
        std::fs::remove_dir_all(dir).ok();
    }
}
