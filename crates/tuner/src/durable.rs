//! Durable, resumable tuning: [`Autotuner::tune_durable`].
//!
//! Exhaustive profiling is the expensive phase of tuning; a crash used
//! to throw all of it away. `tune_durable` writes every profiled
//! `(input × variant)` cell to a [`TuningJournal`] write-ahead log as it
//! is measured. On restart with the same journal it replays the valid
//! prefix, re-profiles **only** the missing cells and trains exactly as
//! an uninterrupted run would — profiling and training are
//! deterministic, so the final artifact is **bit-identical** whether
//! the run was interrupted zero times or twenty.
//!
//! Works for both tuning modes:
//!
//! * **full** — missing rows are profiled in parallel chunks, appended
//!   in input order, and the assembled [`ProfileTable`] is identical to
//!   [`ProfileTable::build`]'s;
//! * **incremental** — the seed-probe order is a seeded shuffle and the
//!   active-learning query sequence is a deterministic function of the
//!   labeled data, so a resumed run re-walks the same cells and finds
//!   them cached in the journal.
//!
//! The journal validates its [`JournalHeader`] (function, variant and
//! feature lists, objective, corpus size, policy checksum) before
//! resuming: tuning a changed registration against an old journal is a
//! [`nitro_core::NitroError::ModelMismatch`], not silent corruption.

use nitro_core::{crc32, CodeVariant, Result};
use nitro_store::{JournalHeader, JournalRecord, TuningJournal, JOURNAL_FORMAT_VERSION};
use rayon::prelude::*;

use crate::autotuner::{preflight, Autotuner, CellSource, Phases, TuneReport};
use crate::profile::{ProfileRow, ProfileTable};

/// Inputs profiled per parallel batch between journal flushes. Larger
/// batches profile faster; smaller ones lose less work to a crash. The
/// value never affects results, only crash granularity.
const PROFILE_CHUNK: usize = 32;

/// The journal-backed [`CellSource`]: replays recorded cells, appends
/// fresh ones.
struct JournaledCells<'j> {
    journal: &'j mut TuningJournal,
    replayed: usize,
}

impl JournaledCells<'_> {
    /// Reconstruct a fully journaled row (`None` when any piece is
    /// missing). `cost: None` cells read back as the objective's worst
    /// value, exactly as profiling recorded them.
    fn replay_row(&self, idx: usize, n_variants: usize, worst: f64) -> Option<ProfileRow> {
        let replay = self.journal.replay();
        let (features, fcost) = replay.features(idx)?.clone();
        let mut costs = Vec::with_capacity(n_variants);
        let mut allowed = Vec::with_capacity(n_variants);
        for v in 0..n_variants {
            let cell = replay.cell(idx, v)?;
            costs.push(cell.cost.unwrap_or(worst));
            allowed.push(cell.allowed);
        }
        Some((features, fcost, costs, allowed))
    }

    /// Append the pieces of a freshly profiled row the journal does not
    /// already hold (a torn tail can leave a row half-recorded; the
    /// re-profiled values are identical by determinism, so only the gaps
    /// are written).
    fn record_row(&mut self, idx: usize, row: &ProfileRow) -> Result<()> {
        let (features, fcost, costs, allowed) = row;
        if self.journal.replay().features(idx).is_none() {
            self.journal.append(&JournalRecord::Features {
                input: idx as u64,
                features: features.clone(),
                feature_cost_ns: *fcost,
            })?;
        }
        for v in 0..costs.len() {
            if self.journal.replay().cell(idx, v).is_none() {
                self.journal.append(&JournalRecord::Cell {
                    input: idx as u64,
                    variant: v as u64,
                    cost: allowed[v].then_some(costs[v]),
                    allowed: allowed[v],
                })?;
            }
        }
        Ok(())
    }
}

impl<I: ?Sized + Send + Sync> CellSource<I> for JournaledCells<'_> {
    fn profile(&mut self, cv: &CodeVariant<I>, idx: usize, input: &I) -> Result<ProfileRow> {
        let n = cv.n_variants();
        let worst = cv.policy().objective.worst();
        if let Some(row) = self.replay_row(idx, n, worst) {
            self.replayed += n;
            return Ok(row);
        }
        let row = ProfileTable::profile_one(cv, input);
        self.record_row(idx, &row)?;
        self.journal.sync()?;
        Ok(row)
    }

    fn replayed_cells(&self) -> usize {
        self.replayed
    }
}

/// The run identity `tune_durable` stamps into (and validates against)
/// a journal.
fn run_header<I: ?Sized>(cv: &CodeVariant<I>, n_inputs: usize) -> Result<JournalHeader> {
    let policy_json = serde_json::to_string(cv.policy())?;
    Ok(JournalHeader {
        format_version: JOURNAL_FORMAT_VERSION,
        function: cv.name().to_string(),
        variant_names: cv.variant_names(),
        feature_names: cv.active_feature_names(),
        objective: cv.policy().objective,
        n_inputs: n_inputs as u64,
        policy_crc: crc32(policy_json.as_bytes()),
    })
}

impl Autotuner {
    /// Tune like [`Autotuner::tune`], journaling every profiled cell to
    /// `journal` so an interrupted run can be resumed by calling
    /// `tune_durable` again with the same journal — already-profiled
    /// cells are replayed instead of re-measured
    /// ([`TuneReport::replayed_cells`] counts them) and the final
    /// artifact is bit-identical to an uninterrupted run's.
    ///
    /// Open-time recovery findings (`NITRO070`/`NITRO071` for a torn or
    /// bit-rotted journal tail) ride along in
    /// [`TuneReport::audit_warnings`].
    pub fn tune_durable<I>(
        &self,
        cv: &mut CodeVariant<I>,
        inputs: &[I],
        journal: &mut TuningJournal,
    ) -> Result<TuneReport>
    where
        I: Send + Sync,
    {
        let mut audit_warnings = preflight(cv, inputs.len())?;
        audit_warnings.extend(journal.recovery_diagnostics().iter().cloned());
        journal.begin(&run_header(cv, inputs.len())?)?;
        let phases = Phases::new(cv, self.pulse.clone());
        match cv.policy().incremental {
            None => self.durable_full(cv, inputs, journal, audit_warnings, phases),
            Some(criterion) => {
                let mut source = JournaledCells {
                    journal,
                    replayed: 0,
                };
                let report = self.itune(
                    cv,
                    inputs,
                    criterion,
                    None,
                    audit_warnings,
                    phases,
                    &mut source,
                )?;
                if !journal.replay().has_phase("tuning_complete") {
                    journal.append_phase("tuning_complete")?;
                }
                Ok(report)
            }
        }
    }

    /// The durable full-tuning path: replay complete rows, profile the
    /// rest in parallel chunks (journaling each chunk before starting
    /// the next), then train from the assembled table.
    fn durable_full<I>(
        &self,
        cv: &mut CodeVariant<I>,
        inputs: &[I],
        journal: &mut TuningJournal,
        audit_warnings: Vec<nitro_core::Diagnostic>,
        mut phases: Phases,
    ) -> Result<TuneReport>
    where
        I: Send + Sync,
    {
        let n_variants = cv.n_variants();
        let worst = cv.policy().objective.worst();
        let mut source = JournaledCells {
            journal,
            replayed: 0,
        };

        let mut rows: Vec<Option<ProfileRow>> = (0..inputs.len())
            .map(|idx| source.replay_row(idx, n_variants, worst))
            .collect();
        source.replayed = rows.iter().filter(|r| r.is_some()).count() * n_variants;

        let missing: Vec<usize> = (0..inputs.len()).filter(|&i| rows[i].is_none()).collect();
        phases.run("profiling", || -> Result<()> {
            for chunk in missing.chunks(PROFILE_CHUNK) {
                let profiled: Vec<(usize, ProfileRow)> = chunk
                    .par_iter()
                    .map(|&idx| (idx, ProfileTable::profile_one(cv, &inputs[idx])))
                    .collect();
                for (idx, row) in profiled {
                    source.record_row(idx, &row)?;
                    rows[idx] = Some(row);
                }
                source.journal.sync()?;
            }
            Ok(())
        })?;
        let replayed = source.replayed;
        if !source.journal.replay().has_phase("profiling_complete") {
            source.journal.append_phase("profiling_complete")?;
        }

        let mut table = ProfileTable {
            objective: cv.policy().objective,
            variant_names: cv.variant_names(),
            feature_names: cv.active_feature_names(),
            costs: Vec::with_capacity(rows.len()),
            features: Vec::with_capacity(rows.len()),
            feature_cost_ns: Vec::with_capacity(rows.len()),
            allowed: Vec::with_capacity(rows.len()),
        };
        for row in rows {
            let (features, fcost, costs, allowed) = row.expect("every input profiled or replayed");
            table.features.push(features);
            table.feature_cost_ns.push(fcost);
            table.costs.push(costs);
            table.allowed.push(allowed);
        }

        let mut report = self.finish_from_table(cv, &table, audit_warnings, phases)?;
        report.replayed_cells = replayed;
        if !journal.replay().has_phase("tuning_complete") {
            journal.append_phase("tuning_complete")?;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nitro_core::context::temp_model_dir;
    use nitro_core::{ClassifierConfig, Context, FnFeature, FnVariant, StoppingCriterion};

    fn toy(ctx: &Context) -> CodeVariant<f64> {
        let mut cv = CodeVariant::new("toy", ctx);
        cv.add_variant(FnVariant::new("rising", |&x: &f64| 1.0 + x));
        cv.add_variant(FnVariant::new("falling", |&x: &f64| 11.0 - x));
        cv.set_default(0);
        cv.add_input_feature(FnFeature::new("x", |&x: &f64| x));
        cv.policy_mut().classifier = ClassifierConfig::Svm {
            c: Some(10.0),
            gamma: Some(1.0),
            grid_search: false,
            cache_bytes: None,
        };
        cv
    }

    fn training_inputs() -> Vec<f64> {
        (0..40).map(|i| i as f64 * 0.25).collect()
    }

    fn artifact_bytes(cv: &CodeVariant<f64>) -> String {
        cv.export_artifact().unwrap().to_json().unwrap()
    }

    #[test]
    fn durable_tune_matches_plain_tune_bit_for_bit() {
        let dir = temp_model_dir("durable-same").unwrap();
        let ctx = Context::new();
        let inputs = training_inputs();

        let mut plain = toy(&ctx);
        Autotuner::new().tune(&mut plain, &inputs).unwrap();

        let mut durable = toy(&ctx);
        let mut journal = TuningJournal::open(dir.join("toy.journal.jsonl")).unwrap();
        let report = Autotuner::new()
            .tune_durable(&mut durable, &inputs, &mut journal)
            .unwrap();
        assert_eq!(report.replayed_cells, 0);
        assert_eq!(artifact_bytes(&plain), artifact_bytes(&durable));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn killed_tune_resumes_bit_identical_with_replayed_cells() {
        let dir = temp_model_dir("durable-resume").unwrap();
        let path = dir.join("toy.journal.jsonl");
        let ctx = Context::new();
        let inputs = training_inputs();

        let mut reference = toy(&ctx);
        Autotuner::new().tune(&mut reference, &inputs).unwrap();

        // Crash mid-profiling: the kill hook tears the journal tail.
        {
            let mut cv = toy(&ctx);
            let mut journal = TuningJournal::open(&path).unwrap();
            journal.kill_after_appends(25);
            let err = Autotuner::new().tune_durable(&mut cv, &inputs, &mut journal);
            assert!(err.is_err(), "simulated crash must surface");
        }

        // Resume: recovery warning, replayed cells, identical artifact.
        let mut cv = toy(&ctx);
        let mut journal = TuningJournal::open(&path).unwrap();
        assert_eq!(journal.recovery_diagnostics().len(), 1);
        let report = Autotuner::new()
            .tune_durable(&mut cv, &inputs, &mut journal)
            .unwrap();
        assert!(report.replayed_cells > 0, "{report:?}");
        assert!(report.audit_warnings.iter().any(|d| d.code == "NITRO070"));
        assert_eq!(artifact_bytes(&reference), artifact_bytes(&cv));

        // A third run replays everything and re-profiles nothing.
        let mut cv = toy(&ctx);
        let mut journal = TuningJournal::open(&path).unwrap();
        let report = Autotuner::new()
            .tune_durable(&mut cv, &inputs, &mut journal)
            .unwrap();
        assert_eq!(report.replayed_cells, inputs.len() * 2);
        assert_eq!(artifact_bytes(&reference), artifact_bytes(&cv));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn incremental_durable_resumes_bit_identical() {
        let dir = temp_model_dir("durable-itune").unwrap();
        let path = dir.join("toy.journal.jsonl");
        let ctx = Context::new();
        let inputs = training_inputs();

        let mut reference = toy(&ctx);
        reference.policy_mut().incremental = Some(StoppingCriterion::Iterations(6));
        Autotuner::new().tune(&mut reference, &inputs).unwrap();

        {
            let mut cv = toy(&ctx);
            cv.policy_mut().incremental = Some(StoppingCriterion::Iterations(6));
            let mut journal = TuningJournal::open(&path).unwrap();
            journal.kill_after_appends(9);
            assert!(Autotuner::new()
                .tune_durable(&mut cv, &inputs, &mut journal)
                .is_err());
        }

        let mut cv = toy(&ctx);
        cv.policy_mut().incremental = Some(StoppingCriterion::Iterations(6));
        let mut journal = TuningJournal::open(&path).unwrap();
        let report = Autotuner::new()
            .tune_durable(&mut cv, &inputs, &mut journal)
            .unwrap();
        assert!(report.replayed_cells > 0);
        assert_eq!(artifact_bytes(&reference), artifact_bytes(&cv));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn changed_registration_refuses_an_old_journal() {
        let dir = temp_model_dir("durable-mismatch").unwrap();
        let path = dir.join("toy.journal.jsonl");
        let ctx = Context::new();
        let inputs = training_inputs();
        {
            let mut cv = toy(&ctx);
            let mut journal = TuningJournal::open(&path).unwrap();
            Autotuner::new()
                .tune_durable(&mut cv, &inputs, &mut journal)
                .unwrap();
        }
        // Add a variant: the journal must be rejected, not misapplied.
        let mut cv = toy(&ctx);
        cv.add_variant(FnVariant::new("third", |&x: &f64| x * 2.0));
        let mut journal = TuningJournal::open(&path).unwrap();
        let err = Autotuner::new()
            .tune_durable(&mut cv, &inputs, &mut journal)
            .unwrap_err();
        assert!(err.to_string().contains("variant lists differ"), "{err}");
        // A changed policy is rejected through the policy checksum.
        let mut cv = toy(&ctx);
        cv.policy_mut().classifier = ClassifierConfig::Knn { k: 3 };
        let mut journal = TuningJournal::open(&path).unwrap();
        let err = Autotuner::new()
            .tune_durable(&mut cv, &inputs, &mut journal)
            .unwrap_err();
        assert!(err.to_string().contains("policy"), "{err}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn completed_journal_marks_phases() {
        let dir = temp_model_dir("durable-phases").unwrap();
        let path = dir.join("toy.journal.jsonl");
        let ctx = Context::new();
        let mut cv = toy(&ctx);
        let mut journal = TuningJournal::open(&path).unwrap();
        Autotuner::new()
            .tune_durable(&mut cv, &training_inputs(), &mut journal)
            .unwrap();
        assert!(journal.replay().has_phase("profiling_complete"));
        assert!(journal.replay().has_phase("tuning_complete"));
        std::fs::remove_dir_all(dir).ok();
    }
}
