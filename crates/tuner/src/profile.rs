//! Exhaustive profiling: the ground truth the autotuner learns from.
//!
//! For each training input the autotuner "performs exhaustive search over
//! the code variants and assigns to label y_i the integer designating the
//! variant that leads to the best performance" (paper §III-A). The
//! [`ProfileTable`] materializes that search — per-input feature vectors,
//! per-variant objective values and constraint verdicts — and is reused by
//! every experiment harness (Figures 5–8 all derive from it).

use nitro_core::{CodeVariant, Objective};
use nitro_ml::Dataset;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Ground-truth profiling data for a set of inputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileTable {
    /// Objective direction the costs were recorded under.
    pub objective: Objective,
    /// Variant names, in index order.
    pub variant_names: Vec<String>,
    /// Active feature names, in vector order.
    pub feature_names: Vec<String>,
    /// `costs[input][variant]`: objective value; `objective.worst()` for
    /// constraint-vetoed variants.
    pub costs: Vec<Vec<f64>>,
    /// `features[input]`: the active feature vector.
    pub features: Vec<Vec<f64>>,
    /// Simulated feature-evaluation cost per input (ns).
    pub feature_cost_ns: Vec<f64>,
    /// `allowed[input][variant]`: constraint verdicts (all true when the
    /// policy disables constraints).
    pub allowed: Vec<Vec<bool>>,
}

/// One profiled input: `(features, feature_cost_ns, costs, allowed)`.
pub type ProfileRow = (Vec<f64>, f64, Vec<f64>, Vec<bool>);

impl ProfileTable {
    /// Exhaustively profile `inputs` under the code variant's policy.
    ///
    /// Inputs are profiled in parallel; determinism is preserved as long
    /// as each variant execution is deterministic for a given input
    /// (which the simulated benchmark substrates guarantee).
    pub fn build<I>(cv: &CodeVariant<I>, inputs: &[I]) -> Self
    where
        I: Send + Sync,
    {
        let objective = cv.policy().objective;
        let rows: Vec<ProfileRow> = inputs
            .par_iter()
            .map(|input| Self::profile_one(cv, input))
            .collect();

        let mut table = Self {
            objective,
            variant_names: cv.variant_names(),
            feature_names: cv.active_feature_names(),
            costs: Vec::with_capacity(rows.len()),
            features: Vec::with_capacity(rows.len()),
            feature_cost_ns: Vec::with_capacity(rows.len()),
            allowed: Vec::with_capacity(rows.len()),
        };
        for (features, fcost, costs, allowed) in rows {
            table.features.push(features);
            table.feature_cost_ns.push(fcost);
            table.costs.push(costs);
            table.allowed.push(allowed);
        }
        table
    }

    /// Profile a single input: features plus every variant's objective.
    pub fn profile_one<I>(cv: &CodeVariant<I>, input: &I) -> ProfileRow
    where
        I: ?Sized + Send + Sync,
    {
        let (features, fcost) = cv.evaluate_features(input);
        let objective = cv.policy().objective;
        let mut costs = Vec::with_capacity(cv.n_variants());
        let mut allowed = Vec::with_capacity(cv.n_variants());
        let mut failures = 0u64;
        for v in 0..cv.n_variants() {
            let ok = cv.constraints_satisfied(v, input);
            if !ok {
                // Paper §II-B: constraints "force the variant to return an
                // ∞ value during the offline training phase".
                allowed.push(false);
                costs.push(objective.worst());
                continue;
            }
            // Failure-isolated execution: a variant that panics (or
            // reports a non-finite objective) on this input is recorded
            // like a vetoed one — worst cost, not allowed — so labels
            // come from the surviving variants and an input where every
            // variant fails simply drops out of the training set
            // (see [`ProfileTable::labels`]).
            match cv.try_run_variant(v, input) {
                Ok(c) => {
                    allowed.push(true);
                    costs.push(c);
                }
                Err(_) => {
                    failures += 1;
                    allowed.push(false);
                    costs.push(objective.worst());
                }
            }
        }
        if let Some(tracer) = cv.context().tracer() {
            if failures > 0 {
                tracer
                    .metrics()
                    .add(&format!("profile.{}.failures", cv.name()), failures);
            }
            // One instant per profiled input carrying the full ground
            // truth — vetoed variants show as null (∞ has no JSON form).
            tracer.instant(
                &format!("profile:{}", cv.name()),
                "profile",
                vec![
                    nitro_trace::arg("features", &features),
                    nitro_trace::arg("feature_cost_ns", &fcost),
                    nitro_trace::arg("costs", &costs),
                    nitro_trace::arg("allowed", &allowed),
                ],
            );
            tracer
                .metrics()
                .inc(&format!("profile.{}.inputs", cv.name()));
        }
        (features, fcost, costs, allowed)
    }

    /// Number of profiled inputs.
    pub fn len(&self) -> usize {
        self.costs.len()
    }

    /// True when the table holds no inputs.
    pub fn is_empty(&self) -> bool {
        self.costs.is_empty()
    }

    /// Number of variants profiled.
    pub fn n_variants(&self) -> usize {
        self.variant_names.len()
    }

    /// The best variant for one input, or `None` if every variant was
    /// vetoed / failed (e.g. no solver converged).
    pub fn best_variant(&self, input: usize) -> Option<usize> {
        let worst = self.objective.worst();
        let mut best: Option<(usize, f64)> = None;
        for (v, &c) in self.costs[input].iter().enumerate() {
            if c == worst || c.is_nan() {
                continue;
            }
            if best.is_none_or(|(_, bc)| self.objective.better(c, bc)) {
                best = Some((v, c));
            }
        }
        best.map(|(v, _)| v)
    }

    /// The best achievable objective value for one input.
    pub fn best_cost(&self, input: usize) -> Option<f64> {
        self.best_variant(input).map(|v| self.costs[input][v])
    }

    /// Exhaustive-search labels for all inputs (inputs where no variant
    /// succeeded are dropped; the returned pairs are `(input, label)`).
    pub fn labels(&self) -> Vec<(usize, usize)> {
        (0..self.len())
            .filter_map(|i| self.best_variant(i).map(|v| (i, v)))
            .collect()
    }

    /// Relative performance (paper's "% of best") of running `variant` on
    /// `input`: 1.0 = matched exhaustive search, 0.0 = failed/vetoed.
    pub fn relative_perf(&self, input: usize, variant: usize) -> f64 {
        let Some(best) = self.best_cost(input) else {
            return 0.0;
        };
        let c = self.costs[input][variant];
        if c == self.objective.worst() || c.is_nan() {
            return 0.0;
        }
        self.objective.relative(c, best)
    }

    /// The labeled dataset for model training: one example per input that
    /// has a well-defined best variant.
    pub fn dataset(&self) -> Dataset {
        let mut d = Dataset::new(self.n_variants());
        for (i, label) in self.labels() {
            d.push(self.features[i].clone(), label);
        }
        d
    }

    /// A copy of this table restricted to the given feature columns (by
    /// index into `feature_names`). Variant costs are untouched, so the
    /// Figure-8 feature-pruning study can retrain on subsets without
    /// paying for profiling again.
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn with_feature_subset(&self, indices: &[usize]) -> ProfileTable {
        let mut out = self.clone();
        out.feature_names = indices
            .iter()
            .map(|&i| self.feature_names[i].clone())
            .collect();
        out.features = self
            .features
            .iter()
            .map(|row| indices.iter().map(|&i| row[i]).collect())
            .collect();
        out
    }

    /// Borrow this table as a [`nitro_audit::ProfileView`] for the
    /// profile analyzer. `function` names the diagnostics' subject (the
    /// table itself doesn't record which function it profiled).
    pub fn audit_view<'a>(&'a self, function: &'a str) -> nitro_audit::ProfileView<'a> {
        nitro_audit::ProfileView {
            function,
            objective: self.objective,
            variant_names: &self.variant_names,
            feature_names: &self.feature_names,
            costs: &self.costs,
            features: &self.features,
        }
    }

    /// Serialize to JSON (experiment harnesses cache profiles to disk).
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> serde_json::Result<Self> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nitro_core::{Context, FnConstraint, FnFeature, FnVariant};

    /// Toy function: variant 0 costs x, variant 1 costs 10 − x.
    fn toy() -> CodeVariant<f64> {
        let ctx = Context::new();
        let mut cv = CodeVariant::new("toy", &ctx);
        cv.add_variant(FnVariant::new("rising", |&x: &f64| x));
        cv.add_variant(FnVariant::new("falling", |&x: &f64| 10.0 - x));
        cv.set_default(0);
        cv.add_input_feature(FnFeature::new("x", |&x: &f64| x));
        cv
    }

    #[test]
    fn builds_costs_and_labels() {
        let cv = toy();
        let inputs = vec![1.0, 4.0, 6.0, 9.0];
        let t = ProfileTable::build(&cv, &inputs);
        assert_eq!(t.len(), 4);
        assert_eq!(t.best_variant(0), Some(0)); // cost 1 vs 9
        assert_eq!(t.best_variant(3), Some(1)); // cost 9 vs 1
        let labels: Vec<usize> = t.labels().into_iter().map(|(_, l)| l).collect();
        assert_eq!(labels, vec![0, 0, 1, 1]);
    }

    #[test]
    fn constraint_veto_maps_to_worst_cost() {
        let mut cv = toy();
        cv.add_constraint(1, FnConstraint::new("never", |_: &f64| false))
            .unwrap();
        let t = ProfileTable::build(&cv, &[9.0]);
        assert_eq!(t.costs[0][1], f64::INFINITY);
        assert!(!t.allowed[0][1]);
        assert_eq!(t.best_variant(0), Some(0));
    }

    #[test]
    fn failing_variant_is_labeled_from_survivors() {
        // Variant 1 panics for x > 5 (a "crashes on large inputs" bug):
        // profiling must survive and label those inputs from variant 0.
        let ctx = Context::new();
        let mut cv = CodeVariant::new("fragile", &ctx);
        cv.add_variant(FnVariant::new("steady", |&x: &f64| x));
        cv.add_variant(FnVariant::new("crashy", |&x: &f64| {
            if x > 5.0 {
                panic!("injected variant failure: 'crashy'");
            }
            x * 0.5
        }));
        cv.set_default(0);
        cv.add_input_feature(FnFeature::new("x", |&x: &f64| x));

        let t = ProfileTable::build(&cv, &[2.0, 4.0, 8.0, 9.0]);
        // Small inputs: crashy executed and won.
        assert!(t.allowed[0][1] && t.allowed[1][1]);
        assert_eq!(t.best_variant(0), Some(1));
        // Large inputs: crashy failed — worst cost, not allowed, label
        // comes from the surviving variant.
        assert_eq!(t.costs[2][1], f64::INFINITY);
        assert!(!t.allowed[2][1]);
        assert_eq!(t.best_variant(2), Some(0));
        let labels: Vec<usize> = t.labels().into_iter().map(|(_, l)| l).collect();
        assert_eq!(labels, vec![1, 1, 0, 0]);
    }

    #[test]
    fn input_where_every_variant_fails_is_dropped() {
        let ctx = Context::new();
        let mut cv = CodeVariant::new("doomed", &ctx);
        cv.add_variant(FnVariant::new("a", |&x: &f64| {
            if x > 5.0 {
                panic!("injected variant failure: 'a'");
            }
            x
        }));
        cv.add_variant(FnVariant::new("b", |&_x: &f64| f64::NAN));
        cv.set_default(0);
        cv.add_input_feature(FnFeature::new("x", |&x: &f64| x));

        let t = ProfileTable::build(&cv, &[1.0, 9.0]);
        assert_eq!(t.best_variant(1), None, "no survivor on input 1");
        assert_eq!(t.labels(), vec![(0, 0)]);
        // The failure counter reaches the tracer when one is installed.
        let tracer = nitro_trace::Tracer::new(std::sync::Arc::new(nitro_trace::RingSink::new(64)));
        cv.context().install_tracer(tracer.clone());
        ProfileTable::profile_one(&cv, &9.0);
        assert_eq!(tracer.metrics().counter("profile.doomed.failures"), Some(2));
        cv.context().clear_tracer();
    }

    #[test]
    fn all_vetoed_input_has_no_label() {
        let mut cv = toy();
        cv.add_constraint(0, FnConstraint::new("no0", |_: &f64| false))
            .unwrap();
        cv.add_constraint(1, FnConstraint::new("no1", |_: &f64| false))
            .unwrap();
        let t = ProfileTable::build(&cv, &[5.0]);
        assert_eq!(t.best_variant(0), None);
        assert!(t.labels().is_empty());
        assert_eq!(t.relative_perf(0, 0), 0.0);
    }

    #[test]
    fn relative_perf_matches_cost_ratio() {
        let cv = toy();
        let t = ProfileTable::build(&cv, &[2.0]); // costs [2, 8]
        assert_eq!(t.relative_perf(0, 0), 1.0);
        assert_eq!(t.relative_perf(0, 1), 0.25);
    }

    #[test]
    fn dataset_has_one_row_per_labeled_input() {
        let cv = toy();
        let t = ProfileTable::build(&cv, &[1.0, 9.0]);
        let d = t.dataset();
        assert_eq!(d.len(), 2);
        assert_eq!(d.n_classes, 2);
        assert_eq!(d.x[0], vec![1.0]);
    }

    #[test]
    fn json_round_trip() {
        let cv = toy();
        let t = ProfileTable::build(&cv, &[1.0, 9.0]);
        let j = t.to_json().unwrap();
        assert_eq!(ProfileTable::from_json(&j).unwrap(), t);
    }

    #[test]
    fn feature_subset_slices_columns_only() {
        let mut cv = toy();
        cv.add_input_feature(FnFeature::new("x2", |&x: &f64| x * x));
        let t = ProfileTable::build(&cv, &[2.0, 3.0]);
        let s = t.with_feature_subset(&[1]);
        assert_eq!(s.feature_names, vec!["x2".to_string()]);
        assert_eq!(s.features, vec![vec![4.0], vec![9.0]]);
        assert_eq!(s.costs, t.costs);
    }

    #[test]
    fn maximize_objective_flips_best() {
        let mut cv = toy();
        cv.policy_mut().objective = Objective::Maximize;
        let t = ProfileTable::build(&cv, &[1.0]); // values [1, 9]
        assert_eq!(t.best_variant(0), Some(1));
        assert!((t.relative_perf(0, 0) - 1.0 / 9.0).abs() < 1e-12);
    }
}
