//! The Nitro autotuner: offline training of variant-selection models.
//!
//! Plays the role of the paper's Python autotuner (§II-C / Table II): it
//! takes a configured [`CodeVariant`] plus training inputs, performs
//! exhaustive search to label them, fits the configured classifier and
//! installs the model. When the policy requests incremental tuning
//! (`itune`), only a fraction of the training inputs is exhaustively
//! profiled, chosen by Best-vs-Second-Best active learning (§III-B).

use nitro_audit::{audit_artifact_against, audit_fastpath, lint_cache_budget, lint_registration};
use nitro_core::diag::registry::codes;
use nitro_core::{
    diag::{has_errors, Diagnostic},
    CodeVariant, NitroError, Result, StoppingCriterion, TrainedModel,
};
use nitro_ml::{ActiveLearner, Dataset, SvmTrainStats};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::profile::{ProfileRow, ProfileTable};
use crate::report::evaluate_model;

/// Where the tuner gets per-input profile rows from. The plain paths use
/// [`DirectCells`] (profile every request); `tune_durable` (in
/// [`crate::durable`]) substitutes a journal-backed source that replays
/// already-recorded cells and appends fresh ones to the write-ahead log.
pub(crate) trait CellSource<I: ?Sized> {
    /// Produce the profile row for `inputs[idx]`.
    fn profile(&mut self, cv: &CodeVariant<I>, idx: usize, input: &I) -> Result<ProfileRow>;
    /// Cells satisfied from a journal instead of re-profiling.
    fn replayed_cells(&self) -> usize {
        0
    }
}

/// The non-durable source: always profiles.
pub(crate) struct DirectCells;

impl<I: ?Sized + Send + Sync> CellSource<I> for DirectCells {
    fn profile(&mut self, cv: &CodeVariant<I>, _idx: usize, input: &I) -> Result<ProfileRow> {
        Ok(ProfileTable::profile_one(cv, input))
    }
}

/// Wall-clock time one tuning phase took (serialized in [`TuneReport`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseTiming {
    /// Phase name: `profiling`, `labeling`, `training` or `evaluation`.
    pub phase: String,
    /// Accumulated wall-clock nanoseconds spent in the phase.
    pub wall_ns: f64,
}

/// Phase accounting for one tuning run: emits a `phase:<name>` span per
/// section when a tracer is installed, and always accumulates wall-clock
/// per phase so [`TuneReport::phase_timings`] is populated either way.
pub(crate) struct Phases {
    tracer: Option<nitro_trace::Tracer>,
    pulse: Option<nitro_pulse::PulseRegistry>,
    function: String,
    timings: Vec<PhaseTiming>,
}

impl Phases {
    pub(crate) fn new<I: ?Sized>(
        cv: &CodeVariant<I>,
        pulse: Option<nitro_pulse::PulseRegistry>,
    ) -> Self {
        Self {
            tracer: cv.context().tracer(),
            pulse,
            function: cv.name().to_string(),
            timings: Vec::new(),
        }
    }

    /// Run `f` attributed to `phase`. Repeated sections under the same
    /// name (e.g. each incremental re-fit) accumulate into one timing.
    pub(crate) fn run<T>(&mut self, phase: &str, f: impl FnOnce() -> T) -> T {
        let span = self
            .tracer
            .as_ref()
            .map(|t| t.span(&format!("phase:{phase}"), "tuning", vec![]));
        let start = std::time::Instant::now();
        let out = f();
        let wall_ns = start.elapsed().as_nanos() as f64;
        drop(span);
        match self.timings.iter_mut().find(|p| p.phase == phase) {
            Some(p) => p.wall_ns += wall_ns,
            None => self.timings.push(PhaseTiming {
                phase: phase.to_string(),
                wall_ns,
            }),
        }
        out
    }

    /// Export the accumulated timings (also published as
    /// `tune.<fn>.<phase>_ns` gauges when a tracer is installed).
    fn finish(self) -> Vec<PhaseTiming> {
        if let Some(t) = &self.tracer {
            for p in &self.timings {
                t.metrics()
                    .set_gauge(&format!("tune.{}.{}_ns", self.function, p.phase), p.wall_ns);
            }
        }
        if let Some(r) = &self.pulse {
            // Gauges mirror the tracer's; the sketch accumulates phase
            // durations across repeated tuning runs, so re-tune storms
            // show up as a fattening tail in `tune.<fn>.phase_ns`.
            let sketch = r.sketch(&format!("tune.{}.phase_ns", self.function));
            for p in &self.timings {
                r.gauge(&format!("tune.{}.{}_ns", self.function, p.phase))
                    .set(p.wall_ns);
                sketch.record(p.wall_ns);
            }
        }
        self.timings
    }
}

/// Global autotuner options (the per-function options live in the
/// `CodeVariant`'s [`nitro_core::TuningPolicy`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Autotuner {
    /// Deterministic seed for the incremental tuner's initial sample.
    pub seed: u64,
    /// Upper bound on inputs profiled while searching for an initial
    /// example of each variant label.
    pub max_seed_probes: usize,
    /// Hard cap on active-learning iterations under an accuracy criterion.
    pub max_incremental_iterations: usize,
    /// Persist the model through the context after tuning.
    pub save_model: bool,
    /// Pulse registry receiving `tune.<fn>.<phase>_ns` gauges and the
    /// `tune.<fn>.phase_ns` duration sketch. Not serialized; attach
    /// with [`Autotuner::with_pulse`].
    #[serde(skip)]
    pub pulse: Option<nitro_pulse::PulseRegistry>,
}

impl Default for Autotuner {
    fn default() -> Self {
        Self {
            seed: 0x417,
            max_seed_probes: 16,
            max_incremental_iterations: 200,
            save_model: false,
            pulse: None,
        }
    }
}

/// What a tuning run did.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct TuneReport {
    /// Total training inputs supplied.
    pub training_inputs: usize,
    /// Inputs actually exhaustively profiled (== `training_inputs` for
    /// full tuning; usually far fewer for incremental tuning).
    pub profiled_inputs: usize,
    /// Inputs dropped because no variant produced a valid result.
    pub dropped_inputs: usize,
    /// Labeled examples per class in the final training set.
    pub class_counts: Vec<usize>,
    /// Cross-validation accuracy from grid search, when it ran.
    pub cv_accuracy: Option<f64>,
    /// Active-learning iterations performed (0 for full tuning).
    pub incremental_iterations: usize,
    /// Model accuracy on the test table after each incremental iteration
    /// (empty without a test table). Entry 0 is the seed-only model.
    pub accuracy_history: Vec<f64>,
    /// Snapshot of the model after each incremental iteration (entry 0 is
    /// the seed-only model; empty for full tuning). Lets experiment
    /// harnesses plot performance-vs-iterations (paper Figure 7) from a
    /// single tuning run.
    #[serde(skip)]
    pub model_history: Vec<TrainedModel>,
    /// Non-fatal findings from the pre-tuning registration lint and the
    /// post-tuning artifact audit. Error-severity findings never land
    /// here — they abort tuning as [`NitroError::Audit`] instead.
    #[serde(default)]
    pub audit_warnings: Vec<Diagnostic>,
    /// Per-phase wall-clock breakdown of the tuning run (profiling /
    /// labeling / training / evaluation), in execution order.
    #[serde(default)]
    pub phase_timings: Vec<PhaseTiming>,
    /// SVM solver statistics from the final model fit: kernel
    /// evaluations, cache hit rate and support-vector compression.
    /// `None` for non-SVM classifiers and for incremental tuning (whose
    /// final fit happens inside the active learner).
    #[serde(default)]
    pub svm_train_stats: Option<SvmTrainStats>,
    /// Profile cells satisfied by replaying a tuning journal instead of
    /// re-profiling (always 0 outside `tune_durable`).
    #[serde(default)]
    pub replayed_cells: usize,
}

impl Autotuner {
    /// Create an autotuner with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish phase timings into a pulse registry as well: per-phase
    /// `tune.<fn>.<phase>_ns` gauges plus the accumulating
    /// `tune.<fn>.phase_ns` sketch.
    pub fn with_pulse(mut self, registry: &nitro_pulse::PulseRegistry) -> Self {
        self.pulse = Some(registry.clone());
        self
    }

    /// Tune a code variant on `inputs`, honouring the policy's
    /// incremental-tuning setting. Installs the trained model and returns
    /// a report.
    pub fn tune<I>(&self, cv: &mut CodeVariant<I>, inputs: &[I]) -> Result<TuneReport>
    where
        I: Send + Sync,
    {
        self.tune_impl(cv, inputs, None)
    }

    /// Like [`Autotuner::tune`], but with a pre-profiled test table: the
    /// incremental tuner can then use an accuracy stopping criterion and
    /// the report carries an accuracy history (paper Figure 7).
    pub fn tune_with_test<I>(
        &self,
        cv: &mut CodeVariant<I>,
        inputs: &[I],
        test: &ProfileTable,
    ) -> Result<TuneReport>
    where
        I: Send + Sync,
    {
        self.tune_impl(cv, inputs, Some(test))
    }

    /// Full (non-incremental) tuning from an existing profile table.
    /// Useful when the caller already paid for exhaustive profiling.
    pub fn tune_from_table<I>(
        &self,
        cv: &mut CodeVariant<I>,
        table: &ProfileTable,
    ) -> Result<TuneReport>
    where
        I: Send + Sync,
    {
        let audit_warnings = preflight(cv, table.len())?;
        let phases = Phases::new(cv, self.pulse.clone());
        self.finish_from_table(cv, table, audit_warnings, phases)
    }

    /// The table-training tail shared by [`Autotuner::tune_from_table`],
    /// the non-incremental [`Autotuner::tune`] path and `tune_durable`
    /// (all of which have already run the registration lint).
    pub(crate) fn finish_from_table<I>(
        &self,
        cv: &mut CodeVariant<I>,
        table: &ProfileTable,
        mut audit_warnings: Vec<Diagnostic>,
        mut phases: Phases,
    ) -> Result<TuneReport>
    where
        I: Send + Sync,
    {
        let data = phases.run("labeling", || table.dataset());
        if data.is_empty() {
            return Err(NitroError::ModelMismatch {
                detail: "no training input produced a valid label".into(),
            });
        }
        let (model, svm_train_stats) = phases.run("training", || {
            TrainedModel::train_with_stats(&cv.policy().classifier, &data)
        });
        if let (Some(t), Some(stats)) = (cv.context().tracer(), &svm_train_stats) {
            t.metrics()
                .set_gauge("ml.train.cache_hit_rate", stats.cache_hit_rate());
        }
        let cv_accuracy = grid_cv_accuracy(&model);
        cv.install_model(model);
        let findings = phases.run("evaluation", || postflight(cv, &data));
        audit_warnings.extend(findings);
        if self.save_model {
            cv.save_model()?;
        }
        Ok(TuneReport {
            training_inputs: table.len(),
            profiled_inputs: table.len(),
            dropped_inputs: table.len() - data.len(),
            class_counts: data.class_counts(),
            cv_accuracy,
            incremental_iterations: 0,
            accuracy_history: Vec::new(),
            model_history: Vec::new(),
            audit_warnings,
            phase_timings: phases.finish(),
            svm_train_stats,
            replayed_cells: 0,
        })
    }

    fn tune_impl<I>(
        &self,
        cv: &mut CodeVariant<I>,
        inputs: &[I],
        test: Option<&ProfileTable>,
    ) -> Result<TuneReport>
    where
        I: Send + Sync,
    {
        // Pre-flight: refuse to spend profiling time on a registration
        // the linter can already prove broken.
        let audit_warnings = preflight(cv, inputs.len())?;
        let mut phases = Phases::new(cv, self.pulse.clone());
        match cv.policy().incremental {
            None => {
                let table = phases.run("profiling", || ProfileTable::build(cv, inputs));
                self.finish_from_table(cv, &table, audit_warnings, phases)
            }
            Some(criterion) => self.itune(
                cv,
                inputs,
                criterion,
                test,
                audit_warnings,
                phases,
                &mut DirectCells,
            ),
        }
    }

    /// Incremental tuning: profile only a seed plus actively-queried
    /// inputs. Profiling goes through `source`, so the durable path can
    /// replay journaled cells — the query sequence is deterministic
    /// (seeded shuffle + deterministic fits), so a resumed run re-walks
    /// the same cells and finds them cached.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn itune<I>(
        &self,
        cv: &mut CodeVariant<I>,
        inputs: &[I],
        criterion: StoppingCriterion,
        test: Option<&ProfileTable>,
        mut audit_warnings: Vec<Diagnostic>,
        mut phases: Phases,
        source: &mut dyn CellSource<I>,
    ) -> Result<TuneReport>
    where
        I: Send + Sync,
    {
        // Feature vectors for the whole pool are cheap (§III-B: "the
        // execution time required to derive feature vectors is typically
        // far lower than the cost of actually executing variants").
        let features: Vec<Vec<f64>> = phases.run("profiling", || {
            inputs
                .par_iter()
                .map(|i| cv.evaluate_features(i).0)
                .collect()
        });

        // Deterministically shuffled probe order for the seed.
        let mut order: Vec<usize> = (0..inputs.len()).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        order.shuffle(&mut rng);

        let mut seed = Dataset::new(cv.n_variants());
        let mut profiled = 0usize;
        let mut dropped = 0usize;
        let mut seen_labels = vec![false; cv.n_variants()];
        let mut in_seed = vec![false; inputs.len()];
        for &idx in &order {
            if profiled >= self.max_seed_probes || seen_labels.iter().all(|&s| s) {
                break;
            }
            let (_, _, costs, _) =
                phases.run("profiling", || source.profile(cv, idx, &inputs[idx]))?;
            profiled += 1;
            in_seed[idx] = true;
            let label = phases.run("labeling", || best_of(&costs, cv));
            match label {
                Some(l) => {
                    seen_labels[l] = true;
                    seed.push(features[idx].clone(), l);
                }
                None => dropped += 1,
            }
        }
        if seed.is_empty() {
            return Err(NitroError::ModelMismatch {
                detail: "incremental tuning found no labelable seed input".into(),
            });
        }

        let pool: Vec<(usize, Vec<f64>)> = (0..inputs.len())
            .filter(|&i| !in_seed[i])
            .map(|i| (i, features[i].clone()))
            .collect();
        let mut learner = ActiveLearner::new(seed, pool);
        let config = cv.policy().classifier.clone();
        let mut model = phases.run("training", || learner.fit(&config));
        let mut model_history = vec![model.clone()];

        let mut accuracy_history = Vec::new();
        let record_accuracy = |model: &TrainedModel, history: &mut Vec<f64>| {
            if let Some(t) = test {
                let preds: Vec<usize> = (0..t.len())
                    .map(|i| model.predict(&t.features[i]))
                    .collect();
                let labeled = t.labels();
                let correct = labeled.iter().filter(|&&(i, l)| preds[i] == l).count();
                history.push(if labeled.is_empty() {
                    0.0
                } else {
                    correct as f64 / labeled.len() as f64
                });
            }
        };
        phases.run("evaluation", || {
            record_accuracy(&model, &mut accuracy_history)
        });

        let max_iters = match criterion {
            StoppingCriterion::Iterations(n) => n,
            StoppingCriterion::Accuracy(_) => self.max_incremental_iterations,
        };
        let mut iterations = 0usize;
        while iterations < max_iters {
            if let (StoppingCriterion::Accuracy(threshold), Some(&acc)) =
                (criterion, accuracy_history.last())
            {
                if acc >= threshold {
                    break;
                }
            }
            let Some((pos, original)) = learner.next_query(&model) else {
                break;
            };
            let (_, _, costs, _) = phases.run("profiling", || {
                source.profile(cv, original, &inputs[original])
            })?;
            profiled += 1;
            match phases.run("labeling", || best_of(&costs, cv)) {
                Some(label) => learner.label(pos, label),
                None => {
                    dropped += 1;
                    learner.discard(pos);
                    continue; // an unlabelable input doesn't count as an iteration
                }
            }
            model = phases.run("training", || learner.fit(&config));
            model_history.push(model.clone());
            iterations += 1;
            phases.run("evaluation", || {
                record_accuracy(&model, &mut accuracy_history)
            });
        }

        let class_counts = learner.labeled().class_counts();
        let cv_accuracy = grid_cv_accuracy(&model);
        cv.install_model(model);
        audit_warnings.extend(postflight(cv, learner.labeled()));
        if self.save_model {
            cv.save_model()?;
        }
        Ok(TuneReport {
            training_inputs: inputs.len(),
            profiled_inputs: profiled,
            dropped_inputs: dropped,
            class_counts,
            cv_accuracy,
            incremental_iterations: iterations,
            accuracy_history,
            model_history,
            audit_warnings,
            phase_timings: phases.finish(),
            svm_train_stats: None,
            replayed_cells: source.replayed_cells(),
        })
    }

    /// Convenience wrapper: tune, then immediately evaluate on a profiled
    /// test table (the Figure 6 pipeline).
    pub fn tune_and_evaluate<I>(
        &self,
        cv: &mut CodeVariant<I>,
        train_inputs: &[I],
        test_table: &ProfileTable,
    ) -> Result<(TuneReport, crate::report::EvalSummary)>
    where
        I: Send + Sync,
    {
        let report = self.tune(cv, train_inputs)?;
        let model = cv.export_artifact()?.model;
        let summary = evaluate_model(test_table, &model, cv.default_variant());
        Ok((report, summary))
    }
}

/// Pre-tuning registration lint: error findings abort as
/// [`NitroError::Audit`]; warnings and infos are returned for the report.
///
/// When the registration carries declarative predicate constraints the
/// whole-configuration deep pass runs too: a statically dead variant or
/// broken fallback cascade (`NITRO080`/`NITRO084`) aborts before any
/// profiling budget is spent on a configuration that cannot dispatch as
/// registered. (`NITRO086` cannot fire here — no model is installed yet;
/// it runs in postflight instead.)
pub(crate) fn preflight<I: ?Sized>(
    cv: &CodeVariant<I>,
    training_size: usize,
) -> Result<Vec<Diagnostic>> {
    let mut diagnostics = lint_registration(cv, Some(training_size));
    diagnostics.extend(lint_cache_budget(
        &cv.policy().classifier,
        training_size,
        cv.name(),
    ));
    if cv.has_predicate_constraints() {
        let graph = nitro_audit::TuningGraph::from_code_variant(cv);
        diagnostics.extend(nitro_audit::analyze_graph(&graph));
    }
    if has_errors(&diagnostics) {
        return Err(NitroError::Audit { diagnostics });
    }
    Ok(diagnostics)
}

/// Post-tuning audit: a freshly exported artifact is audited against the
/// registration it came from, and the model's compiled prediction fast
/// path is checked against the training set (`NITRO060`/`NITRO062`). Any
/// findings ride along in the report.
fn postflight<I: ?Sized>(cv: &CodeVariant<I>, data: &Dataset) -> Vec<Diagnostic> {
    match cv.export_artifact() {
        Ok(artifact) => {
            let mut out = audit_artifact_against(&artifact, cv);
            out.extend(audit_fastpath(&artifact.model, data, cv.name()));
            if cv.has_predicate_constraints() {
                // With the freshly trained model installed the deep pass
                // can now check model-label exhaustiveness. Preflight
                // already reported the structural findings, so only the
                // model-dependent NITRO086 rides along here.
                let graph = nitro_audit::TuningGraph::from_code_variant(cv);
                out.extend(
                    nitro_audit::analyze_graph(&graph)
                        .into_iter()
                        .filter(|d| d.code == "NITRO086"),
                );
            }
            out
        }
        Err(e) => vec![Diagnostic::error(
            codes::NITRO001,
            cv.name(),
            format!("freshly tuned model could not be exported for audit: {e}"),
        )],
    }
}

/// Best variant index from a cost row, under the code variant's objective.
fn best_of<I: ?Sized>(costs: &[f64], cv: &CodeVariant<I>) -> Option<usize> {
    let objective = cv.policy().objective;
    let worst = objective.worst();
    let mut best: Option<(usize, f64)> = None;
    for (v, &c) in costs.iter().enumerate() {
        if c == worst || c.is_nan() {
            continue;
        }
        if best.is_none_or(|(_, bc)| objective.better(c, bc)) {
            best = Some((v, c));
        }
    }
    best.map(|(v, _)| v)
}

/// Pull the grid-search CV accuracy out of an SVM model, if present.
fn grid_cv_accuracy(model: &TrainedModel) -> Option<f64> {
    match model {
        TrainedModel::Svm { cv_accuracy, .. } => *cv_accuracy,
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nitro_core::{ClassifierConfig, Context, FnFeature, FnVariant};

    /// Variant 0 is best for x < 5, variant 1 for x ≥ 5.
    fn toy(ctx: &Context) -> CodeVariant<f64> {
        let mut cv = CodeVariant::new("toy", ctx);
        cv.add_variant(FnVariant::new("rising", |&x: &f64| 1.0 + x));
        cv.add_variant(FnVariant::new("falling", |&x: &f64| 11.0 - x));
        cv.set_default(0);
        cv.add_input_feature(FnFeature::new("x", |&x: &f64| x));
        cv.policy_mut().classifier = ClassifierConfig::Svm {
            c: Some(10.0),
            gamma: Some(1.0),
            grid_search: false,
            cache_bytes: None,
        };
        cv
    }

    fn training_inputs() -> Vec<f64> {
        (0..40).map(|i| i as f64 * 0.25).collect() // 0..10
    }

    #[test]
    fn full_tuning_installs_accurate_model() {
        let ctx = Context::new();
        let mut cv = toy(&ctx);
        let report = Autotuner::new().tune(&mut cv, &training_inputs()).unwrap();
        assert!(cv.has_model());
        assert_eq!(report.profiled_inputs, 40);
        assert_eq!(report.incremental_iterations, 0);
        assert_eq!(cv.call(&1.0).unwrap().variant, 0);
        assert_eq!(cv.call(&9.0).unwrap().variant, 1);
    }

    #[test]
    fn incremental_tuning_profiles_fewer_inputs() {
        let ctx = Context::new();
        let mut cv = toy(&ctx);
        cv.policy_mut().incremental = Some(StoppingCriterion::Iterations(8));
        let inputs = training_inputs();
        let report = Autotuner::new().tune(&mut cv, &inputs).unwrap();
        assert!(
            report.profiled_inputs < inputs.len() / 2,
            "profiled {} of {}",
            report.profiled_inputs,
            inputs.len()
        );
        assert_eq!(cv.call(&0.5).unwrap().variant, 0);
        assert_eq!(cv.call(&9.5).unwrap().variant, 1);
    }

    #[test]
    fn accuracy_criterion_stops_early() {
        let ctx = Context::new();
        let mut cv = toy(&ctx);
        cv.policy_mut().incremental = Some(StoppingCriterion::Accuracy(0.9));
        let inputs = training_inputs();
        let test_table = ProfileTable::build(&toy(&ctx), &inputs);
        let report = Autotuner::new()
            .tune_with_test(&mut cv, &inputs, &test_table)
            .unwrap();
        assert!(report.accuracy_history.last().copied().unwrap_or(0.0) >= 0.9);
        assert!(report.incremental_iterations < inputs.len());
    }

    #[test]
    fn tune_and_evaluate_reports_high_performance() {
        let ctx = Context::new();
        let mut cv = toy(&ctx);
        let train = training_inputs();
        let test: Vec<f64> = (0..100).map(|i| 0.05 + i as f64 * 0.1).collect();
        let test_table = ProfileTable::build(&toy(&ctx), &test);
        let (_, summary) = Autotuner::new()
            .tune_and_evaluate(&mut cv, &train, &test_table)
            .unwrap();
        assert!(
            summary.mean_relative_perf > 0.95,
            "perf {}",
            summary.mean_relative_perf
        );
    }

    #[test]
    fn empty_variants_is_an_error() {
        let ctx = Context::new();
        let mut cv: CodeVariant<f64> = CodeVariant::new("none", &ctx);
        let err = Autotuner::new().tune(&mut cv, &[1.0]).unwrap_err();
        assert!(
            err.diagnostics().iter().any(|d| d.code == "NITRO010"),
            "{err}"
        );
    }

    #[test]
    fn statically_dead_variant_aborts_preflight() {
        let ctx = Context::new();
        let mut cv = toy(&ctx);
        // x <= 3 && x >= 4 is unsatisfiable: variant 1 can never run.
        cv.add_predicate_constraint(1, "low", nitro_core::Predicate::le(0, 3.0))
            .unwrap();
        cv.add_predicate_constraint(1, "high", nitro_core::Predicate::ge(0, 4.0))
            .unwrap();
        let err = Autotuner::new()
            .tune(&mut cv, &training_inputs())
            .unwrap_err();
        assert!(
            err.diagnostics().iter().any(|d| d.code == "NITRO080"),
            "{err}"
        );
        assert!(!cv.has_model());
    }

    #[test]
    fn satisfiable_predicates_tune_clean_through_the_deep_pass() {
        let ctx = Context::new();
        let mut cv = toy(&ctx);
        cv.add_predicate_constraint(1, "nonneg", nitro_core::Predicate::ge(0, 0.0))
            .unwrap();
        let report = Autotuner::new().tune(&mut cv, &training_inputs()).unwrap();
        assert!(cv.has_model());
        assert!(
            !report
                .audit_warnings
                .iter()
                .any(|d| d.code.starts_with("NITRO08")),
            "{:?}",
            report.audit_warnings
        );
    }

    #[test]
    fn invalid_registration_is_refused_with_audit_error() {
        let ctx = Context::new();
        let mut cv = toy(&ctx);
        cv.set_default(9); // not a registered variant
        let err = Autotuner::new()
            .tune(&mut cv, &training_inputs())
            .unwrap_err();
        assert!(matches!(err, NitroError::Audit { .. }), "{err}");
        assert!(err.diagnostics().iter().any(|d| d.code == "NITRO014"));
        assert!(
            !cv.has_model(),
            "no model may be installed after a refused tune"
        );
    }

    #[test]
    fn registration_warnings_ride_in_the_report() {
        let ctx = Context::new();
        let mut cv = toy(&ctx);
        cv.policy_mut().classifier = ClassifierConfig::Knn { k: 500 }; // > training size
        let report = Autotuner::new().tune(&mut cv, &training_inputs()).unwrap();
        assert!(
            report.audit_warnings.iter().any(|d| d.code == "NITRO018"),
            "{:?}",
            report.audit_warnings
        );
        assert!(cv.has_model());
    }

    #[test]
    fn fresh_tune_produces_no_error_findings() {
        use nitro_core::Severity;
        let ctx = Context::new();
        let mut cv = toy(&ctx);
        let report = Autotuner::new().tune(&mut cv, &training_inputs()).unwrap();
        assert!(
            !report
                .audit_warnings
                .iter()
                .any(|d| d.severity == Severity::Error),
            "{:?}",
            report.audit_warnings
        );
    }

    #[test]
    fn full_tuning_reports_phase_timings() {
        let ctx = Context::new();
        let mut cv = toy(&ctx);
        let report = Autotuner::new().tune(&mut cv, &training_inputs()).unwrap();
        let names: Vec<&str> = report
            .phase_timings
            .iter()
            .map(|p| p.phase.as_str())
            .collect();
        assert_eq!(
            names,
            vec!["profiling", "labeling", "training", "evaluation"]
        );
        assert!(report.phase_timings.iter().all(|p| p.wall_ns >= 0.0));
        // phase_timings survive serialization (fig7-style reporting).
        let json = serde_json::to_string(&report).unwrap();
        let back: TuneReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.phase_timings, report.phase_timings);
    }

    #[test]
    fn pulsed_tuning_publishes_phase_gauges_and_duration_sketch() {
        let registry = nitro_pulse::PulseRegistry::with_stripes(2);
        let ctx = Context::new();
        let mut cv = toy(&ctx);
        let report = Autotuner::new()
            .with_pulse(&registry)
            .tune(&mut cv, &training_inputs())
            .unwrap();
        for p in &report.phase_timings {
            assert_eq!(
                registry.gauge_value(&format!("tune.toy.{}_ns", p.phase)),
                Some(p.wall_ns)
            );
        }
        let sketch = registry
            .fused_sketch("tune.toy.phase_ns")
            .expect("duration sketch registered");
        assert_eq!(sketch.count() as usize, report.phase_timings.len());
    }

    #[test]
    fn traced_tuning_emits_phase_spans_profile_instants_and_gauges() {
        let ctx = Context::new();
        let sink = std::sync::Arc::new(nitro_trace::RingSink::new(4096));
        let tracer = nitro_trace::Tracer::new(sink.clone());
        ctx.install_tracer(tracer.clone());
        let mut cv = toy(&ctx);
        let report = Autotuner::new().tune(&mut cv, &training_inputs()).unwrap();

        let events = sink.snapshot();
        let phase_names: std::collections::HashSet<&str> = events
            .iter()
            .filter(|e| e.cat == "tuning")
            .map(|e| e.name.as_str())
            .collect();
        for expected in [
            "phase:profiling",
            "phase:labeling",
            "phase:training",
            "phase:evaluation",
        ] {
            assert!(phase_names.contains(expected), "missing {expected}");
        }
        // One per-input profiling instant per training input, carrying
        // the ground-truth cost vector.
        let profile_events: Vec<_> = events
            .iter()
            .filter(|e| e.cat == "profile" && e.name == "profile:toy")
            .collect();
        assert_eq!(profile_events.len(), training_inputs().len());
        assert!(profile_events[0].args.iter().any(|(k, _)| k == "costs"));
        assert_eq!(
            tracer.metrics().counter("profile.toy.inputs"),
            Some(training_inputs().len() as u64)
        );
        for p in &report.phase_timings {
            let gauge = tracer
                .metrics()
                .gauge(&format!("tune.toy.{}_ns", p.phase))
                .unwrap_or_else(|| panic!("gauge for {}", p.phase));
            assert_eq!(gauge, p.wall_ns);
        }
        // The SVM final fit publishes its kernel-cache hit rate.
        let stats = report.svm_train_stats.expect("svm fit reports stats");
        let hit_rate = tracer
            .metrics()
            .gauge("ml.train.cache_hit_rate")
            .expect("hit-rate gauge");
        assert_eq!(hit_rate, stats.cache_hit_rate());
        assert!((0.0..=1.0).contains(&hit_rate));
        assert!(stats.kernel_evals > 0);
    }

    #[test]
    fn undersized_cache_budget_refuses_to_tune() {
        let ctx = Context::new();
        let mut cv = toy(&ctx);
        cv.policy_mut().classifier = ClassifierConfig::Svm {
            c: Some(10.0),
            gamma: Some(1.0),
            grid_search: false,
            cache_bytes: Some(8), // one f64: less than one kernel column
        };
        let err = Autotuner::new()
            .tune(&mut cv, &training_inputs())
            .unwrap_err();
        assert!(matches!(err, NitroError::Audit { .. }), "{err}");
        assert!(err.diagnostics().iter().any(|d| d.code == "NITRO061"));
        assert!(!cv.has_model());
    }

    #[test]
    fn incremental_tuning_reports_phase_timings_too() {
        let ctx = Context::new();
        let mut cv = toy(&ctx);
        cv.policy_mut().incremental = Some(StoppingCriterion::Iterations(4));
        let report = Autotuner::new().tune(&mut cv, &training_inputs()).unwrap();
        let names: Vec<&str> = report
            .phase_timings
            .iter()
            .map(|p| p.phase.as_str())
            .collect();
        assert!(names.contains(&"profiling"));
        assert!(names.contains(&"training"));
    }

    #[test]
    fn save_model_persists_through_context() {
        let dir = nitro_core::context::temp_model_dir("tuner-save").unwrap();
        let ctx = Context::with_model_dir(&dir);
        let mut cv = toy(&ctx);
        let tuner = Autotuner {
            save_model: true,
            ..Default::default()
        };
        tuner.tune(&mut cv, &training_inputs()).unwrap();
        assert!(ctx.model_path("toy").unwrap().exists());

        let mut fresh = toy(&ctx);
        fresh.load_model().unwrap();
        assert_eq!(fresh.call(&9.0).unwrap().variant, 1);
        std::fs::remove_dir_all(dir).ok();
    }
}
