//! Evaluation reports: the numbers the paper's figures are built from.

use nitro_core::TrainedModel;
use serde::{Deserialize, Serialize};

use crate::profile::ProfileTable;

/// Summary of a selection strategy evaluated against exhaustive search on
/// a profiled test set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalSummary {
    /// Inputs with a well-defined best variant (the denominator).
    pub n_inputs: usize,
    /// Mean relative performance vs exhaustive search (paper Figure 6).
    pub mean_relative_perf: f64,
    /// Fraction of inputs achieving ≥ 70% of exhaustive-search performance.
    pub frac_ge_70: f64,
    /// Fraction of inputs achieving ≥ 90%.
    pub frac_ge_90: f64,
    /// Inputs where the chosen variant was not the true best.
    pub mispredictions: usize,
    /// Inputs where the chosen variant failed outright (vetoed or
    /// non-converging): relative performance 0.
    pub failures: usize,
}

/// Evaluate an explicit per-input choice against the table's ground truth.
/// `chosen[i]` is the variant executed for input `i`.
pub fn evaluate_selection(table: &ProfileTable, chosen: &[usize]) -> EvalSummary {
    assert_eq!(chosen.len(), table.len(), "one choice per input");
    let mut perfs = Vec::new();
    let mut mispredictions = 0;
    let mut failures = 0;
    for (i, &choice) in chosen.iter().enumerate() {
        let Some(best) = table.best_variant(i) else {
            continue;
        };
        let p = table.relative_perf(i, choice);
        if choice != best {
            mispredictions += 1;
        }
        if p == 0.0 {
            failures += 1;
        }
        perfs.push(p);
    }
    summarize(&perfs, mispredictions, failures)
}

/// Evaluate a trained model on a profiled test set, reproducing the online
/// dispatch semantics: the model picks a variant from the features; if
/// constraints vetoed it on that input, the default variant runs instead.
pub fn evaluate_model(
    table: &ProfileTable,
    model: &TrainedModel,
    default_variant: Option<usize>,
) -> EvalSummary {
    let chosen: Vec<usize> = (0..table.len())
        .map(|i| {
            let pred = model
                .predict(&table.features[i])
                .min(table.n_variants() - 1);
            if table.allowed[i][pred] {
                pred
            } else {
                default_variant.unwrap_or(0)
            }
        })
        .collect();
    evaluate_selection(table, &chosen)
}

/// Evaluate the strategy "always run variant `v`" (the per-variant bars of
/// Figure 5).
pub fn evaluate_fixed_variant(table: &ProfileTable, v: usize) -> EvalSummary {
    evaluate_selection(table, &vec![v; table.len()])
}

fn summarize(perfs: &[f64], mispredictions: usize, failures: usize) -> EvalSummary {
    let n = perfs.len();
    if n == 0 {
        return EvalSummary {
            n_inputs: 0,
            mean_relative_perf: 0.0,
            frac_ge_70: 0.0,
            frac_ge_90: 0.0,
            mispredictions,
            failures,
        };
    }
    EvalSummary {
        n_inputs: n,
        mean_relative_perf: perfs.iter().sum::<f64>() / n as f64,
        frac_ge_70: perfs.iter().filter(|&&p| p >= 0.70).count() as f64 / n as f64,
        frac_ge_90: perfs.iter().filter(|&&p| p >= 0.90).count() as f64 / n as f64,
        mispredictions,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nitro_core::{CodeVariant, Context, FnFeature, FnVariant};
    use nitro_ml::{ClassifierConfig, TrainedModel};

    fn table() -> ProfileTable {
        let ctx = Context::new();
        let mut cv = CodeVariant::new("toy", &ctx);
        cv.add_variant(FnVariant::new("rising", |&x: &f64| x));
        cv.add_variant(FnVariant::new("falling", |&x: &f64| 10.0 - x));
        cv.set_default(0);
        cv.add_input_feature(FnFeature::new("x", |&x: &f64| x));
        ProfileTable::build(&cv, &[1.0, 2.0, 8.0, 9.0])
    }

    #[test]
    fn oracle_selection_scores_one() {
        let t = table();
        let labels: Vec<usize> = t.labels().into_iter().map(|(_, l)| l).collect();
        let s = evaluate_selection(&t, &labels);
        assert_eq!(s.mean_relative_perf, 1.0);
        assert_eq!(s.mispredictions, 0);
        assert_eq!(s.frac_ge_90, 1.0);
    }

    #[test]
    fn fixed_variant_pays_on_half_the_inputs() {
        let t = table();
        let s = evaluate_fixed_variant(&t, 0);
        // Inputs 1, 2 are best on variant 0 (perf 1.0); inputs 8, 9 pay
        // ratios 2/8 and 1/9.
        assert_eq!(s.mispredictions, 2);
        assert!(s.mean_relative_perf < 0.7);
    }

    #[test]
    fn perfect_model_matches_oracle() {
        let t = table();
        let model = TrainedModel::train(&ClassifierConfig::Knn { k: 1 }, &t.dataset());
        let s = evaluate_model(&t, &model, Some(0));
        assert_eq!(s.mean_relative_perf, 1.0);
    }

    #[test]
    fn empty_table_summary_is_zeroed() {
        let t = ProfileTable {
            objective: Default::default(),
            variant_names: vec!["a".into()],
            feature_names: vec![],
            costs: vec![],
            features: vec![],
            feature_cost_ns: vec![],
            allowed: vec![],
        };
        let s = evaluate_selection(&t, &[]);
        assert_eq!(s.n_inputs, 0);
        assert_eq!(s.mean_relative_perf, 0.0);
    }
}
