//! Per-block cost accounting: the API kernels charge their work through.
//!
//! A kernel body receives one [`BlockCtx`] per thread block. Fine-grained
//! methods ([`BlockCtx::warp_gather`], [`BlockCtx::warp_loop`], …) take the
//! actual addresses/trip counts the block touches, so coalescing and
//! divergence costs emerge from the data itself. Bulk methods
//! ([`BlockCtx::bulk_read`], …) let large streaming kernels (the sorts)
//! account work per pass without enumerating every address.

use crate::cache::TexCache;
use crate::config::DeviceConfig;
use crate::stats::KernelTally;
use crate::{SEGMENT_BYTES, WARP_SIZE};

/// Memory space an atomic operation targets; global atomics additionally
/// pay device-wide hot-address contention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicSpace {
    /// On-chip shared memory (block-local), cheap but still serialized on
    /// same-address conflicts within a warp.
    Shared,
    /// Off-chip global memory: expensive, and hot addresses serialize
    /// device-wide.
    Global,
}

/// Cost-accounting context handed to the kernel body for each thread block.
pub struct BlockCtx<'a> {
    cfg: &'a DeviceConfig,
    tex: &'a mut TexCache,
    tally: KernelTally,
    scratch: Vec<u64>,
}

impl<'a> BlockCtx<'a> {
    pub(crate) fn new(cfg: &'a DeviceConfig, tex: &'a mut TexCache) -> Self {
        Self {
            cfg,
            tex,
            tally: KernelTally::default(),
            scratch: Vec::with_capacity(WARP_SIZE),
        }
    }

    pub(crate) fn into_tally(self) -> KernelTally {
        self.tally
    }

    /// The device this block runs on.
    pub fn config(&self) -> &DeviceConfig {
        self.cfg
    }

    /// Counters accumulated so far by this block.
    pub fn tally(&self) -> &KernelTally {
        &self.tally
    }

    /// Charge raw SM cycles (arithmetic, control flow).
    pub fn charge_cycles(&mut self, cycles: f64) {
        self.tally.compute_cycles += cycles;
    }

    /// Charge `n` warp-wide scalar operations.
    pub fn charge_ops(&mut self, n: u64) {
        self.tally.compute_cycles += n as f64 * self.cfg.cycles_per_op;
    }

    /// Warp-wide gather/scatter of `elem_bytes`-sized elements at the given
    /// byte `addrs`. Addresses are processed in groups of 32 (one warp);
    /// each group costs one memory transaction per distinct 128-byte
    /// segment touched — fully coalesced access costs 1 transaction for
    /// 4-byte elements, a random gather costs up to 32.
    pub fn warp_gather(&mut self, addrs: &[u64], elem_bytes: u32) {
        debug_assert!(elem_bytes > 0);
        for chunk in addrs.chunks(WARP_SIZE) {
            self.scratch.clear();
            for &a in chunk {
                // Each element may straddle a segment boundary; charge the
                // first segment only (straddles are rare for aligned data).
                self.scratch.push(a / SEGMENT_BYTES);
            }
            self.scratch.sort_unstable();
            self.scratch.dedup();
            let tx = self.scratch.len() as u64;
            self.tally.transactions += tx;
            self.tally.dram_bytes += (tx * SEGMENT_BYTES) as f64;
            self.tally.memory_cycles += tx as f64 * self.cfg.cycles_per_transaction;
        }
    }

    /// Perfectly coalesced streaming access of `n_elems` elements of
    /// `elem_bytes` each (read or write — the cost model is symmetric).
    pub fn coalesced(&mut self, n_elems: u64, elem_bytes: u32) {
        let bytes = n_elems * elem_bytes as u64;
        let tx = bytes.div_ceil(SEGMENT_BYTES);
        self.tally.transactions += tx;
        self.tally.dram_bytes += bytes as f64;
        self.tally.memory_cycles += tx as f64 * self.cfg.cycles_per_transaction;
    }

    /// Gather routed through the texture cache (the paper's "Tx" variants
    /// bind the SpMV input vector to a texture). Within each 32-lane
    /// group, lanes touching the same cache line are *broadcast* — only
    /// distinct lines are charged — then hits cost
    /// [`DeviceConfig::tex_hit_cycles`] and misses cost
    /// [`DeviceConfig::tex_miss_cycles`] plus a line fill from DRAM.
    pub fn tex_gather(&mut self, addrs: &[u64]) {
        let line = self.cfg.tex_line_bytes as u64;
        for chunk in addrs.chunks(WARP_SIZE) {
            self.scratch.clear();
            for &a in chunk {
                self.scratch.push(a / line);
            }
            self.scratch.sort_unstable();
            self.scratch.dedup();
            for i in 0..self.scratch.len() {
                let line_addr = self.scratch[i] * line;
                if self.tex.access(line_addr) {
                    self.tally.tex_hits += 1;
                    self.tally.memory_cycles += self.cfg.tex_hit_cycles;
                } else {
                    self.tally.tex_misses += 1;
                    self.tally.memory_cycles += self.cfg.tex_miss_cycles;
                    self.tally.dram_bytes += self.cfg.tex_line_bytes as f64;
                }
            }
        }
    }

    /// Warp-wide loop with per-lane trip counts: in SIMT execution every
    /// lane steps until the *longest* lane finishes, so each 32-lane group
    /// is charged `max(trips) * cycles_per_iter`. This is exactly the
    /// divergence penalty a warp-per-32-rows CSR kernel pays on irregular
    /// row lengths.
    pub fn warp_loop(&mut self, trip_counts: &[u64], cycles_per_iter: f64) {
        for chunk in trip_counts.chunks(WARP_SIZE) {
            let max = chunk.iter().copied().max().unwrap_or(0);
            self.tally.compute_cycles += max as f64 * cycles_per_iter;
        }
    }

    /// One side of a divergent branch: if any of the 32 lanes takes it, the
    /// whole warp spends `cycles` on it (bodies of divergent branches
    /// serialize).
    pub fn warp_branch(&mut self, lanes_taking: usize, cycles: f64) {
        if lanes_taking > 0 {
            self.tally.compute_cycles += cycles;
        }
    }

    /// Warp-wide shared-memory access at the given byte `addrs`.
    ///
    /// Shared memory is split into 32 four-byte banks; within a 32-lane
    /// group, *distinct* addresses falling in the same bank serialize
    /// (identical addresses broadcast for free). The charge per group is
    /// the worst bank's conflict degree.
    pub fn warp_shared_access(&mut self, addrs: &[u64]) {
        const BANKS: usize = 32;
        const SHARED_ACCESS_CYCLES: f64 = 2.0;
        for chunk in addrs.chunks(WARP_SIZE) {
            self.scratch.clear();
            self.scratch.extend_from_slice(chunk);
            self.scratch.sort_unstable();
            self.scratch.dedup(); // same address broadcasts
            let mut per_bank = [0u32; BANKS];
            for &a in &self.scratch {
                per_bank[((a / 4) % BANKS as u64) as usize] += 1;
            }
            let degree = per_bank.iter().copied().max().unwrap_or(0).max(1);
            self.tally.compute_cycles += degree as f64 * SHARED_ACCESS_CYCLES;
        }
    }

    /// Warp-wide atomic update on the given byte `addrs`. Within each
    /// 32-lane group, lanes hitting the same address serialize (cost scales
    /// with the maximum multiplicity). For [`AtomicSpace::Global`],
    /// `hot_fraction` is the largest share of *device-wide* traffic any
    /// address in the group receives; hot addresses pay an extra
    /// contention penalty of `hot_address_factor * hot_fraction` serialized
    /// operations, modelling collisions with concurrently resident warps.
    pub fn warp_atomic(&mut self, addrs: &[u64], space: AtomicSpace, hot_fraction: f64) {
        let per_op = match space {
            AtomicSpace::Shared => self.cfg.shared_atomic_cycles,
            AtomicSpace::Global => self.cfg.global_atomic_cycles,
        };
        for chunk in addrs.chunks(WARP_SIZE) {
            self.scratch.clear();
            self.scratch.extend_from_slice(chunk);
            self.scratch.sort_unstable();
            // Maximum same-address multiplicity within the warp.
            let mut max_mult = 1u64;
            let mut run = 1u64;
            for i in 1..self.scratch.len() {
                if self.scratch[i] == self.scratch[i - 1] {
                    run += 1;
                    max_mult = max_mult.max(run);
                } else {
                    run = 1;
                }
            }
            let mut serialized = max_mult as f64;
            if space == AtomicSpace::Global {
                serialized += self.cfg.hot_address_factor * hot_fraction.clamp(0.0, 1.0);
                // Global atomics also move data.
                self.tally.dram_bytes += (chunk.len() as u64 * 4) as f64;
            } else {
                // Shared atomics additionally serialize on bank conflicts
                // between *distinct* addresses (32 four-byte banks).
                self.scratch.dedup();
                let mut per_bank = [0u32; 32];
                for &a in &self.scratch {
                    per_bank[((a / 4) % 32) as usize] += 1;
                }
                let degree = per_bank.iter().copied().max().unwrap_or(0).max(1);
                serialized = serialized.max(degree as f64);
            }
            self.tally.atomic_cycles += serialized * per_op;
        }
    }

    /// Bulk streaming access: `bytes` moved at the given coalescing
    /// `efficiency` in `(0, 1]` (1.0 = perfectly coalesced). Large sort
    /// passes use this instead of enumerating addresses.
    pub fn bulk_mem(&mut self, bytes: f64, efficiency: f64) {
        let eff = efficiency.clamp(1.0 / WARP_SIZE as f64, 1.0);
        let effective_bytes = bytes / eff;
        let tx = (effective_bytes / SEGMENT_BYTES as f64).ceil();
        self.tally.transactions += tx as u64;
        self.tally.dram_bytes += effective_bytes;
        self.tally.memory_cycles += tx * self.cfg.cycles_per_transaction;
    }

    /// Bulk read helper — see [`BlockCtx::bulk_mem`].
    pub fn bulk_read(&mut self, bytes: f64, efficiency: f64) {
        self.bulk_mem(bytes, efficiency);
    }

    /// Bulk write helper — see [`BlockCtx::bulk_mem`].
    pub fn bulk_write(&mut self, bytes: f64, efficiency: f64) {
        self.bulk_mem(bytes, efficiency);
    }

    /// Bulk compute: `n` operations at `cycles_per_op` each.
    pub fn bulk_ops(&mut self, n: f64, cycles_per_op: f64) {
        self.tally.compute_cycles += n * cycles_per_op;
    }

    /// Bulk atomics: `n` operations with an average serialization factor
    /// (1.0 = conflict-free).
    pub fn bulk_atomic(&mut self, n: f64, space: AtomicSpace, serialization: f64) {
        let per_op = match space {
            AtomicSpace::Shared => self.cfg.shared_atomic_cycles,
            AtomicSpace::Global => self.cfg.global_atomic_cycles,
        };
        self.tally.atomic_cycles += n * serialization.max(1.0) * per_op;
        if space == AtomicSpace::Global {
            self.tally.dram_bytes += n * 4.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_parts() -> (DeviceConfig, TexCache) {
        let cfg = DeviceConfig::fermi_c2050().noiseless();
        let tex = TexCache::new(cfg.tex_cache_bytes, cfg.tex_line_bytes, cfg.tex_assoc);
        (cfg, tex)
    }

    #[test]
    fn coalesced_gather_is_one_transaction() {
        let (cfg, mut tex) = ctx_parts();
        let mut ctx = BlockCtx::new(&cfg, &mut tex);
        let addrs: Vec<u64> = (0..32u64).map(|i| i * 4).collect(); // 128 contiguous bytes
        ctx.warp_gather(&addrs, 4);
        assert_eq!(ctx.tally().transactions, 1);
    }

    #[test]
    fn strided_gather_costs_full_warp_of_transactions() {
        let (cfg, mut tex) = ctx_parts();
        let mut ctx = BlockCtx::new(&cfg, &mut tex);
        let addrs: Vec<u64> = (0..32u64).map(|i| i * 4096).collect(); // 1 segment each
        ctx.warp_gather(&addrs, 4);
        assert_eq!(ctx.tally().transactions, 32);
    }

    #[test]
    fn gather_transaction_count_is_bounded() {
        let (cfg, mut tex) = ctx_parts();
        let mut ctx = BlockCtx::new(&cfg, &mut tex);
        // 64 lanes = 2 warps; each warp costs between 1 and 32 transactions.
        let addrs: Vec<u64> = (0..64u64).map(|i| (i * 31) % 8192).collect();
        ctx.warp_gather(&addrs, 4);
        let tx = ctx.tally().transactions;
        assert!((2..=64).contains(&tx), "tx = {tx}");
    }

    #[test]
    fn warp_loop_charges_longest_lane() {
        let (cfg, mut tex) = ctx_parts();
        let mut ctx = BlockCtx::new(&cfg, &mut tex);
        let mut trips = vec![1u64; 32];
        trips[17] = 100;
        ctx.warp_loop(&trips, 2.0);
        assert_eq!(ctx.tally().compute_cycles, 200.0);
    }

    #[test]
    fn warp_loop_chunks_independently() {
        let (cfg, mut tex) = ctx_parts();
        let mut ctx = BlockCtx::new(&cfg, &mut tex);
        let mut trips = vec![1u64; 64];
        trips[0] = 10; // first warp max 10
        trips[63] = 20; // second warp max 20
        ctx.warp_loop(&trips, 1.0);
        assert_eq!(ctx.tally().compute_cycles, 30.0);
    }

    #[test]
    fn bank_conflicts_serialize_distinct_same_bank_addresses() {
        let (cfg, mut tex) = ctx_parts();
        let mut ctx = BlockCtx::new(&cfg, &mut tex);
        // 32 lanes hitting 32 different banks: conflict-free.
        let spread: Vec<u64> = (0..32u64).map(|i| i * 4).collect();
        ctx.warp_shared_access(&spread);
        let free = ctx.tally().compute_cycles;

        let mut tex2 = TexCache::new(cfg.tex_cache_bytes, cfg.tex_line_bytes, cfg.tex_assoc);
        let mut ctx2 = BlockCtx::new(&cfg, &mut tex2);
        // 32 distinct addresses in the SAME bank (stride 128 bytes).
        let conflicted: Vec<u64> = (0..32u64).map(|i| i * 128).collect();
        ctx2.warp_shared_access(&conflicted);
        assert_eq!(ctx2.tally().compute_cycles, 32.0 * free);
    }

    #[test]
    fn same_address_shared_access_broadcasts() {
        let (cfg, mut tex) = ctx_parts();
        let mut ctx = BlockCtx::new(&cfg, &mut tex);
        ctx.warp_shared_access(&[64u64; 32]); // all lanes, one address
        let broadcast = ctx.tally().compute_cycles;
        let mut tex2 = TexCache::new(cfg.tex_cache_bytes, cfg.tex_line_bytes, cfg.tex_assoc);
        let mut ctx2 = BlockCtx::new(&cfg, &mut tex2);
        ctx2.warp_shared_access(&[64u64]); // single lane
        assert_eq!(
            broadcast,
            ctx2.tally().compute_cycles,
            "broadcast must be free"
        );
    }

    #[test]
    fn shared_atomic_bank_conflicts_counted() {
        let (cfg, mut tex) = ctx_parts();
        let mut ctx = BlockCtx::new(&cfg, &mut tex);
        // Distinct addresses all mapping to bank 0: no same-address
        // multiplicity, but full bank serialization.
        let addrs: Vec<u64> = (0..32u64).map(|i| i * 128).collect();
        ctx.warp_atomic(&addrs, AtomicSpace::Shared, 0.0);
        assert_eq!(ctx.tally().atomic_cycles, 32.0 * cfg.shared_atomic_cycles);
    }

    #[test]
    fn same_address_atomics_serialize() {
        let (cfg, mut tex) = ctx_parts();
        let mut conflict = BlockCtx::new(&cfg, &mut tex);
        conflict.warp_atomic(&[8u64; 32], AtomicSpace::Shared, 0.0);
        let conflict_cycles = conflict.tally().atomic_cycles;

        let mut tex2 = TexCache::new(cfg.tex_cache_bytes, cfg.tex_line_bytes, cfg.tex_assoc);
        let mut spread = BlockCtx::new(&cfg, &mut tex2);
        let addrs: Vec<u64> = (0..32u64).map(|i| i * 4).collect();
        spread.warp_atomic(&addrs, AtomicSpace::Shared, 0.0);
        let spread_cycles = spread.tally().atomic_cycles;

        assert_eq!(conflict_cycles, 32.0 * cfg.shared_atomic_cycles);
        assert_eq!(spread_cycles, cfg.shared_atomic_cycles);
    }

    #[test]
    fn hot_global_atomics_pay_contention() {
        let (cfg, mut tex) = ctx_parts();
        let mut cold = BlockCtx::new(&cfg, &mut tex);
        let addrs: Vec<u64> = (0..32u64).map(|i| i * 4).collect();
        cold.warp_atomic(&addrs, AtomicSpace::Global, 0.0);
        let cold_cycles = cold.tally().atomic_cycles;

        let mut tex2 = TexCache::new(cfg.tex_cache_bytes, cfg.tex_line_bytes, cfg.tex_assoc);
        let mut hot = BlockCtx::new(&cfg, &mut tex2);
        hot.warp_atomic(&addrs, AtomicSpace::Global, 0.9);
        assert!(hot.tally().atomic_cycles > cold_cycles * 5.0);
    }

    #[test]
    fn tex_gather_rewards_locality() {
        let (cfg, mut tex) = ctx_parts();
        let mut ctx = BlockCtx::new(&cfg, &mut tex);
        // Many repeated accesses to a handful of lines: mostly hits.
        let addrs: Vec<u64> = (0..1000u64).map(|i| (i % 8) * 4).collect();
        ctx.tex_gather(&addrs);
        assert!(ctx.tally().tex_hit_rate() > 0.95);

        let mut tex2 = TexCache::new(cfg.tex_cache_bytes, cfg.tex_line_bytes, cfg.tex_assoc);
        let mut ctx2 = BlockCtx::new(&cfg, &mut tex2);
        // Streaming through a space much larger than the cache: mostly misses.
        let addrs: Vec<u64> = (0..1000u64).map(|i| i * 4096).collect();
        ctx2.tex_gather(&addrs);
        assert!(ctx2.tally().tex_hit_rate() < 0.05);
    }

    #[test]
    fn bulk_mem_efficiency_scales_traffic() {
        let (cfg, mut tex) = ctx_parts();
        let mut ctx = BlockCtx::new(&cfg, &mut tex);
        ctx.bulk_mem(1280.0, 1.0);
        let full = ctx.tally().dram_bytes;
        let mut tex2 = TexCache::new(cfg.tex_cache_bytes, cfg.tex_line_bytes, cfg.tex_assoc);
        let mut ctx2 = BlockCtx::new(&cfg, &mut tex2);
        ctx2.bulk_mem(1280.0, 0.5);
        assert!((ctx2.tally().dram_bytes - 2.0 * full).abs() < 1e-9);
    }

    #[test]
    fn branch_only_charges_when_taken() {
        let (cfg, mut tex) = ctx_parts();
        let mut ctx = BlockCtx::new(&cfg, &mut tex);
        ctx.warp_branch(0, 100.0);
        assert_eq!(ctx.tally().compute_cycles, 0.0);
        ctx.warp_branch(1, 100.0);
        assert_eq!(ctx.tally().compute_cycles, 100.0);
    }
}
