//! The simulated device: kernel launches, block scheduling and timing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::block::BlockCtx;
use crate::cache::TexCache;
use crate::config::DeviceConfig;
use crate::fault::{FaultOutcome, FaultPlan};
use crate::noise::SplitMix64;
use crate::stats::{KernelTally, LaunchStats};

/// How thread blocks are placed onto SMs.
///
/// The paper's CUB histogram variants come in "Even-Share" and "Dynamic"
/// grid-mapping flavours; this enum models exactly that distinction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Blocks are pre-assigned round-robin: block `i` runs on SM
    /// `i % num_sms`. Cheap, but skewed per-block work produces imbalance.
    EvenShare,
    /// Work-queue scheduling: each block goes to the currently
    /// least-loaded SM, absorbing skew at a small per-block dispatch cost.
    Dynamic,
}

/// Extra dispatch cycles per block under [`Schedule::Dynamic`] (queue pop).
const DYNAMIC_DISPATCH_CYCLES: f64 = 40.0;

/// A simulated GPU. Cheap to construct; `launch` is `&self`, so one device
/// can be shared across a profiling sweep (an internal counter decorrelates
/// the per-launch noise).
#[derive(Debug)]
pub struct Gpu {
    cfg: DeviceConfig,
    seed: u64,
    launch_counter: AtomicU64,
    fault_plan: Option<Arc<FaultPlan>>,
    fault_exempt: bool,
}

impl Gpu {
    /// Create a device with the given configuration and a fixed noise seed.
    pub fn new(cfg: DeviceConfig) -> Self {
        Self::with_seed(cfg, 0x5EED_CAFE)
    }

    /// Create a device with an explicit noise seed, for reproducible
    /// experiment sweeps.
    pub fn with_seed(cfg: DeviceConfig, seed: u64) -> Self {
        Self {
            cfg,
            seed,
            launch_counter: AtomicU64::new(0),
            fault_plan: None,
            fault_exempt: false,
        }
    }

    /// Attach a per-device fault plan, overriding any process-global plan
    /// installed via [`crate::fault::install_fault_plan`].
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(Arc::new(plan));
        self
    }

    /// Opt this device out of fault injection entirely (per-device and
    /// process-global plans alike).
    ///
    /// Meant for *cost probes*: launches a substrate issues purely to
    /// price sub-kernel work that is not a real launch boundary — e.g.
    /// the per-level segments of a fused BFS, which on hardware run
    /// inside one kernel separated by global barriers. Fault plans model
    /// events at launch boundaries, so such probes must not roll the
    /// fault dice; the caller accounts real launches separately.
    pub fn fault_exempt(mut self) -> Self {
        self.fault_exempt = true;
        self
    }

    /// The device's configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// Simulate one kernel launch of `blocks` thread blocks.
    ///
    /// `body` is invoked once per block with that block's index and a fresh
    /// cost-accounting [`BlockCtx`]; it performs the kernel's *functional*
    /// work on the CPU while charging simulated costs. The launch time is
    ///
    /// ```text
    /// overhead + noise * max( busiest-SM time, total DRAM bytes / bandwidth )
    /// ```
    ///
    /// where blocks are placed on SMs according to `schedule`.
    pub fn launch<F>(
        &self,
        kernel: &str,
        blocks: usize,
        schedule: Schedule,
        mut body: F,
    ) -> LaunchStats
    where
        F: FnMut(usize, &mut BlockCtx),
    {
        // One index drives both the noise stream and the fault stream, so
        // fault decisions never perturb timings (and vice versa).
        let idx = self.launch_counter.fetch_add(1, Ordering::Relaxed);
        let fault = if self.fault_exempt {
            FaultOutcome::None
        } else {
            match self.fault_plan.clone().or_else(crate::fault::fault_plan) {
                Some(plan) => plan.decide(self.seed, kernel, idx),
                None => FaultOutcome::None,
            }
        };
        if fault == FaultOutcome::Fail {
            if let Some(tracer) = nitro_trace::global() {
                tracer.metrics().inc("simt.fault.failures");
                tracer
                    .metrics()
                    .inc(&format!("simt.fault.kernel.{kernel}.failures"));
            }
            // The body never runs: a failed launch leaves the caller's
            // data untouched, like a lost kernel on real hardware.
            panic!("injected launch failure: kernel '{kernel}' (launch {idx})");
        }

        let mut tex = TexCache::new(
            self.cfg.tex_cache_bytes,
            self.cfg.tex_line_bytes,
            self.cfg.tex_assoc,
        );
        let mut block_ns = Vec::with_capacity(blocks);
        let mut tally = KernelTally::default();
        let cycle_ns = self.cfg.cycle_ns();

        for b in 0..blocks {
            let mut ctx = BlockCtx::new(&self.cfg, &mut tex);
            body(b, &mut ctx);
            let t = ctx.into_tally();
            let mut cycles = t.work_cycles();
            if schedule == Schedule::Dynamic {
                cycles += DYNAMIC_DISPATCH_CYCLES;
            }
            block_ns.push(cycles * cycle_ns);
            tally.merge(&t);
        }

        let (sm_time, imbalance) = self.schedule_blocks(&block_ns, schedule);
        let mem_time = self.cfg.dram_ns(tally.dram_bytes);
        let bandwidth_bound = mem_time > sm_time;
        let busy = sm_time.max(mem_time);

        let noise = SplitMix64::new(self.seed ^ idx.wrapping_mul(0x9E37_79B9))
            .noise_factor(self.cfg.noise_rel_sigma);

        // A transient slowdown stretches the busy time; overhead is fixed.
        let slow = match fault {
            FaultOutcome::Slow(factor) => factor,
            _ => 1.0,
        };
        let mut elapsed_ns = self.cfg.launch_overhead_ns + busy * noise * slow;
        // Energy: DRAM pin energy + dynamic SM energy + static power over
        // the launch duration (1 W × 1 ns = 1 nJ). Dynamic energy charges
        // work cycles only; overhead time is covered by the static floor.
        let mut energy_nj = tally.dram_bytes * self.cfg.pj_per_dram_byte / 1000.0
            + tally.work_cycles() * self.cfg.pj_per_cycle / 1000.0
            + elapsed_ns * self.cfg.static_watts;

        match fault {
            FaultOutcome::Slow(_) => {
                if let Some(tracer) = nitro_trace::global() {
                    tracer.metrics().inc("simt.fault.slowdowns");
                }
            }
            FaultOutcome::Corrupt => {
                // A corrupted measurement: the work happened but the
                // reported numbers are garbage. NaN propagates into any
                // objective built on them, which resilient dispatch
                // layers treat as a failed execution.
                elapsed_ns = f64::NAN;
                energy_nj = f64::NAN;
                if let Some(tracer) = nitro_trace::global() {
                    tracer.metrics().inc("simt.fault.corruptions");
                }
            }
            _ => {}
        }

        // Attribute the fixed launch overhead to the tally so cumulative
        // (merged) tallies account for the same cycles the elapsed-time
        // model charged.
        if cycle_ns > 0.0 {
            tally.launch_cycles = self.cfg.launch_overhead_ns / cycle_ns;
        }

        let stats = LaunchStats {
            kernel: kernel.to_string(),
            blocks,
            elapsed_ns,
            imbalance,
            bandwidth_bound,
            energy_nj,
            tally,
        };

        if let Some(tracer) = nitro_trace::global() {
            self.emit_launch_trace(&tracer, &stats);
        }

        stats
    }

    /// Emit one instant event + metrics for a completed launch into the
    /// process-global tracer (substrates construct their `Gpu`s
    /// internally, so the simulator layer cannot be handed a `Context`).
    fn emit_launch_trace(&self, tracer: &nitro_trace::Tracer, stats: &LaunchStats) {
        use nitro_trace::arg;
        let t = &stats.tally;
        tracer.instant(
            &format!("launch:{}", stats.kernel),
            "simt",
            vec![
                arg("blocks", &stats.blocks),
                arg("elapsed_ns", &stats.elapsed_ns),
                arg("energy_nj", &stats.energy_nj),
                arg("imbalance", &stats.imbalance),
                arg("bandwidth_bound", &stats.bandwidth_bound),
                arg("transactions", &t.transactions),
                arg("dram_bytes", &t.dram_bytes),
                arg("tex_hits", &t.tex_hits),
                arg("tex_misses", &t.tex_misses),
                arg("atomic_cycles", &t.atomic_cycles),
                arg("compute_cycles", &t.compute_cycles),
                arg("memory_cycles", &t.memory_cycles),
                arg("launch_cycles", &t.launch_cycles),
            ],
        );
        let m = tracer.metrics();
        m.inc("simt.launches");
        m.inc(&format!("simt.kernel.{}.launches", stats.kernel));
        m.observe("simt.launch.elapsed_ns", stats.elapsed_ns);
        m.observe_with(
            "simt.launch.dram_bytes",
            t.dram_bytes,
            &[1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10],
        );
    }

    /// Place per-block times onto SMs; returns (busiest SM time, imbalance).
    fn schedule_blocks(&self, block_ns: &[f64], schedule: Schedule) -> (f64, f64) {
        let sms = self.cfg.num_sms.max(1);
        let mut load = vec![0.0f64; sms];
        match schedule {
            Schedule::EvenShare => {
                for (i, &t) in block_ns.iter().enumerate() {
                    load[i % sms] += t;
                }
            }
            Schedule::Dynamic => {
                for &t in block_ns {
                    // Greedy: next block to the least-loaded SM.
                    let (min_idx, _) = load
                        .iter()
                        .enumerate()
                        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                        .expect("at least one SM");
                    load[min_idx] += t;
                }
            }
        }
        let max = load.iter().cloned().fold(0.0, f64::max);
        let mean = load.iter().sum::<f64>() / sms as f64;
        let imbalance = if mean > 0.0 { max / mean } else { 1.0 };
        (max, imbalance)
    }
}

/// Accumulates the launches making up one *variant execution* — e.g. an
/// iterative BFS that launches one kernel per frontier level, or a radix
/// sort that launches one kernel per digit pass.
#[derive(Debug)]
pub struct Session<'a> {
    gpu: &'a Gpu,
    elapsed_ns: f64,
    energy_nj: f64,
    launches: usize,
    tally: KernelTally,
}

impl<'a> Session<'a> {
    /// Start a session on the given device.
    pub fn new(gpu: &'a Gpu) -> Self {
        Self {
            gpu,
            elapsed_ns: 0.0,
            energy_nj: 0.0,
            launches: 0,
            tally: KernelTally::default(),
        }
    }

    /// Launch a kernel and fold its time into the session.
    pub fn launch<F>(
        &mut self,
        kernel: &str,
        blocks: usize,
        schedule: Schedule,
        body: F,
    ) -> LaunchStats
    where
        F: FnMut(usize, &mut BlockCtx),
    {
        let stats = self.gpu.launch(kernel, blocks, schedule, body);
        self.elapsed_ns += stats.elapsed_ns;
        self.energy_nj += stats.energy_nj;
        self.launches += 1;
        self.tally.merge(&stats.tally);
        stats
    }

    /// Charge host-side time between launches (e.g. a host-device sync or a
    /// frontier-size readback), in nanoseconds.
    pub fn host_ns(&mut self, ns: f64) {
        self.elapsed_ns += ns;
    }

    /// Total simulated nanoseconds across all launches so far.
    pub fn elapsed_ns(&self) -> f64 {
        self.elapsed_ns
    }

    /// Total estimated nanojoules across all launches so far.
    pub fn energy_nj(&self) -> f64 {
        self.energy_nj
    }

    /// Number of kernel launches folded into this session.
    pub fn launches(&self) -> usize {
        self.launches
    }

    /// Merged activity counters across the session.
    pub fn tally(&self) -> &KernelTally {
        &self.tally
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_gpu() -> Gpu {
        Gpu::new(DeviceConfig::fermi_c2050().noiseless())
    }

    #[test]
    fn empty_launch_costs_only_overhead() {
        let gpu = quiet_gpu();
        let s = gpu.launch("nop", 0, Schedule::EvenShare, |_, _| {});
        assert_eq!(s.elapsed_ns, gpu.config().launch_overhead_ns);
        assert_eq!(s.blocks, 0);
    }

    #[test]
    fn more_work_takes_longer() {
        let gpu = quiet_gpu();
        let small = gpu.launch("k", 14, Schedule::EvenShare, |_, ctx| {
            ctx.charge_cycles(1_000.0)
        });
        let big = gpu.launch("k", 14, Schedule::EvenShare, |_, ctx| {
            ctx.charge_cycles(100_000.0)
        });
        assert!(big.elapsed_ns > small.elapsed_ns);
    }

    #[test]
    fn perfectly_parallel_blocks_scale_across_sms() {
        let gpu = quiet_gpu();
        let sms = gpu.config().num_sms;
        // One block per SM: elapsed ≈ overhead + one block's time.
        let one_wave = gpu.launch("k", sms, Schedule::EvenShare, |_, ctx| {
            ctx.charge_cycles(10_000.0)
        });
        // Two blocks per SM: twice the busy time.
        let two_waves = gpu.launch("k", 2 * sms, Schedule::EvenShare, |_, ctx| {
            ctx.charge_cycles(10_000.0)
        });
        let busy1 = one_wave.elapsed_ns - gpu.config().launch_overhead_ns;
        let busy2 = two_waves.elapsed_ns - gpu.config().launch_overhead_ns;
        assert!((busy2 / busy1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dynamic_scheduling_absorbs_skew() {
        let gpu = quiet_gpu();
        let sms = gpu.config().num_sms;
        // Heavily skewed block costs landing on the same SM under round-robin:
        // every block with index % sms == 0 is 50x heavier.
        let cost = move |b: usize| {
            if b.is_multiple_of(sms) {
                500_000.0
            } else {
                10_000.0
            }
        };
        let es = gpu.launch("k", 8 * sms, Schedule::EvenShare, |b, ctx| {
            ctx.charge_cycles(cost(b))
        });
        let dy = gpu.launch("k", 8 * sms, Schedule::Dynamic, |b, ctx| {
            ctx.charge_cycles(cost(b))
        });
        assert!(
            dy.elapsed_ns < es.elapsed_ns * 0.6,
            "dynamic {} vs even-share {}",
            dy.elapsed_ns,
            es.elapsed_ns
        );
        assert!(es.imbalance > dy.imbalance);
    }

    #[test]
    fn even_share_is_cheaper_on_uniform_work() {
        let gpu = quiet_gpu();
        let es = gpu.launch("k", 112, Schedule::EvenShare, |_, ctx| {
            ctx.charge_cycles(10_000.0)
        });
        let dy = gpu.launch("k", 112, Schedule::Dynamic, |_, ctx| {
            ctx.charge_cycles(10_000.0)
        });
        // Dynamic pays the dispatch cost and gains nothing on uniform work.
        assert!(dy.elapsed_ns >= es.elapsed_ns);
    }

    #[test]
    fn bandwidth_roofline_floors_streaming_kernels() {
        let gpu = quiet_gpu();
        // Move 1 GB with trivial compute: must be bandwidth bound, and the
        // elapsed time must be at least bytes / bandwidth.
        let bytes_per_block = 1e9 / 140.0;
        let s = gpu.launch("stream", 140, Schedule::EvenShare, |_, ctx| {
            ctx.bulk_mem(bytes_per_block, 1.0);
        });
        let floor = gpu.config().dram_ns(1e9);
        assert!(s.elapsed_ns >= floor);
    }

    #[test]
    fn noise_is_reproducible_per_device_seed() {
        let cfg = DeviceConfig::fermi_c2050(); // 2% noise
        let run = |seed| {
            let gpu = Gpu::with_seed(cfg.clone(), seed);
            let s = gpu.launch("k", 14, Schedule::EvenShare, |_, ctx| {
                ctx.charge_cycles(1e6)
            });
            s.elapsed_ns
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn launch_counter_decorrelates_repeat_launches() {
        let gpu = Gpu::new(DeviceConfig::fermi_c2050());
        let a = gpu.launch("k", 14, Schedule::EvenShare, |_, ctx| {
            ctx.charge_cycles(1e6)
        });
        let b = gpu.launch("k", 14, Schedule::EvenShare, |_, ctx| {
            ctx.charge_cycles(1e6)
        });
        assert_ne!(a.elapsed_ns, b.elapsed_ns);
    }

    #[test]
    fn energy_grows_with_traffic_and_time() {
        let gpu = quiet_gpu();
        let small = gpu.launch("e", 14, Schedule::EvenShare, |_, ctx| {
            ctx.bulk_mem(1e4, 1.0)
        });
        let big = gpu.launch("e", 14, Schedule::EvenShare, |_, ctx| {
            ctx.bulk_mem(1e6, 1.0)
        });
        assert!(big.energy_nj > small.energy_nj);
        // An empty launch still pays the static floor over its duration.
        let idle = gpu.launch("idle", 0, Schedule::EvenShare, |_, _| {});
        assert!(idle.energy_nj > 0.0);
        assert!(
            (idle.energy_nj - idle.elapsed_ns * gpu.config().static_watts).abs() < 1e-9,
            "an empty launch should cost exactly the static floor"
        );
    }

    #[test]
    fn wasted_traffic_costs_energy_even_when_time_hides_it() {
        // Compute-bound launches whose elapsed times are nearly equal but
        // whose DRAM traffic differs 100x: energy must still rank them.
        let gpu = quiet_gpu();
        let lean = gpu.launch("lean", 14, Schedule::EvenShare, |_, ctx| {
            ctx.charge_cycles(1_000_000.0);
            ctx.bulk_mem(1e3, 1.0);
        });
        let wasteful = gpu.launch("waste", 14, Schedule::EvenShare, |_, ctx| {
            ctx.charge_cycles(1_000_000.0);
            ctx.bulk_mem(1e3, 0.01); // 100x over-fetch
        });
        let time_gap = (wasteful.elapsed_ns - lean.elapsed_ns) / lean.elapsed_ns;
        assert!(time_gap < 0.05, "times should stay close (gap {time_gap})");
        assert!(
            wasteful.energy_nj > lean.energy_nj,
            "energy must expose the waste"
        );
    }

    #[test]
    fn session_accumulates_launches() {
        let gpu = quiet_gpu();
        let mut sess = Session::new(&gpu);
        sess.launch("a", 14, Schedule::EvenShare, |_, ctx| {
            ctx.charge_cycles(1e4)
        });
        sess.launch("b", 14, Schedule::EvenShare, |_, ctx| {
            ctx.charge_cycles(1e4)
        });
        sess.host_ns(123.0);
        assert_eq!(sess.launches(), 2);
        let expected_overheads = 2.0 * gpu.config().launch_overhead_ns;
        assert!(sess.elapsed_ns() > expected_overheads + 123.0);
    }

    #[test]
    fn launch_tally_carries_overhead_and_session_merge_agrees() {
        let gpu = quiet_gpu();
        let overhead_cycles = gpu.config().launch_overhead_ns / gpu.config().cycle_ns();
        let mut sess = Session::new(&gpu);
        let a = sess.launch("a", 14, Schedule::EvenShare, |_, ctx| {
            ctx.charge_cycles(1e4)
        });
        let b = sess.launch("b", 14, Schedule::EvenShare, |_, ctx| {
            ctx.charge_cycles(2e4)
        });
        assert!((a.tally.launch_cycles - overhead_cycles).abs() < 1e-9);
        // Satellite invariant: cumulative total equals sum of per-launch
        // totals — launch overhead is no longer dropped by merging.
        assert!(
            (sess.tally().total_cycles() - (a.tally.total_cycles() + b.tally.total_cycles())).abs()
                < 1e-9
        );
        assert!((sess.tally().launch_cycles - 2.0 * overhead_cycles).abs() < 1e-9);
    }

    #[test]
    fn global_tracer_sees_launch_events_and_metrics() {
        let sink = std::sync::Arc::new(nitro_trace::RingSink::new(256));
        let tracer = nitro_trace::Tracer::new(sink.clone());
        nitro_trace::install_global(tracer.clone());
        let gpu = quiet_gpu();
        gpu.launch("traced_kernel_xyz", 14, Schedule::EvenShare, |_, ctx| {
            ctx.charge_cycles(1e4);
            ctx.bulk_mem(1e5, 1.0);
        });
        nitro_trace::uninstall_global();

        // The global slot is process-wide and other tests launch kernels
        // concurrently, so filter by our unique kernel name.
        let events = sink.snapshot();
        let ev = events
            .iter()
            .find(|e| e.name == "launch:traced_kernel_xyz")
            .expect("launch instant emitted");
        assert_eq!(ev.cat, "simt");
        let get = |k: &str| {
            ev.args
                .iter()
                .find(|(n, _)| n == k)
                .unwrap_or_else(|| panic!("arg {k}"))
                .1
                .clone()
        };
        assert!(get("elapsed_ns").as_f64().unwrap() > 0.0);
        assert!(get("dram_bytes").as_f64().unwrap() >= 1e5);
        assert!(get("launch_cycles").as_f64().unwrap() > 0.0);
        assert_eq!(
            tracer
                .metrics()
                .counter("simt.kernel.traced_kernel_xyz.launches"),
            Some(1)
        );
    }

    #[test]
    fn untraced_launch_matches_traced_launch_numbers() {
        // Tracing must observe, not perturb: identical seeds give
        // identical stats with and without a tracer installed.
        let run = || {
            let gpu = Gpu::with_seed(DeviceConfig::fermi_c2050(), 42);
            let s = gpu.launch("k", 14, Schedule::EvenShare, |_, ctx| {
                ctx.charge_cycles(1e6);
                ctx.bulk_mem(1e4, 0.5);
            });
            (s.elapsed_ns, s.energy_nj, s.tally)
        };
        let untraced = run();
        let sink = std::sync::Arc::new(nitro_trace::RingSink::new(16));
        nitro_trace::install_global(nitro_trace::Tracer::new(sink));
        let traced = run();
        nitro_trace::uninstall_global();
        assert_eq!(untraced, traced);
    }

    #[test]
    fn fault_plan_with_zero_probabilities_changes_nothing() {
        // Like tracing, fault injection must observe, not perturb: an
        // installed all-zero plan leaves timings bit-identical.
        let run = |plan: Option<FaultPlan>| {
            let mut gpu = Gpu::with_seed(DeviceConfig::fermi_c2050(), 42);
            if let Some(p) = plan {
                gpu = gpu.with_fault_plan(p);
            }
            let s = gpu.launch("k", 14, Schedule::EvenShare, |_, ctx| {
                ctx.charge_cycles(1e6);
                ctx.bulk_mem(1e4, 0.5);
            });
            (s.elapsed_ns, s.energy_nj)
        };
        assert_eq!(run(None), run(Some(FaultPlan::default())));
    }

    #[test]
    fn failing_kernel_panics_with_injected_payload() {
        crate::fault::silence_injected_panics();
        let gpu =
            Gpu::with_seed(DeviceConfig::fermi_c2050().noiseless(), 1).with_fault_plan(FaultPlan {
                fail_kernels: vec!["victim".into()],
                ..FaultPlan::default()
            });
        // Non-victim kernels are untouched.
        gpu.launch("fine", 1, Schedule::EvenShare, |_, ctx| {
            ctx.charge_cycles(10.0)
        });
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            gpu.launch("victim", 1, Schedule::EvenShare, |_, ctx| {
                ctx.charge_cycles(10.0)
            })
        }))
        .expect_err("victim launch must fail");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(
            msg.starts_with(crate::fault::INJECTED_PANIC_PREFIX),
            "{msg}"
        );
        assert!(msg.contains("victim"), "{msg}");
    }

    #[test]
    fn fault_exempt_devices_never_roll_the_dice() {
        // A cost-probe device ignores even a certain-failure plan.
        let gpu = Gpu::with_seed(DeviceConfig::fermi_c2050().noiseless(), 1)
            .with_fault_plan(FaultPlan::with_failure_prob(7, 1.0))
            .fault_exempt();
        for _ in 0..20 {
            gpu.launch("probe", 1, Schedule::EvenShare, |_, ctx| {
                ctx.charge_cycles(10.0)
            });
        }
    }

    #[test]
    fn slowdown_multiplies_busy_time_only() {
        let slow_plan = FaultPlan {
            slowdown_prob: 1.0,
            slowdown_factor: 4.0,
            ..FaultPlan::default()
        };
        let run = |plan: FaultPlan| {
            let gpu =
                Gpu::with_seed(DeviceConfig::fermi_c2050().noiseless(), 3).with_fault_plan(plan);
            gpu.launch("k", 14, Schedule::EvenShare, |_, ctx| {
                ctx.charge_cycles(1e6)
            })
            .elapsed_ns
        };
        let clean = run(FaultPlan::default());
        let slowed = run(slow_plan);
        let overhead = DeviceConfig::fermi_c2050().launch_overhead_ns;
        assert!(((slowed - overhead) / (clean - overhead) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn corruption_reports_nan_measurements() {
        let gpu =
            Gpu::with_seed(DeviceConfig::fermi_c2050().noiseless(), 3).with_fault_plan(FaultPlan {
                corruption_prob: 1.0,
                ..FaultPlan::default()
            });
        let s = gpu.launch("k", 14, Schedule::EvenShare, |_, ctx| {
            ctx.charge_cycles(1e6)
        });
        assert!(s.elapsed_ns.is_nan());
        assert!(s.energy_nj.is_nan());
    }

    #[test]
    fn injected_failures_are_deterministic_across_devices() {
        crate::fault::silence_injected_panics();
        let plan = FaultPlan::with_failure_prob(0xFA_17, 0.2);
        let pattern = || -> Vec<bool> {
            let gpu = Gpu::with_seed(DeviceConfig::fermi_c2050().noiseless(), 77)
                .with_fault_plan(plan.clone());
            (0..50)
                .map(|_| {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        gpu.launch("k", 1, Schedule::EvenShare, |_, ctx| {
                            ctx.charge_cycles(10.0)
                        })
                    }))
                    .is_err()
                })
                .collect()
        };
        let a = pattern();
        assert_eq!(a, pattern());
        assert!(a.iter().any(|&f| f), "some launches fail");
        assert!(a.iter().any(|&f| !f), "some launches survive");
    }

    #[test]
    fn fused_beats_iterative_on_tiny_work() {
        // The launch-overhead effect behind Fused vs Iter BFS variants: many
        // tiny launches lose to one fused launch doing the same work.
        let gpu = quiet_gpu();
        let mut fused = Session::new(&gpu);
        fused.launch("fused", 14, Schedule::EvenShare, |_, ctx| {
            ctx.charge_cycles(10_000.0)
        });
        let mut iter = Session::new(&gpu);
        for _ in 0..20 {
            iter.launch("step", 14, Schedule::EvenShare, |_, ctx| {
                ctx.charge_cycles(500.0)
            });
        }
        assert!(fused.elapsed_ns() < iter.elapsed_ns());
    }
}
