//! Launch statistics and cumulative kernel tallies.

use serde::{Deserialize, Serialize};

/// Raw activity counters accumulated while a kernel's blocks execute.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelTally {
    /// 128-byte global memory transactions issued.
    pub transactions: u64,
    /// Bytes moved across the DRAM interface (includes over-fetch from
    /// poorly coalesced accesses and texture-cache fills).
    pub dram_bytes: f64,
    /// Texture cache hits.
    pub tex_hits: u64,
    /// Texture cache misses.
    pub tex_misses: u64,
    /// Cycles spent in serialized atomic operations.
    pub atomic_cycles: f64,
    /// Cycles spent in arithmetic / control.
    pub compute_cycles: f64,
    /// Cycles spent issuing memory transactions.
    pub memory_cycles: f64,
    /// Cycles attributed to fixed launch overhead (driver + scheduling
    /// setup). Per-*block* tallies carry 0 here; [`crate::Gpu::launch`]
    /// charges the device's launch overhead once per launch, so merging
    /// per-launch tallies keeps `total_cycles` consistent with the sum
    /// of the individual totals. `#[serde(default)]` keeps tallies
    /// persisted before this field existed loadable.
    #[serde(default)]
    pub launch_cycles: f64,
}

impl KernelTally {
    /// Total cycles this tally represents, including launch overhead.
    pub fn total_cycles(&self) -> f64 {
        self.work_cycles() + self.launch_cycles
    }

    /// SM-side *work* cycles only (atomic + compute + memory), excluding
    /// launch overhead. This is the term dynamic-energy accounting uses:
    /// overhead time burns static power, not per-cycle switching energy.
    pub fn work_cycles(&self) -> f64 {
        self.atomic_cycles + self.compute_cycles + self.memory_cycles
    }

    /// Accumulate another tally into this one.
    pub fn merge(&mut self, other: &KernelTally) {
        self.transactions += other.transactions;
        self.dram_bytes += other.dram_bytes;
        self.tex_hits += other.tex_hits;
        self.tex_misses += other.tex_misses;
        self.atomic_cycles += other.atomic_cycles;
        self.compute_cycles += other.compute_cycles;
        self.memory_cycles += other.memory_cycles;
        self.launch_cycles += other.launch_cycles;
    }

    /// Texture hit rate over all texture accesses (0 when none occurred).
    pub fn tex_hit_rate(&self) -> f64 {
        let total = self.tex_hits + self.tex_misses;
        if total == 0 {
            0.0
        } else {
            self.tex_hits as f64 / total as f64
        }
    }
}

/// Result of simulating one kernel launch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LaunchStats {
    /// Kernel name as passed to [`crate::Gpu::launch`].
    pub kernel: String,
    /// Number of thread blocks launched.
    pub blocks: usize,
    /// Simulated wall time of the launch in nanoseconds, including launch
    /// overhead, scheduling imbalance, the bandwidth roofline and noise.
    pub elapsed_ns: f64,
    /// SM-load imbalance: busiest SM time over mean SM time (1.0 = perfectly
    /// balanced). Diagnoses even-share vs dynamic scheduling differences.
    pub imbalance: f64,
    /// Whether the launch was DRAM-bandwidth bound rather than SM bound.
    pub bandwidth_bound: bool,
    /// Estimated energy of the launch in nanojoules: DRAM traffic plus
    /// dynamic SM work plus the static floor over the elapsed time (the
    /// paper's "other optimization criteria, for example, energy usage").
    pub energy_nj: f64,
    /// Aggregated activity counters.
    pub tally: KernelTally,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_every_field() {
        let a = KernelTally {
            transactions: 1,
            dram_bytes: 128.0,
            tex_hits: 2,
            tex_misses: 3,
            atomic_cycles: 4.0,
            compute_cycles: 5.0,
            memory_cycles: 6.0,
            launch_cycles: 7.0,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.transactions, 2);
        assert_eq!(b.dram_bytes, 256.0);
        assert_eq!(b.tex_hits, 4);
        assert_eq!(b.tex_misses, 6);
        assert_eq!(b.work_cycles(), 30.0);
        assert_eq!(b.launch_cycles, 14.0);
        assert_eq!(b.total_cycles(), 44.0);
    }

    #[test]
    fn merge_then_total_equals_sum_of_totals() {
        let a = KernelTally {
            transactions: 10,
            dram_bytes: 512.0,
            tex_hits: 1,
            tex_misses: 2,
            atomic_cycles: 3.5,
            compute_cycles: 100.0,
            memory_cycles: 40.0,
            launch_cycles: 25.0,
        };
        let b = KernelTally {
            transactions: 7,
            dram_bytes: 64.0,
            tex_hits: 9,
            tex_misses: 0,
            atomic_cycles: 0.0,
            compute_cycles: 250.0,
            memory_cycles: 12.0,
            launch_cycles: 25.0,
        };
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.total_cycles(), a.total_cycles() + b.total_cycles());
        assert_eq!(merged.work_cycles(), a.work_cycles() + b.work_cycles());
    }

    #[test]
    fn legacy_tally_json_without_launch_cycles_loads() {
        let json = r#"{"transactions": 3, "dram_bytes": 128.0, "tex_hits": 0,
            "tex_misses": 0, "atomic_cycles": 0.0, "compute_cycles": 10.0,
            "memory_cycles": 5.0}"#;
        let t: KernelTally = serde_json::from_str(json).unwrap();
        assert_eq!(t.launch_cycles, 0.0);
        assert_eq!(t.total_cycles(), 15.0);
    }

    #[test]
    fn hit_rate_handles_empty() {
        assert_eq!(KernelTally::default().tex_hit_rate(), 0.0);
    }
}
