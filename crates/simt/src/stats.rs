//! Launch statistics and cumulative kernel tallies.

use serde::{Deserialize, Serialize};

/// Raw activity counters accumulated while a kernel's blocks execute.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelTally {
    /// 128-byte global memory transactions issued.
    pub transactions: u64,
    /// Bytes moved across the DRAM interface (includes over-fetch from
    /// poorly coalesced accesses and texture-cache fills).
    pub dram_bytes: f64,
    /// Texture cache hits.
    pub tex_hits: u64,
    /// Texture cache misses.
    pub tex_misses: u64,
    /// Cycles spent in serialized atomic operations.
    pub atomic_cycles: f64,
    /// Cycles spent in arithmetic / control.
    pub compute_cycles: f64,
    /// Cycles spent issuing memory transactions.
    pub memory_cycles: f64,
}

impl KernelTally {
    /// Total SM-side cycles this tally represents.
    pub fn total_cycles(&self) -> f64 {
        self.atomic_cycles + self.compute_cycles + self.memory_cycles
    }

    /// Accumulate another tally into this one.
    pub fn merge(&mut self, other: &KernelTally) {
        self.transactions += other.transactions;
        self.dram_bytes += other.dram_bytes;
        self.tex_hits += other.tex_hits;
        self.tex_misses += other.tex_misses;
        self.atomic_cycles += other.atomic_cycles;
        self.compute_cycles += other.compute_cycles;
        self.memory_cycles += other.memory_cycles;
    }

    /// Texture hit rate over all texture accesses (0 when none occurred).
    pub fn tex_hit_rate(&self) -> f64 {
        let total = self.tex_hits + self.tex_misses;
        if total == 0 {
            0.0
        } else {
            self.tex_hits as f64 / total as f64
        }
    }
}

/// Result of simulating one kernel launch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LaunchStats {
    /// Kernel name as passed to [`crate::Gpu::launch`].
    pub kernel: String,
    /// Number of thread blocks launched.
    pub blocks: usize,
    /// Simulated wall time of the launch in nanoseconds, including launch
    /// overhead, scheduling imbalance, the bandwidth roofline and noise.
    pub elapsed_ns: f64,
    /// SM-load imbalance: busiest SM time over mean SM time (1.0 = perfectly
    /// balanced). Diagnoses even-share vs dynamic scheduling differences.
    pub imbalance: f64,
    /// Whether the launch was DRAM-bandwidth bound rather than SM bound.
    pub bandwidth_bound: bool,
    /// Estimated energy of the launch in nanojoules: DRAM traffic plus
    /// dynamic SM work plus the static floor over the elapsed time (the
    /// paper's "other optimization criteria, for example, energy usage").
    pub energy_nj: f64,
    /// Aggregated activity counters.
    pub tally: KernelTally,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_every_field() {
        let a = KernelTally {
            transactions: 1,
            dram_bytes: 128.0,
            tex_hits: 2,
            tex_misses: 3,
            atomic_cycles: 4.0,
            compute_cycles: 5.0,
            memory_cycles: 6.0,
        };
        let mut b = a;
        b.merge(&a);
        assert_eq!(b.transactions, 2);
        assert_eq!(b.dram_bytes, 256.0);
        assert_eq!(b.tex_hits, 4);
        assert_eq!(b.tex_misses, 6);
        assert_eq!(b.total_cycles(), 30.0);
    }

    #[test]
    fn hit_rate_handles_empty() {
        assert_eq!(KernelTally::default().tex_hit_rate(), 0.0);
    }
}
