//! Device characterization microbenchmarks.
//!
//! Real autotuning papers sanity-check their testbed with
//! microbenchmarks (streaming bandwidth, gather cost, atomic throughput);
//! this module does the same for the *simulated* device, both to validate
//! the cost model's emergent behaviour and to document it. Each probe is
//! an ordinary kernel run through the public [`Gpu`] API — nothing here
//! reaches into the model's internals.

use crate::block::AtomicSpace;
use crate::config::DeviceConfig;
use crate::gpu::{Gpu, Schedule};

/// Measured characteristics of a simulated device.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Device name.
    pub device: String,
    /// Effective bandwidth of a perfectly coalesced stream, GB/s.
    pub stream_gbps: f64,
    /// Effective *useful* bandwidth of a random 8-byte gather, GB/s.
    pub gather_gbps: f64,
    /// Stream/gather ratio — the price of uncoalesced access.
    pub coalescing_gain: f64,
    /// Speedup of texture-cached gathers over global gathers when the
    /// working set is cache-resident.
    pub tex_resident_speedup: f64,
    /// Slowdown of texture-cached gathers when the working set streams
    /// through (misses dominate).
    pub tex_streaming_slowdown: f64,
    /// Conflict-free shared-atomic throughput, Mop/s.
    pub shared_atomic_mops: f64,
    /// Fully contended (same address) shared-atomic throughput, Mop/s.
    pub contended_shared_atomic_mops: f64,
    /// Fully contended global-atomic throughput, Mop/s.
    pub contended_global_atomic_mops: f64,
    /// Measured launch overhead, microseconds.
    pub launch_overhead_us: f64,
}

/// Elements per probe; large enough to amortize launch overhead.
const N: usize = 1 << 20;

/// Run the characterization suite on a device configuration.
pub fn calibrate(cfg: &DeviceConfig) -> Calibration {
    let gpu = Gpu::new(cfg.clone().noiseless());
    let blocks = cfg.num_sms * cfg.blocks_per_sm;

    // --- Streaming bandwidth: read + write N doubles, coalesced. ---
    let bytes = (N * 16) as f64;
    let stream = gpu.launch("cal_stream", blocks, Schedule::EvenShare, |_, ctx| {
        let per = N as u64 / blocks as u64;
        ctx.coalesced(per, 8);
        ctx.coalesced(per, 8);
    });
    let stream_busy = stream.elapsed_ns - cfg.launch_overhead_ns;
    let stream_gbps = bytes / stream_busy;

    // --- Random gather: one 8-byte element per lane, all distinct
    //     segments (worst case). ---
    let gather = gpu.launch("cal_gather", blocks, Schedule::EvenShare, |b, ctx| {
        let per = N / blocks;
        let mut addrs = Vec::with_capacity(32);
        for w in 0..per / 32 {
            addrs.clear();
            // Stride of 1 segment per lane: fully uncoalesced.
            addrs.extend((0..32u64).map(|l| ((b * per + w * 32) as u64 + l) * 128));
            ctx.warp_gather(&addrs, 8);
        }
    });
    let gather_busy = gather.elapsed_ns - cfg.launch_overhead_ns;
    let gather_gbps = (N * 8) as f64 / gather_busy;

    // --- Texture: resident working set (hits) vs streaming (misses). ---
    let resident_lines = (cfg.tex_cache_bytes / cfg.tex_line_bytes / 2).max(1) as u64;
    let tex_resident = gpu.launch("cal_tex_hot", 1, Schedule::EvenShare, |_, ctx| {
        let mut addrs = Vec::with_capacity(32);
        for w in 0..4096u64 {
            addrs.clear();
            addrs.extend(
                (0..32u64).map(|l| ((w * 32 + l) % resident_lines) * cfg.tex_line_bytes as u64),
            );
            ctx.tex_gather(&addrs);
        }
    });
    let global_equiv = gpu.launch("cal_glb_hot", 1, Schedule::EvenShare, |_, ctx| {
        let mut addrs = Vec::with_capacity(32);
        for w in 0..4096u64 {
            addrs.clear();
            addrs.extend(
                (0..32u64).map(|l| ((w * 32 + l) % resident_lines) * cfg.tex_line_bytes as u64),
            );
            ctx.warp_gather(&addrs, 8);
        }
    });
    let tex_resident_speedup = (global_equiv.elapsed_ns - cfg.launch_overhead_ns)
        / (tex_resident.elapsed_ns - cfg.launch_overhead_ns);

    let tex_stream = gpu.launch("cal_tex_cold", 1, Schedule::EvenShare, |_, ctx| {
        let mut addrs = Vec::with_capacity(32);
        for w in 0..4096u64 {
            addrs.clear();
            addrs.extend((0..32u64).map(|l| (w * 32 + l) * 4096));
            ctx.tex_gather(&addrs);
        }
    });
    let global_stream = gpu.launch("cal_glb_cold", 1, Schedule::EvenShare, |_, ctx| {
        let mut addrs = Vec::with_capacity(32);
        for w in 0..4096u64 {
            addrs.clear();
            addrs.extend((0..32u64).map(|l| (w * 32 + l) * 4096));
            ctx.warp_gather(&addrs, 8);
        }
    });
    let tex_streaming_slowdown = (tex_stream.elapsed_ns - cfg.launch_overhead_ns)
        / (global_stream.elapsed_ns - cfg.launch_overhead_ns);

    // --- Atomics: spread vs same-address. ---
    let atomic_probe = |space: AtomicSpace, contended: bool| -> f64 {
        let ops = (blocks * 8192) as f64;
        let stats = gpu.launch("cal_atomic", blocks, Schedule::EvenShare, |_, ctx| {
            let mut addrs = Vec::with_capacity(32);
            for _ in 0..256 {
                addrs.clear();
                if contended {
                    addrs.extend(std::iter::repeat_n(0u64, 32));
                } else {
                    addrs.extend((0..32u64).map(|l| l * 4));
                }
                ctx.warp_atomic(&addrs, space, if contended { 1.0 } else { 0.0 });
            }
        });
        // Mop/s = ops / busy-ns * 1e9 / 1e6.
        ops / (stats.elapsed_ns - cfg.launch_overhead_ns) * 1e3
    };
    let shared_atomic_mops = atomic_probe(AtomicSpace::Shared, false);
    let contended_shared_atomic_mops = atomic_probe(AtomicSpace::Shared, true);
    let contended_global_atomic_mops = atomic_probe(AtomicSpace::Global, true);

    // --- Launch overhead: an empty launch. ---
    let empty = gpu.launch("cal_empty", 0, Schedule::EvenShare, |_, _| {});

    Calibration {
        device: cfg.name.clone(),
        stream_gbps,
        gather_gbps,
        coalescing_gain: stream_gbps / gather_gbps,
        tex_resident_speedup,
        tex_streaming_slowdown,
        shared_atomic_mops,
        contended_shared_atomic_mops,
        contended_global_atomic_mops,
        launch_overhead_us: empty.elapsed_ns / 1000.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fermi_calibration_is_plausible() {
        let cal = calibrate(&DeviceConfig::fermi_c2050());
        // Streaming should approach but not exceed the DRAM roofline.
        assert!(
            cal.stream_gbps <= 144.0 + 1e-6,
            "stream {}",
            cal.stream_gbps
        );
        assert!(cal.stream_gbps > 60.0, "stream {}", cal.stream_gbps);
        // Random gathers waste most of each 128-byte transaction.
        assert!(cal.coalescing_gain > 8.0, "gain {}", cal.coalescing_gain);
        // Texture helps when resident, hurts when streaming.
        assert!(
            cal.tex_resident_speedup > 1.5,
            "tex {}",
            cal.tex_resident_speedup
        );
        assert!(
            cal.tex_streaming_slowdown > 1.0,
            "tex cold {}",
            cal.tex_streaming_slowdown
        );
        // Contention destroys atomic throughput, global worse than shared.
        assert!(cal.shared_atomic_mops > cal.contended_shared_atomic_mops * 4.0);
        assert!(cal.contended_shared_atomic_mops > cal.contended_global_atomic_mops);
        // Launch overhead is what the config says.
        assert!((cal.launch_overhead_us - 5.0).abs() < 0.1);
    }

    #[test]
    fn kepler_differs_from_fermi_in_the_right_direction() {
        let fermi = calibrate(&DeviceConfig::fermi_c2050());
        let kepler = calibrate(&DeviceConfig::kepler_k20());
        // Kepler: cheaper atomics.
        assert!(kepler.contended_global_atomic_mops > fermi.contended_global_atomic_mops);
        // And a bigger texture cache never hurts residency.
        assert!(kepler.tex_resident_speedup > 1.0);
    }
}
