//! Deterministic pseudo-randomness for measurement noise.
//!
//! Real GPU timings jitter run to run; the paper's training labels inherit
//! that jitter, which is one reason its models stop short of 100% of
//! exhaustive-search performance. The simulator reproduces it with a small,
//! dependency-free generator so that a given `(seed, launch index)` pair
//! always yields the same perturbation — experiments stay reproducible.

/// SplitMix64: a tiny, high-quality 64-bit mixing PRNG.
///
/// Used only for noise injection; the workload generators elsewhere in the
/// workspace use the `rand` crate.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Standard-normal sample via Box–Muller.
    pub fn next_gaussian(&mut self) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.next_f64().max(1e-300);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Multiplicative log-normal-ish noise factor with relative standard
    /// deviation `sigma`, clamped to stay positive. `sigma == 0` returns 1.
    pub fn noise_factor(&mut self, sigma: f64) -> f64 {
        if sigma <= 0.0 {
            return 1.0;
        }
        (1.0 + sigma * self.next_gaussian()).max(0.05)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut g = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gaussian_moments_roughly_standard() {
        let mut g = SplitMix64::new(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| g.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn zero_sigma_noise_is_identity() {
        let mut g = SplitMix64::new(3);
        assert_eq!(g.noise_factor(0.0), 1.0);
    }

    #[test]
    fn noise_factor_stays_positive() {
        let mut g = SplitMix64::new(5);
        for _ in 0..10_000 {
            assert!(g.noise_factor(0.5) > 0.0);
        }
    }
}
