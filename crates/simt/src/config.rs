//! Device configuration: the tunable hardware model.
//!
//! [`DeviceConfig`] collects every constant the cost model uses. Two presets
//! are provided: [`DeviceConfig::fermi_c2050`] (the card used in the paper)
//! and [`DeviceConfig::kepler_k20`] (a second architecture useful for
//! portability/ablation experiments — retuning on a different device is one
//! of the workflows the paper's autotuner interface is designed for).

use serde::{Deserialize, Serialize};

/// Hardware model parameters for the simulated device.
///
/// All costs feed the accounting in [`crate::BlockCtx`] and the launch
/// aggregation in [`crate::Gpu::launch`]. Times are expressed in
/// nanoseconds, rates in cycles; cycles are converted to nanoseconds using
/// [`DeviceConfig::cycle_ns`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Human-readable device name (appears in experiment reports).
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// SM core clock in GHz.
    pub clock_ghz: f64,
    /// Aggregate DRAM bandwidth in GB/s — the roofline floor.
    pub dram_bw_gbps: f64,
    /// Cycles an SM's memory pipeline is occupied per 128-byte transaction.
    pub cycles_per_transaction: f64,
    /// Cycles charged per scalar arithmetic instruction (warp-wide).
    pub cycles_per_op: f64,
    /// Per-SM texture cache capacity in bytes.
    pub tex_cache_bytes: usize,
    /// Texture cache line size in bytes.
    pub tex_line_bytes: usize,
    /// Texture cache associativity (ways per set).
    pub tex_assoc: usize,
    /// Cycles for a texture-cache hit.
    pub tex_hit_cycles: f64,
    /// Cycles for a texture-cache miss (fill from DRAM).
    pub tex_miss_cycles: f64,
    /// Cycles per serialized shared-memory atomic.
    pub shared_atomic_cycles: f64,
    /// Cycles per serialized global-memory atomic.
    pub global_atomic_cycles: f64,
    /// Additional multiplier for device-wide contention on hot addresses:
    /// a global atomic on an address receiving fraction `p` of all traffic
    /// is charged `global_atomic_cycles * (1 + hot_address_factor * p *
    /// concurrent_warps)`.
    pub hot_address_factor: f64,
    /// Fixed overhead per kernel launch, nanoseconds (driver + dispatch).
    pub launch_overhead_ns: f64,
    /// Maximum thread blocks resident per SM (occupancy cap folded into
    /// block scheduling granularity).
    pub blocks_per_sm: usize,
    /// Relative standard deviation of multiplicative measurement noise
    /// applied to each launch (0 disables). Real GPU timings jitter by a
    /// few percent; the paper's own labels inherit that jitter.
    pub noise_rel_sigma: f64,
    /// DRAM access energy in picojoules per byte moved.
    pub pj_per_dram_byte: f64,
    /// Dynamic SM energy in picojoules per busy cycle.
    pub pj_per_cycle: f64,
    /// Static (leakage + idle) power in watts, charged over elapsed time.
    pub static_watts: f64,
}

impl DeviceConfig {
    /// Preset resembling the NVIDIA Tesla C2050 (Fermi) used in the paper:
    /// 14 SMs at 1.15 GHz, 144 GB/s DRAM, small per-SM texture cache.
    pub fn fermi_c2050() -> Self {
        Self {
            name: "Tesla C2050 (Fermi, simulated)".to_string(),
            num_sms: 14,
            clock_ghz: 1.15,
            dram_bw_gbps: 144.0,
            cycles_per_transaction: 16.0,
            cycles_per_op: 1.0,
            tex_cache_bytes: 8 * 1024,
            tex_line_bytes: 32,
            tex_assoc: 4,
            tex_hit_cycles: 2.0,
            tex_miss_cycles: 28.0,
            // Fermi shared-memory atomics are lock-based and expensive
            // under same-address conflicts.
            shared_atomic_cycles: 16.0,
            global_atomic_cycles: 30.0,
            hot_address_factor: 48.0,
            launch_overhead_ns: 5_000.0,
            blocks_per_sm: 8,
            noise_rel_sigma: 0.02,
            // Fermi-era *marginal* energy ballpark: ~25 pJ/byte at the
            // DRAM pins and tens of pJ per SM cycle. Only the marginal
            // (variant-attributable) static power is charged — the board's
            // idle floor burns regardless of which variant runs, so it
            // carries no selection signal.
            pj_per_dram_byte: 25.0,
            pj_per_cycle: 45.0,
            static_watts: 6.0,
        }
    }

    /// Preset resembling an NVIDIA Tesla K20 (Kepler): more SMs, higher
    /// bandwidth, cheaper atomics. Used by the cross-architecture ablation.
    pub fn kepler_k20() -> Self {
        Self {
            name: "Tesla K20 (Kepler, simulated)".to_string(),
            num_sms: 13,
            clock_ghz: 0.705,
            dram_bw_gbps: 208.0,
            // Kepler's wider memory pipelines issue transactions faster
            // relative to its slower core clock.
            cycles_per_transaction: 10.0,
            cycles_per_op: 0.5,
            tex_cache_bytes: 48 * 1024,
            tex_line_bytes: 32,
            tex_assoc: 4,
            // Kepler's 48K read-only data cache serves hits faster.
            tex_hit_cycles: 1.0,
            tex_miss_cycles: 24.0,
            shared_atomic_cycles: 3.0,
            global_atomic_cycles: 8.0,
            hot_address_factor: 16.0,
            launch_overhead_ns: 4_000.0,
            blocks_per_sm: 16,
            noise_rel_sigma: 0.02,
            pj_per_dram_byte: 18.0,
            pj_per_cycle: 25.0,
            static_watts: 5.0,
        }
    }

    /// A noiseless copy of this configuration (useful in unit tests that
    /// assert exact cost relationships).
    pub fn noiseless(mut self) -> Self {
        self.noise_rel_sigma = 0.0;
        self
    }

    /// Duration of one SM cycle, in nanoseconds.
    pub fn cycle_ns(&self) -> f64 {
        1.0 / self.clock_ghz
    }

    /// Nanoseconds needed to move `bytes` across the DRAM interface.
    pub fn dram_ns(&self, bytes: f64) -> f64 {
        bytes / self.dram_bw_gbps
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self::fermi_c2050()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fermi_preset_is_sane() {
        let cfg = DeviceConfig::fermi_c2050();
        assert_eq!(cfg.num_sms, 14);
        assert!(cfg.cycle_ns() > 0.8 && cfg.cycle_ns() < 0.9);
        // 144 bytes in one nanosecond at 144 GB/s.
        assert!((cfg.dram_ns(144.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noiseless_strips_noise_only() {
        let cfg = DeviceConfig::fermi_c2050().noiseless();
        assert_eq!(cfg.noise_rel_sigma, 0.0);
        assert_eq!(cfg.num_sms, DeviceConfig::fermi_c2050().num_sms);
    }

    #[test]
    fn config_roundtrips_through_serde() {
        let cfg = DeviceConfig::kepler_k20();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: DeviceConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
