//! A small set-associative LRU cache modelling the per-SM texture cache.
//!
//! The paper's "Tx" SpMV variants bind the input vector to a texture so
//! that gathers with locality (e.g. banded matrices) hit on chip. The cost
//! difference between the plain and Tx variants is exactly the hit/miss
//! behaviour of this structure, so it is modelled directly rather than
//! approximated analytically.

/// Set-associative cache with LRU replacement, tracking tags only.
///
/// Addresses are byte addresses; lines of `line_bytes` are indexed by
/// `(addr / line_bytes) % num_sets` with true-LRU within each set.
#[derive(Debug, Clone)]
pub struct TexCache {
    line_bytes: u64,
    num_sets: usize,
    assoc: usize,
    /// `tags[set * assoc + way]`; `u64::MAX` marks an empty way.
    tags: Vec<u64>,
    /// Per-way LRU stamps, parallel to `tags`.
    stamps: Vec<u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl TexCache {
    /// Create a cache of `capacity_bytes` with `line_bytes` lines and
    /// `assoc` ways. The set count is derived; a capacity smaller than one
    /// full set degenerates to a single set.
    pub fn new(capacity_bytes: usize, line_bytes: usize, assoc: usize) -> Self {
        assert!(
            line_bytes > 0 && assoc > 0,
            "cache geometry must be nonzero"
        );
        let lines = (capacity_bytes / line_bytes).max(assoc);
        let num_sets = (lines / assoc).max(1);
        Self {
            line_bytes: line_bytes as u64,
            num_sets,
            assoc,
            tags: vec![u64::MAX; num_sets * assoc],
            stamps: vec![0; num_sets * assoc],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Access one byte address; returns `true` on hit. Misses fill the LRU
    /// way of the set.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line_bytes;
        let set = (line % self.num_sets as u64) as usize;
        let base = set * self.assoc;
        self.clock += 1;

        // Hit path: refresh the way's stamp.
        for way in 0..self.assoc {
            if self.tags[base + way] == line {
                self.stamps[base + way] = self.clock;
                self.hits += 1;
                return true;
            }
        }
        // Miss path: evict the LRU way.
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for way in 0..self.assoc {
            if self.stamps[base + way] < oldest {
                oldest = self.stamps[base + way];
                victim = way;
            }
        }
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.clock;
        self.misses += 1;
        false
    }

    /// Total hits recorded so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate over all accesses, or 0 when nothing has been accessed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Drop all cached lines but keep hit/miss counters.
    pub fn invalidate(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = TexCache::new(1024, 32, 4);
        assert!(!c.access(100)); // cold miss
        assert!(c.access(100)); // hit
        assert!(c.access(96)); // same 32B line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn streaming_larger_than_capacity_always_misses() {
        let mut c = TexCache::new(256, 32, 2);
        // Two passes over 4 KiB — far beyond 256 B capacity — should miss on
        // (almost) every line both times.
        for pass in 0..2 {
            for line in 0..128u64 {
                let hit = c.access(line * 32);
                assert!(!hit, "pass {pass} line {line} unexpectedly hit");
            }
        }
        assert_eq!(c.hit_rate(), 0.0);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // One set, 2 ways, 32-byte lines: capacity 64 B.
        let mut c = TexCache::new(64, 32, 2);
        // Use addresses mapping to the same set (num_sets == 1 here).
        c.access(0); // miss, fills way 0
        c.access(32); // miss, fills way 1
        c.access(0); // hit; 32 is now LRU
        c.access(64); // miss, evicts line 32
        assert!(c.access(0), "line 0 should still be resident");
        assert!(!c.access(32), "line 32 should have been evicted");
    }

    #[test]
    fn invalidate_clears_contents_not_counters() {
        let mut c = TexCache::new(1024, 32, 4);
        c.access(0);
        c.access(0);
        let (h, m) = (c.hits(), c.misses());
        c.invalidate();
        assert_eq!((c.hits(), c.misses()), (h, m));
        assert!(!c.access(0), "post-invalidate access must miss");
    }

    #[test]
    fn tiny_capacity_degenerates_gracefully() {
        let mut c = TexCache::new(8, 32, 4); // smaller than one line
        assert!(!c.access(0));
        assert!(c.access(0));
    }
}
