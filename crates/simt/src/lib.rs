//! # nitro-simt — a warp-level SIMT GPU cost simulator
//!
//! The Nitro paper (IPDPS 2014) evaluates its autotuning framework on five
//! CUDA benchmarks running on an NVIDIA Tesla C2050. This crate substitutes
//! for that hardware: code variants execute *functionally* on the CPU (so
//! their results are real and testable) while charging their memory traffic,
//! divergence, atomics and launch behaviour to a simulated device. The
//! simulator then reports an elapsed time with the performance *structure*
//! of a Fermi-class GPU:
//!
//! * **Coalescing** — a warp-wide gather costs as many 128-byte transactions
//!   as distinct segments it touches ([`BlockCtx::warp_gather`]).
//! * **Divergence** — a warp-wide loop runs for the *longest* lane
//!   ([`BlockCtx::warp_loop`]); divergent branches serialize
//!   ([`BlockCtx::warp_branch`]).
//! * **Texture cache** — gathers routed through [`BlockCtx::tex_gather`] hit
//!   a small set-associative LRU cache, rewarding access locality.
//! * **Atomics** — same-address atomics within a warp serialize; global
//!   atomics additionally pay a device-wide contention penalty
//!   ([`BlockCtx::warp_atomic`]).
//! * **Scheduling** — thread blocks are placed on SMs either round-robin
//!   ("even share") or greedily ("dynamic"/work-queue), so skewed per-block
//!   work produces real load imbalance ([`Schedule`]).
//! * **Bandwidth roofline** — kernel time is floored by total DRAM bytes
//!   over device bandwidth.
//! * **Launch overhead** — every kernel launch pays a fixed cost, which is
//!   what distinguishes the paper's "Fused" from "Iterative" BFS variants.
//! * **Fault injection** — a seeded [`FaultPlan`] makes launches fail,
//!   slow down or corrupt their measurements *reproducibly* ([`fault`]),
//!   the substrate for the `nitro-guard` resilience layer's chaos tests.
//!
//! The model is deliberately analytic, not cycle-accurate: Nitro's
//! experiments only require that variant costs vary with input
//! *microstructure* in ways that are partially — but not fully — captured
//! by the features an expert registers with the tuner.
//!
//! ## Example
//!
//! ```
//! use nitro_simt::{DeviceConfig, Gpu, Schedule};
//!
//! let gpu = Gpu::new(DeviceConfig::fermi_c2050());
//! let data: Vec<u64> = (0..4096).collect();
//! let stats = gpu.launch("stream", data.len() / 256, Schedule::EvenShare, |block, ctx| {
//!     let base = block * 256;
//!     for warp in 0..8 {
//!         // A perfectly coalesced read: 32 consecutive u32 addresses.
//!         let addrs: Vec<u64> = (0..32).map(|l| ((base + warp * 32 + l) * 4) as u64).collect();
//!         ctx.warp_gather(&addrs, 4);
//!         ctx.charge_cycles(32.0);
//!     }
//! });
//! assert!(stats.elapsed_ns > 0.0);
//! ```

#![warn(missing_docs)]

pub mod block;
pub mod cache;
pub mod calibrate;
pub mod config;
pub mod fault;
pub mod gpu;
pub mod noise;
pub mod stats;

pub use block::BlockCtx;
pub use cache::TexCache;
pub use calibrate::{calibrate, Calibration};
pub use config::DeviceConfig;
pub use fault::{
    fault_plan, install_fault_plan, silence_injected_panics, uninstall_fault_plan, FaultOutcome,
    FaultPlan, INJECTED_PANIC_PREFIX,
};
pub use gpu::{Gpu, Schedule};
pub use noise::SplitMix64;
pub use stats::{KernelTally, LaunchStats};

/// Size in bytes of one global-memory transaction segment.
///
/// Fermi-class devices fetch global memory in 128-byte cache lines; a
/// warp-wide access costs one transaction per distinct segment touched.
pub const SEGMENT_BYTES: u64 = 128;

/// Number of threads in a warp. Fixed at 32 across every NVIDIA
/// architecture the paper considers.
pub const WARP_SIZE: usize = 32;
