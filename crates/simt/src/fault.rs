//! Seeded fault injection for the simulated device.
//!
//! A [`FaultPlan`] makes the simulator misbehave *reproducibly*: every
//! launch draws its fate from a [`SplitMix64`](crate::SplitMix64) stream
//! keyed on `(plan seed, device seed, kernel name, launch index)`, so a
//! given plan produces the same failures, slowdowns and corruptions on
//! every run — chaos tests and the `chaos_report` bench binary assert on
//! exact outcomes. The fault stream is independent of the measurement
//! noise stream: installing a plan whose probabilities are all zero
//! leaves launch timings bit-identical to an uninstalled plan.
//!
//! Three fault classes model what a production tuning service sees:
//!
//! * **Launch failure** — the launch panics (a lost kernel / driver
//!   error). The panic payload starts with [`INJECTED_PANIC_PREFIX`] so
//!   resilient dispatch layers (`nitro-guard`) can recognise it, and
//!   [`silence_injected_panics`] can keep it out of test output.
//! * **Transient slowdown** — the launch completes but its elapsed time
//!   is multiplied by `slowdown_factor` (an interfering tenant, thermal
//!   throttling).
//! * **Result corruption** — the launch reports NaN elapsed time and
//!   energy (a silently-bad measurement); downstream layers treat a
//!   non-finite objective as a failed variant execution.
//!
//! Plans install either per-device ([`Gpu::with_fault_plan`]
//! (crate::Gpu::with_fault_plan)) or process-globally
//! ([`install_fault_plan`]), mirroring `nitro_trace::install_global` —
//! the benchmark substrates construct their `Gpu`s internally, so a
//! global slot is the only hook a harness has.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, Once};

use serde::{Deserialize, Serialize};

use crate::noise::SplitMix64;

/// Prefix shared by every injected panic payload (launch failures here,
/// variant-level chaos decorators elsewhere). [`silence_injected_panics`]
/// filters panics whose message starts with this.
pub const INJECTED_PANIC_PREFIX: &str = "injected ";

/// What a fault plan decided for one launch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultOutcome {
    /// The launch proceeds normally.
    None,
    /// The launch panics with an `injected launch failure` payload.
    Fail,
    /// The launch completes, its busy time multiplied by the factor.
    Slow(f64),
    /// The launch completes but reports NaN elapsed time and energy.
    Corrupt,
}

/// A deterministic, seeded schedule of injected faults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed mixed into every per-launch fault draw.
    pub seed: u64,
    /// Probability a launch fails (panics) outright.
    pub launch_failure_prob: f64,
    /// Probability a surviving launch is transiently slowed.
    pub slowdown_prob: f64,
    /// Busy-time multiplier applied to slowed launches (≥ 1).
    pub slowdown_factor: f64,
    /// Probability a surviving launch reports corrupted (NaN) results.
    pub corruption_prob: f64,
    /// Kernels (by exact name) whose every launch fails, regardless of
    /// probability — models a variant that is broken outright.
    pub fail_kernels: Vec<String>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            launch_failure_prob: 0.0,
            slowdown_prob: 0.0,
            slowdown_factor: 1.0,
            corruption_prob: 0.0,
            fail_kernels: Vec::new(),
        }
    }
}

/// FNV-1a over the kernel name: a stable, dependency-free string hash so
/// fault draws decorrelate across kernels.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl FaultPlan {
    /// A plan with only a launch-failure probability set.
    pub fn with_failure_prob(seed: u64, p: f64) -> Self {
        Self {
            seed,
            launch_failure_prob: p,
            ..Self::default()
        }
    }

    /// Validate the plan's numeric fields. Returns one human-readable
    /// finding per violation; an empty vector means the plan is sound.
    /// (`nitro-guard` maps these to `NITRO052` diagnostics.)
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let mut check_prob = |name: &str, p: f64| {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                problems.push(format!("{name} must be a probability in [0, 1], got {p}"));
            }
        };
        check_prob("launch_failure_prob", self.launch_failure_prob);
        check_prob("slowdown_prob", self.slowdown_prob);
        check_prob("corruption_prob", self.corruption_prob);
        if !self.slowdown_factor.is_finite() || self.slowdown_factor <= 0.0 {
            problems.push(format!(
                "slowdown_factor must be a positive finite multiplier, got {}",
                self.slowdown_factor
            ));
        }
        problems
    }

    /// Decide the fate of one launch. Deterministic in
    /// `(self.seed, gpu_seed, kernel, launch_index)`; independent draws
    /// per fault class so enabling one class never shifts another.
    pub fn decide(&self, gpu_seed: u64, kernel: &str, launch_index: u64) -> FaultOutcome {
        if self.fail_kernels.iter().any(|k| k == kernel) {
            return FaultOutcome::Fail;
        }
        if self.launch_failure_prob <= 0.0
            && self.slowdown_prob <= 0.0
            && self.corruption_prob <= 0.0
        {
            return FaultOutcome::None;
        }
        let mut rng = SplitMix64::new(
            self.seed
                ^ gpu_seed.rotate_left(17)
                ^ fnv1a(kernel)
                ^ launch_index.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let (fail, corrupt, slow) = (rng.next_f64(), rng.next_f64(), rng.next_f64());
        if fail < self.launch_failure_prob {
            FaultOutcome::Fail
        } else if corrupt < self.corruption_prob {
            FaultOutcome::Corrupt
        } else if slow < self.slowdown_prob {
            FaultOutcome::Slow(self.slowdown_factor)
        } else {
            FaultOutcome::None
        }
    }
}

// --------------------------------------------------------------------
// Process-global plan slot (mirrors nitro_trace's global tracer slot).
// --------------------------------------------------------------------

static PLAN_INSTALLED: AtomicBool = AtomicBool::new(false);
static GLOBAL_PLAN: Mutex<Option<Arc<FaultPlan>>> = Mutex::new(None);

/// Install a process-global fault plan: every `Gpu` without a per-device
/// plan consults it. Replaces any previous plan.
pub fn install_fault_plan(plan: FaultPlan) {
    *GLOBAL_PLAN.lock().expect("global fault plan lock") = Some(Arc::new(plan));
    PLAN_INSTALLED.store(true, Ordering::Release);
}

/// Remove the global fault plan, returning it if one was installed.
pub fn uninstall_fault_plan() -> Option<Arc<FaultPlan>> {
    PLAN_INSTALLED.store(false, Ordering::Release);
    GLOBAL_PLAN.lock().expect("global fault plan lock").take()
}

/// The installed global fault plan, if any. One atomic load on the
/// (common) uninstalled path, so fault-free launches pay ~nothing.
pub fn fault_plan() -> Option<Arc<FaultPlan>> {
    if !PLAN_INSTALLED.load(Ordering::Acquire) {
        return None;
    }
    GLOBAL_PLAN.lock().expect("global fault plan lock").clone()
}

/// Install a panic hook that swallows injected-fault panics (payloads
/// starting with [`INJECTED_PANIC_PREFIX`]) and forwards everything else
/// to the previous hook. Idempotent; chaos harnesses call it once so a
/// 5%-failure plan doesn't spray hundreds of backtraces into CI logs.
pub fn silence_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.starts_with(INJECTED_PANIC_PREFIX))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<&str>()
                        .map(|s| s.starts_with(INJECTED_PANIC_PREFIX))
                })
                .unwrap_or(false);
            if !injected {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_injects_nothing() {
        let plan = FaultPlan::default();
        for i in 0..1000 {
            assert_eq!(plan.decide(7, "k", i), FaultOutcome::None);
        }
        assert!(plan.validate().is_empty());
    }

    #[test]
    fn decisions_are_deterministic() {
        let plan = FaultPlan {
            seed: 42,
            launch_failure_prob: 0.05,
            slowdown_prob: 0.1,
            slowdown_factor: 3.0,
            corruption_prob: 0.02,
            ..FaultPlan::default()
        };
        for i in 0..500 {
            assert_eq!(plan.decide(9, "spmv", i), plan.decide(9, "spmv", i));
        }
    }

    #[test]
    fn failure_rate_tracks_probability() {
        let plan = FaultPlan::with_failure_prob(1, 0.05);
        let fails = (0..10_000)
            .filter(|&i| plan.decide(3, "k", i) == FaultOutcome::Fail)
            .count();
        // 5% ± generous slack on 10k draws.
        assert!((300..=700).contains(&fails), "fails {fails}");
    }

    #[test]
    fn kernels_and_devices_decorrelate() {
        let plan = FaultPlan::with_failure_prob(1, 0.5);
        let pattern = |gpu: u64, kernel: &str| -> Vec<bool> {
            (0..64)
                .map(|i| plan.decide(gpu, kernel, i) == FaultOutcome::Fail)
                .collect()
        };
        assert_ne!(pattern(1, "a"), pattern(1, "b"));
        assert_ne!(pattern(1, "a"), pattern(2, "a"));
    }

    #[test]
    fn fail_kernels_always_fail() {
        let plan = FaultPlan {
            fail_kernels: vec!["victim".into()],
            ..FaultPlan::default()
        };
        for i in 0..100 {
            assert_eq!(plan.decide(0, "victim", i), FaultOutcome::Fail);
            assert_eq!(plan.decide(0, "victim_tx", i), FaultOutcome::None);
        }
    }

    #[test]
    fn validate_flags_bad_probabilities_and_factor() {
        let plan = FaultPlan {
            launch_failure_prob: 1.5,
            slowdown_prob: -0.1,
            corruption_prob: f64::NAN,
            slowdown_factor: 0.0,
            ..FaultPlan::default()
        };
        let problems = plan.validate();
        assert_eq!(problems.len(), 4, "{problems:?}");
    }

    #[test]
    fn global_slot_installs_and_uninstalls() {
        // Other tests share the process-global slot, so keep this one
        // self-contained: install, observe, uninstall.
        install_fault_plan(FaultPlan::with_failure_prob(5, 0.25));
        let seen = fault_plan().expect("installed");
        assert_eq!(seen.launch_failure_prob, 0.25);
        let taken = uninstall_fault_plan().expect("taken");
        assert_eq!(taken.seed, 5);
    }
}
