//! Property-based tests for the SIMT cost model invariants.

use nitro_simt::{DeviceConfig, Gpu, Schedule, TexCache, WARP_SIZE};
use proptest::prelude::*;

fn quiet_gpu() -> Gpu {
    Gpu::new(DeviceConfig::fermi_c2050().noiseless())
}

proptest! {
    /// A warp gather costs between 1 and 32 transactions per 32-lane group.
    #[test]
    fn gather_transactions_bounded(addrs in prop::collection::vec(0u64..1_000_000, 1..256)) {
        let gpu = quiet_gpu();
        let n_warps = addrs.len().div_ceil(WARP_SIZE) as u64;
        let stats = gpu.launch("g", 1, Schedule::EvenShare, |_, ctx| {
            ctx.warp_gather(&addrs, 4);
        });
        prop_assert!(stats.tally.transactions >= n_warps);
        prop_assert!(stats.tally.transactions <= n_warps * WARP_SIZE as u64);
    }

    /// Cache hit rate is always within [0, 1], and hits + misses == accesses.
    #[test]
    fn cache_accounting_consistent(addrs in prop::collection::vec(0u64..100_000, 1..2000)) {
        let mut cache = TexCache::new(4096, 32, 4);
        for &a in &addrs {
            cache.access(a);
        }
        prop_assert_eq!(cache.hits() + cache.misses(), addrs.len() as u64);
        prop_assert!((0.0..=1.0).contains(&cache.hit_rate()));
    }

    /// Sorting addresses makes each distinct segment contiguous, so the
    /// sorted transaction count is at most #distinct-segments plus one
    /// boundary split per extra warp — and every layout costs at least
    /// #distinct-segments. (Sorting CAN be one worse per warp boundary.)
    #[test]
    fn sorted_gather_close_to_optimal(mut addrs in prop::collection::vec(0u64..1_000_000, 32..512)) {
        let gpu = quiet_gpu();
        let n_warps = addrs.len().div_ceil(WARP_SIZE) as u64;
        let mut segs: Vec<u64> = addrs.iter().map(|a| a / 128).collect();
        segs.sort_unstable();
        segs.dedup();
        let distinct = segs.len() as u64;

        let unsorted = gpu.launch("g", 1, Schedule::EvenShare, |_, ctx| {
            ctx.warp_gather(&addrs, 4);
        });
        addrs.sort_unstable();
        let sorted = gpu.launch("g", 1, Schedule::EvenShare, |_, ctx| {
            ctx.warp_gather(&addrs, 4);
        });
        prop_assert!(sorted.tally.transactions < distinct + n_warps);
        prop_assert!(unsorted.tally.transactions >= distinct);
    }

    /// Elapsed time is monotone in added compute work.
    #[test]
    fn elapsed_monotone_in_work(base in 1.0e3f64..1.0e6, extra in 0.0f64..1.0e6) {
        let gpu = quiet_gpu();
        let t1 = gpu.launch("k", 14, Schedule::EvenShare, |_, ctx| ctx.charge_cycles(base)).elapsed_ns;
        let t2 = gpu.launch("k", 14, Schedule::EvenShare, |_, ctx| ctx.charge_cycles(base + extra)).elapsed_ns;
        prop_assert!(t2 >= t1);
    }

    /// Dynamic (greedy) scheduling satisfies Graham's bound: busiest SM
    /// load ≤ mean load + one block, regardless of cost distribution.
    #[test]
    fn dynamic_satisfies_graham_bound(
        costs in prop::collection::vec(0.0f64..1.0e6, 1..200)
    ) {
        let gpu = quiet_gpu();
        let cycle_ns = gpu.config().cycle_ns();
        let dispatch = 40.0; // per-block dynamic dispatch cycles
        let dy = gpu.launch("k", costs.len(), Schedule::Dynamic, |b, ctx| ctx.charge_cycles(costs[b]));
        let busy = dy.elapsed_ns - gpu.config().launch_overhead_ns;
        let per_block: Vec<f64> = costs.iter().map(|c| (c + dispatch) * cycle_ns).collect();
        let mean = per_block.iter().sum::<f64>() / gpu.config().num_sms as f64;
        let max_block = per_block.iter().cloned().fold(0.0, f64::max);
        prop_assert!(busy <= mean + max_block + 1e-6,
            "busy {} mean {} max_block {}", busy, mean, max_block);
    }

    /// The bandwidth roofline holds: elapsed >= dram_bytes / bandwidth.
    #[test]
    fn roofline_lower_bound(bytes in 1.0e3f64..1.0e8) {
        let gpu = quiet_gpu();
        let s = gpu.launch("stream", 14, Schedule::EvenShare, |_, ctx| {
            ctx.bulk_mem(bytes / 14.0, 1.0);
        });
        prop_assert!(s.elapsed_ns + 1e-9 >= gpu.config().dram_ns(s.tally.dram_bytes));
    }
}
