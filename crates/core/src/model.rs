//! Persistable variant-selection models.
//!
//! The paper's autotuner communicates with the C++ library through
//! generated files; the Rust analog is a JSON [`ModelArtifact`] pairing
//! the trained classifier with the variant/feature names it was fitted
//! against, so loading into a mismatched `code_variant` is detected
//! rather than silently mispredicting.

use std::path::Path;

use nitro_ml::TrainedModel;
use serde::{Deserialize, Serialize};

use crate::error::{NitroError, Result};
use crate::policy::TuningPolicy;

/// Artifact format version written by this build.
///
/// Version history: `0` — pre-versioned artifacts (the field is absent
/// from their JSON and deserializes to 0); `1` — current format.
/// Loading an artifact *newer* than this constant is an error; loading a
/// legacy `0` artifact works but the auditor flags it.
pub const MODEL_SCHEMA_VERSION: u32 = 1;

/// A trained model plus the metadata needed to validate installation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelArtifact {
    /// Artifact format version (see [`MODEL_SCHEMA_VERSION`]). Absent in
    /// legacy artifacts, which read back as 0.
    #[serde(default)]
    pub schema_version: u32,
    /// Name of the tuned function (the `code_variant`'s name).
    pub function: String,
    /// Variant names, in registration order, at training time.
    pub variant_names: Vec<String>,
    /// Feature names, in registration order, at training time.
    pub feature_names: Vec<String>,
    /// The policy the model was trained under (records classifier choice,
    /// feature subset, objective direction…).
    pub policy: TuningPolicy,
    /// The fitted classifier.
    pub model: TrainedModel,
}

impl ModelArtifact {
    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> Result<String> {
        Ok(serde_json::to_string_pretty(self)?)
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Self> {
        Ok(serde_json::from_str(s)?)
    }

    /// Write the artifact to a file, atomically.
    ///
    /// The JSON is written to a temp file in the target directory,
    /// fsynced and renamed into place ([`crate::fsio::atomic_write`]),
    /// so a crash mid-save can never leave a torn artifact behind: a
    /// reader observes either the previous artifact or the complete new
    /// one. Every save path (`Context::store_model`,
    /// `CodeVariant::save_model`, the autotuner's `save_model` option,
    /// the examples) funnels through here.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        crate::fsio::atomic_write(path, self.to_json()?.as_bytes())
    }

    /// Read an artifact from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let s = std::fs::read_to_string(path)?;
        Self::from_json(&s)
    }

    /// Check that this artifact matches a function's registered variant
    /// and feature names.
    pub fn validate(&self, function: &str, variants: &[String], features: &[String]) -> Result<()> {
        if self.schema_version > MODEL_SCHEMA_VERSION {
            return Err(NitroError::ModelMismatch {
                detail: format!(
                    "artifact schema version {} is newer than this build supports ({})",
                    self.schema_version, MODEL_SCHEMA_VERSION
                ),
            });
        }
        if self.function != function {
            return Err(NitroError::ModelMismatch {
                detail: format!("artifact is for '{}', not '{function}'", self.function),
            });
        }
        if self.variant_names != variants {
            return Err(NitroError::ModelMismatch {
                detail: format!(
                    "variant lists differ: trained {:?} vs registered {:?}",
                    self.variant_names, variants
                ),
            });
        }
        if self.feature_names != features {
            return Err(NitroError::ModelMismatch {
                detail: format!(
                    "feature lists differ: trained {:?} vs registered {:?}",
                    self.feature_names, features
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nitro_ml::{ClassifierConfig, Dataset};

    fn artifact() -> ModelArtifact {
        let data = Dataset::from_parts(
            vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]],
            vec![0, 0, 1, 1],
        );
        let model = TrainedModel::train(
            &ClassifierConfig::Svm {
                c: Some(1.0),
                gamma: Some(1.0),
                grid_search: false,
                cache_bytes: None,
            },
            &data,
        );
        ModelArtifact {
            schema_version: MODEL_SCHEMA_VERSION,
            function: "spmv".into(),
            variant_names: vec!["csr".into(), "dia".into()],
            feature_names: vec!["nnz".into()],
            policy: TuningPolicy::default(),
            model,
        }
    }

    #[test]
    fn json_round_trip() {
        let a = artifact();
        let j = a.to_json().unwrap();
        let back = ModelArtifact::from_json(&j).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn file_round_trip() {
        let a = artifact();
        let dir = std::env::temp_dir().join("nitro-core-model-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spmv.model.json");
        a.save(&path).unwrap();
        let back = ModelArtifact::load(&path).unwrap();
        assert_eq!(a, back);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn validate_accepts_matching_lists() {
        let a = artifact();
        assert!(a
            .validate("spmv", &["csr".into(), "dia".into()], &["nnz".into()])
            .is_ok());
    }

    #[test]
    fn validate_rejects_wrong_function_or_lists() {
        let a = artifact();
        assert!(a
            .validate("bfs", &["csr".into(), "dia".into()], &["nnz".into()])
            .is_err());
        assert!(a
            .validate("spmv", &["csr".into()], &["nnz".into()])
            .is_err());
        assert!(a
            .validate("spmv", &["csr".into(), "dia".into()], &["rows".into()])
            .is_err());
    }

    #[test]
    fn legacy_artifact_without_schema_version_reads_as_zero() {
        let a = artifact();
        let json = a.to_json().unwrap();
        let legacy = json.replacen(
            &format!("\"schema_version\": {MODEL_SCHEMA_VERSION},"),
            "",
            1,
        );
        assert_ne!(
            json, legacy,
            "schema_version field not found in serialized artifact"
        );
        let back = ModelArtifact::from_json(&legacy).unwrap();
        assert_eq!(back.schema_version, 0);
        // Legacy artifacts still validate (the auditor warns instead).
        assert!(back
            .validate("spmv", &["csr".into(), "dia".into()], &["nnz".into()])
            .is_ok());
    }

    #[test]
    fn newer_schema_version_is_rejected() {
        let mut a = artifact();
        a.schema_version = MODEL_SCHEMA_VERSION + 1;
        let err = a
            .validate("spmv", &["csr".into(), "dia".into()], &["nnz".into()])
            .unwrap_err();
        assert!(err.to_string().contains("schema version"));
    }
}
