//! Durable filesystem primitives and content checksums.
//!
//! Model artifacts, tuning journals and store manifests all survive
//! process crashes only if their writes are crash-consistent. This
//! module provides the two building blocks the persistence layers
//! (`ModelArtifact::save`, `nitro-store`) share:
//!
//! * [`crc32`] — the IEEE CRC-32 used to checksum artifact payloads and
//!   journal lines (dependency-free, table generated at compile time).
//! * [`atomic_write`] — write-to-temp + fsync + rename, so a reader can
//!   never observe a torn file: it sees either the old contents or the
//!   complete new contents, even across a crash mid-write.

use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::{NitroError, Result};

/// IEEE 802.3 CRC-32 lookup table, generated at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC-32 of a byte slice (the checksum `cksum`-style tools and the
/// artifact store agree on). Stable across platforms and releases — it
/// is persisted inside journals and manifests.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Monotonic counter distinguishing concurrent temp files in one process.
static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Atomically replace `path` with `bytes`.
///
/// Writes to a temp file *in the same directory* (rename is only atomic
/// within a filesystem), fsyncs the data, renames over the target, then
/// best-effort fsyncs the directory so the rename itself is durable. A
/// crash at any point leaves either the previous contents or the new
/// contents — never a torn file. The temp file is cleaned up on failure.
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8]) -> Result<()> {
    let path = path.as_ref();
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| {
            NitroError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("atomic_write target has no file name: {}", path.display()),
            ))
        })?
        .to_string();
    let tmp = parent.join(format!(
        ".{file_name}.tmp.{}.{}",
        std::process::id(),
        TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));

    let write = (|| -> std::io::Result<()> {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    })();
    if let Err(e) = write {
        std::fs::remove_file(&tmp).ok();
        return Err(NitroError::Io(e));
    }
    // Durability of the rename itself: fsync the directory. Opening a
    // directory read-only works on unix; elsewhere this is best-effort.
    if let Ok(dir) = File::open(&parent) {
        dir.sync_all().ok();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data = b"nitro artifact payload".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn atomic_write_replaces_contents_and_leaves_no_temp() {
        let dir = crate::context::temp_model_dir("fsio-atomic").unwrap();
        let path = dir.join("target.json");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer contents").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer contents");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn atomic_write_into_missing_directory_errors() {
        let dir = crate::context::temp_model_dir("fsio-missing").unwrap();
        let path = dir.join("no-such-subdir").join("target.json");
        assert!(matches!(atomic_write(&path, b"x"), Err(NitroError::Io(_))));
        std::fs::remove_dir_all(dir).ok();
    }
}
