//! Durable filesystem primitives, content checksums, and the
//! fault-injection seam underneath them.
//!
//! Model artifacts, tuning journals and store manifests all survive
//! process crashes only if their writes are crash-consistent. This
//! module provides the building blocks the persistence layers
//! (`ModelArtifact::save`, `nitro-store`) share:
//!
//! * [`crc32`] — the IEEE CRC-32 used to checksum artifact payloads and
//!   journal lines (dependency-free, table generated at compile time).
//! * [`atomic_write`] — write-to-temp + fsync + rename, so a reader can
//!   never observe a torn file: it sees either the old contents or the
//!   complete new contents, even across a crash mid-write.
//! * [`FsPolicy`] — the chaos seam: every policy-aware operation
//!   ([`atomic_write_with`], [`fs_read`]) consults an optional policy
//!   before touching the filesystem. The default (`None`) is a pure
//!   passthrough; a seeded [`ChaosFs`] injects torn writes, `ENOSPC`,
//!   read `EIO` and failed renames as a **pure function of
//!   `(seed, path hash, op index)`**, so a fault schedule replays
//!   exactly under the same seed.
//! * [`RetryPolicy`] — a bounded, deterministically-jittered retry for
//!   transient I/O faults. Persistence layers retry through it and
//!   surface exhaustion as a typed error (`NITRO113`) instead of
//!   looping forever or giving up on the first blip.

use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::{NitroError, Result};

/// IEEE 802.3 CRC-32 lookup table, generated at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC-32 of a byte slice (the checksum `cksum`-style tools and the
/// artifact store agree on). Stable across platforms and releases — it
/// is persisted inside journals and manifests.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// SplitMix64 finalizer: the one seeded hash every chaos component
/// (fault schedules, retry jitter, shard decorrelation) derives its
/// streams from. Statistically well-mixed, trivially portable, and —
/// crucially — a pure function, so every chaos decision is replayable.
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Map a hash word onto `[0, 1)` with 53 bits of precision.
fn unit_fraction(word: u64) -> f64 {
    (word >> 11) as f64 / (1u64 << 53) as f64
}

/// Which filesystem operation a policy is being consulted about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsOp {
    /// Reading a file's contents.
    Read,
    /// Writing new contents (the temp-file stage of an atomic write, or
    /// a journal append).
    Write,
    /// The rename that makes an atomic write visible.
    Rename,
}

/// A fault a policy can inject into one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsFault {
    /// A crash mid-write: only a prefix of the bytes lands, and the
    /// operation fails with `ErrorKind::Interrupted`. **Never retried
    /// blindly** — the partial bytes are already on disk, so the layer
    /// above must re-establish consistency first (atomic writes are
    /// naturally safe: the tear lands in the invisible temp file).
    TornWrite,
    /// The device is out of space (`ENOSPC`-shaped). Nothing was
    /// written; safe to retry.
    NoSpace,
    /// A read failed with an `EIO`-shaped error. Safe to retry.
    ReadError,
    /// The visibility rename failed. The target still holds its old
    /// contents; safe to retry.
    RenameFailed,
}

impl FsFault {
    /// Render this fault as the `std::io::Error` the faulted operation
    /// surfaces.
    pub fn to_error(self, path: &Path) -> std::io::Error {
        let p = path.display();
        match self {
            FsFault::TornWrite => std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                format!("chaos-fs: torn write (crash mid-write) on {p}"),
            ),
            FsFault::NoSpace => std::io::Error::other(format!(
                "chaos-fs: no space left on device (ENOSPC) writing {p}"
            )),
            FsFault::ReadError => {
                std::io::Error::other(format!("chaos-fs: I/O error (EIO) reading {p}"))
            }
            FsFault::RenameFailed => {
                std::io::Error::other(format!("chaos-fs: rename failed installing {p}"))
            }
        }
    }
}

/// The fault-injection seam. Implementations decide, per operation,
/// whether to inject a fault; `None` means the operation proceeds.
///
/// The passthrough policy is simply *no policy* — every policy-aware
/// helper takes `Option<&dyn FsPolicy>` and `None` short-circuits to
/// the plain filesystem call.
pub trait FsPolicy: Send + Sync + std::fmt::Debug {
    /// Consulted immediately before `op` touches `path`. Returning
    /// `Some(fault)` injects that fault instead of performing the
    /// operation (for [`FsFault::TornWrite`], a partial write *is*
    /// performed first).
    fn fault(&self, op: FsOp, path: &Path) -> Option<FsFault>;
}

/// Seeded chaos policy: injects each fault class with a configured
/// probability, decided as a pure function of `(seed, path hash,
/// op index)`. The op index is a process-wide counter over every
/// consultation of this policy instance, so a fixed sequence of
/// operations under a fixed seed replays the exact same fault schedule.
#[derive(Debug)]
pub struct ChaosFs {
    seed: u64,
    torn_write: f64,
    no_space: f64,
    read_error: f64,
    rename_failed: f64,
    ops: AtomicU64,
    injected: AtomicU64,
}

impl ChaosFs {
    /// A chaos policy with every probability zero (a passthrough until
    /// probabilities are raised via [`ChaosFs::with_probs`]).
    pub fn new(seed: u64) -> Self {
        Self::with_probs(seed, 0.0, 0.0, 0.0, 0.0)
    }

    /// A chaos policy injecting torn writes, `ENOSPC`, read `EIO` and
    /// failed renames with the given per-operation probabilities
    /// (each clamped to `[0, 1]`).
    pub fn with_probs(
        seed: u64,
        torn_write: f64,
        no_space: f64,
        read_error: f64,
        rename_failed: f64,
    ) -> Self {
        let clamp = |p: f64| {
            if p.is_finite() {
                p.clamp(0.0, 1.0)
            } else {
                0.0
            }
        };
        Self {
            seed,
            torn_write: clamp(torn_write),
            no_space: clamp(no_space),
            read_error: clamp(read_error),
            rename_failed: clamp(rename_failed),
            ops: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Operations consulted so far.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    /// The draw for `(path, op index, lane)`: a pure function of the
    /// seed, so the schedule replays under the same operation sequence.
    fn draw(&self, path: &Path, index: u64, lane: u64) -> f64 {
        let mut h = self.seed;
        for b in path.as_os_str().as_encoded_bytes() {
            h = mix64(h ^ u64::from(*b));
        }
        unit_fraction(mix64(
            h ^ mix64(index.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ lane),
        ))
    }
}

impl FsPolicy for ChaosFs {
    fn fault(&self, op: FsOp, path: &Path) -> Option<FsFault> {
        let index = self.ops.fetch_add(1, Ordering::SeqCst);
        let fault = match op {
            FsOp::Read => {
                (self.draw(path, index, 1) < self.read_error).then_some(FsFault::ReadError)
            }
            FsOp::Write => {
                if self.draw(path, index, 2) < self.torn_write {
                    Some(FsFault::TornWrite)
                } else if self.draw(path, index, 3) < self.no_space {
                    Some(FsFault::NoSpace)
                } else {
                    None
                }
            }
            FsOp::Rename => {
                (self.draw(path, index, 4) < self.rename_failed).then_some(FsFault::RenameFailed)
            }
        };
        if fault.is_some() {
            self.injected.fetch_add(1, Ordering::SeqCst);
        }
        fault
    }
}

/// Whether an I/O error is worth retrying. `NotFound` and
/// `InvalidInput` are semantic, not transient — retrying them only
/// delays the real answer.
pub fn is_retryable(e: &std::io::Error) -> bool {
    !matches!(
        e.kind(),
        std::io::ErrorKind::NotFound | std::io::ErrorKind::InvalidInput
    )
}

/// Bounded retry with deterministically-jittered exponential backoff
/// for transient filesystem faults.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (first try included); at least 1.
    pub max_attempts: u32,
    /// Backoff before the first retry, ns; doubles per further retry.
    pub backoff_base_ns: u64,
    /// Jitter fraction in `[0, 1]`: each pause is scaled by a
    /// deterministic factor in `[1 − jitter, 1 + jitter)` so concurrent
    /// retriers decorrelate instead of thundering in lockstep.
    pub jitter: f64,
    /// Seed of the jitter stream (salted per call site).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            backoff_base_ns: 50_000,
            jitter: 0.5,
            seed: 0x5EED_F5F5_0B0E_11A5,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, no pause).
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            backoff_base_ns: 0,
            ..Self::default()
        }
    }

    /// The jittered pause before retry number `attempt` (1-based), for
    /// a call site identified by `salt`. Pure: the same
    /// `(seed, salt, attempt)` always yields the same pause.
    pub fn backoff_ns(&self, salt: u64, attempt: u32) -> u64 {
        let base = self
            .backoff_base_ns
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(32));
        let jitter = if self.jitter.is_finite() {
            self.jitter.clamp(0.0, 1.0)
        } else {
            0.0
        };
        if jitter == 0.0 || base == 0 {
            return base;
        }
        let u = unit_fraction(mix64(self.seed ^ mix64(salt) ^ u64::from(attempt)));
        let factor = 1.0 + jitter * (2.0 * u - 1.0);
        (base as f64 * factor) as u64
    }

    /// Run `f` up to `max_attempts` times, sleeping the jittered
    /// backoff between attempts. Non-retryable errors ([`is_retryable`])
    /// and torn writes (`ErrorKind::Interrupted` — partial bytes are
    /// already on disk unless the caller says otherwise) short-circuit
    /// when `retry_torn` is false. Returns the final result plus the
    /// number of attempts made.
    pub fn run<T>(
        &self,
        salt: u64,
        retry_torn: bool,
        mut f: impl FnMut() -> std::io::Result<T>,
    ) -> (std::io::Result<T>, u32) {
        let max = self.max_attempts.max(1);
        let mut attempt = 0;
        loop {
            attempt += 1;
            match f() {
                Ok(v) => return (Ok(v), attempt),
                Err(e) => {
                    let torn_stop = !retry_torn && e.kind() == std::io::ErrorKind::Interrupted;
                    if attempt >= max || !is_retryable(&e) || torn_stop {
                        return (Err(e), attempt);
                    }
                    let pause = self.backoff_ns(salt, attempt);
                    if pause > 0 {
                        std::thread::sleep(std::time::Duration::from_nanos(pause));
                    }
                }
            }
        }
    }
}

/// Read a file's bytes through the policy seam: `Read` faults surface
/// as the injected error, everything else is `std::fs::read`.
pub fn fs_read(path: impl AsRef<Path>, policy: Option<&dyn FsPolicy>) -> std::io::Result<Vec<u8>> {
    let path = path.as_ref();
    if let Some(p) = policy {
        if let Some(fault) = p.fault(FsOp::Read, path) {
            return Err(fault.to_error(path));
        }
    }
    std::fs::read(path)
}

/// Monotonic counter distinguishing concurrent temp files in one process.
static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Atomically replace `path` with `bytes` (no fault policy — the
/// passthrough form of [`atomic_write_with`]).
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8]) -> Result<()> {
    atomic_write_with(path, bytes, None)
}

/// Atomically replace `path` with `bytes`, consulting `policy` at the
/// write and rename stages.
///
/// Writes to a temp file *in the same directory* (rename is only atomic
/// within a filesystem), fsyncs the data, renames over the target, then
/// best-effort fsyncs the directory so the rename itself is durable. A
/// crash at any point — injected or real — leaves either the previous
/// contents or the new contents at `path`, **never a torn file**:
///
/// * an injected [`FsFault::TornWrite`] leaves its partial bytes in the
///   invisible temp file (exactly what a kill mid-write leaves) and the
///   target untouched;
/// * an injected [`FsFault::NoSpace`] fails before any byte lands;
/// * an injected [`FsFault::RenameFailed`] fails after the temp file is
///   complete but before it becomes visible; the temp is cleaned up.
pub fn atomic_write_with(
    path: impl AsRef<Path>,
    bytes: &[u8],
    policy: Option<&dyn FsPolicy>,
) -> Result<()> {
    let path = path.as_ref();
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| {
            NitroError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("atomic_write target has no file name: {}", path.display()),
            ))
        })?
        .to_string();
    let tmp = parent.join(format!(
        ".{file_name}.tmp.{}.{}",
        std::process::id(),
        TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));

    if let Some(p) = policy {
        match p.fault(FsOp::Write, path) {
            Some(FsFault::TornWrite) => {
                // Simulate the crash faithfully: a prefix of the bytes
                // lands in the temp file, which stays behind as the
                // orphan a real kill would leave. The target is never
                // touched.
                if let Ok(mut f) = File::create(&tmp) {
                    let _ = f.write_all(&bytes[..bytes.len() / 2]);
                    let _ = f.flush();
                }
                return Err(NitroError::Io(FsFault::TornWrite.to_error(path)));
            }
            Some(fault) => return Err(NitroError::Io(fault.to_error(path))),
            None => {}
        }
    }

    let write = (|| -> std::io::Result<()> {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        if let Some(p) = policy {
            if let Some(fault) = p.fault(FsOp::Rename, path) {
                return Err(fault.to_error(path));
            }
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    })();
    if let Err(e) = write {
        std::fs::remove_file(&tmp).ok();
        return Err(NitroError::Io(e));
    }
    // Durability of the rename itself: fsync the directory. Opening a
    // directory read-only works on unix; elsewhere this is best-effort.
    if let Ok(dir) = File::open(&parent) {
        dir.sync_all().ok();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data = b"nitro artifact payload".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn atomic_write_replaces_contents_and_leaves_no_temp() {
        let dir = crate::context::temp_model_dir("fsio-atomic").unwrap();
        let path = dir.join("target.json");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer contents").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer contents");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn atomic_write_into_missing_directory_errors() {
        let dir = crate::context::temp_model_dir("fsio-missing").unwrap();
        let path = dir.join("no-such-subdir").join("target.json");
        assert!(matches!(atomic_write(&path, b"x"), Err(NitroError::Io(_))));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn chaos_schedule_is_a_pure_function_of_seed_path_and_op_index() {
        let mk = || ChaosFs::with_probs(42, 0.3, 0.2, 0.4, 0.3);
        let (a, b) = (mk(), mk());
        let paths = [Path::new("m/manifest.json"), Path::new("m/v000001.json")];
        for i in 0..256 {
            let op = match i % 3 {
                0 => FsOp::Read,
                1 => FsOp::Write,
                _ => FsOp::Rename,
            };
            let path = paths[i % 2];
            assert_eq!(a.fault(op, path), b.fault(op, path), "op {i} diverged");
        }
        assert!(a.injected() > 0, "probabilities this high must inject");
        assert_eq!(a.injected(), b.injected());
        // A different seed decorrelates the schedule.
        let c = ChaosFs::with_probs(43, 0.3, 0.2, 0.4, 0.3);
        let mut diverged = false;
        for _ in 0..256 {
            let fresh = mk();
            for _ in 0..8 {
                let _ = fresh.fault(FsOp::Write, paths[0]);
            }
            if c.fault(FsOp::Write, paths[0]) != a.fault(FsOp::Write, paths[0]) {
                diverged = true;
                break;
            }
        }
        assert!(diverged, "seed 43 never diverged from seed 42");
    }

    #[test]
    fn atomic_write_never_tears_the_target_under_injected_faults() {
        let dir = crate::context::temp_model_dir("fsio-chaos").unwrap();
        let path = dir.join("target.json");
        atomic_write(&path, b"genesis").unwrap();
        let mut expected: Vec<u8> = b"genesis".to_vec();
        let mut classes_seen = std::collections::HashSet::new();
        for seed in 0..64u64 {
            let chaos = ChaosFs::with_probs(seed, 0.25, 0.25, 0.25, 0.25);
            for i in 0..8 {
                let next = format!("seed {seed} write {i} with enough bytes to notice a tear");
                match atomic_write_with(&path, next.as_bytes(), Some(&chaos)) {
                    Ok(()) => expected = next.into_bytes(),
                    Err(NitroError::Io(e)) => {
                        classes_seen.insert(
                            e.to_string().split(':').nth(1).map(|s| {
                                s.trim().split(' ').next().unwrap_or_default().to_string()
                            }),
                        );
                    }
                    Err(other) => panic!("unexpected error type: {other}"),
                }
                assert_eq!(
                    std::fs::read(&path).unwrap(),
                    expected,
                    "target torn at seed {seed} op {i}"
                );
            }
        }
        assert!(
            classes_seen.len() >= 2,
            "fault mix too narrow: {classes_seen:?}"
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn read_faults_surface_and_pass_through_otherwise() {
        let dir = crate::context::temp_model_dir("fsio-read").unwrap();
        let path = dir.join("blob");
        std::fs::write(&path, b"payload").unwrap();
        let always = ChaosFs::with_probs(7, 0.0, 0.0, 1.0, 0.0);
        let err = fs_read(&path, Some(&always)).unwrap_err();
        assert!(err.to_string().contains("chaos-fs"), "{err}");
        let never = ChaosFs::new(7);
        assert_eq!(fs_read(&path, Some(&never)).unwrap(), b"payload");
        assert_eq!(fs_read(&path, None).unwrap(), b"payload");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn retry_rides_out_transient_faults_and_bounds_permanent_ones() {
        let dir = crate::context::temp_model_dir("fsio-retry").unwrap();
        let path = dir.join("target.json");
        let policy = RetryPolicy {
            max_attempts: 12,
            backoff_base_ns: 10,
            ..RetryPolicy::default()
        };
        // 50 % ENOSPC: 12 attempts all failing is a 1-in-4096 seed; this
        // seed succeeds.
        let flaky = ChaosFs::with_probs(5, 0.0, 0.5, 0.0, 0.0);
        let (result, attempts) = policy.run(1, false, || {
            atomic_write_with(&path, b"landed", Some(&flaky)).map_err(|e| match e {
                NitroError::Io(io) => io,
                other => std::io::Error::other(other.to_string()),
            })
        });
        result.unwrap();
        assert!(attempts >= 1);
        assert_eq!(std::fs::read(&path).unwrap(), b"landed");

        // Probability 1 is a permanent fault: bounded attempts, then the
        // last error surfaces.
        let bricked = ChaosFs::with_probs(5, 0.0, 1.0, 0.0, 0.0);
        let (result, attempts) = policy.run(1, false, || {
            atomic_write_with(&path, b"never", Some(&bricked)).map_err(|e| match e {
                NitroError::Io(io) => io,
                other => std::io::Error::other(other.to_string()),
            })
        });
        assert!(result.is_err());
        assert_eq!(attempts, 12, "every attempt was used before giving up");
        assert_eq!(std::fs::read(&path).unwrap(), b"landed");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn retry_short_circuits_semantic_and_torn_errors() {
        let policy = RetryPolicy {
            max_attempts: 8,
            backoff_base_ns: 0,
            ..RetryPolicy::default()
        };
        let mut calls = 0;
        let (r, attempts) = policy.run(0, false, || -> std::io::Result<()> {
            calls += 1;
            Err(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"))
        });
        assert!(r.is_err());
        assert_eq!((attempts, calls), (1, 1), "NotFound is never retried");

        let mut calls = 0;
        let (r, _) = policy.run(0, false, || -> std::io::Result<()> {
            calls += 1;
            Err(std::io::Error::new(std::io::ErrorKind::Interrupted, "torn"))
        });
        assert!(r.is_err());
        assert_eq!(calls, 1, "a torn write is not blindly retried");

        let mut calls = 0;
        let (r, _) = policy.run(0, true, || -> std::io::Result<()> {
            calls += 1;
            Err(std::io::Error::new(std::io::ErrorKind::Interrupted, "torn"))
        });
        assert!(r.is_err());
        assert_eq!(calls, 8, "retry_torn opts back in");
    }

    #[test]
    fn backoff_jitter_is_deterministic_decorrelated_and_bounded() {
        let policy = RetryPolicy {
            max_attempts: 6,
            backoff_base_ns: 1_000,
            jitter: 0.5,
            seed: 99,
        };
        let schedule =
            |salt: u64| -> Vec<u64> { (1..=5).map(|a| policy.backoff_ns(salt, a)).collect() };
        assert_eq!(schedule(3), schedule(3), "same seed+salt ⇒ same schedule");
        assert_ne!(schedule(3), schedule(4), "different salts decorrelate");
        for (i, &pause) in schedule(3).iter().enumerate() {
            let base = 1_000u64 << i;
            let (lo, hi) = ((base as f64 * 0.5) as u64, (base as f64 * 1.5) as u64);
            assert!(
                pause >= lo && pause <= hi,
                "pause {pause} outside [{lo},{hi}]"
            );
        }
        // Jitter off reproduces the bare exponential schedule.
        let bare = RetryPolicy {
            jitter: 0.0,
            ..policy
        };
        assert_eq!(
            (1..=4).map(|a| bare.backoff_ns(7, a)).collect::<Vec<_>>(),
            vec![1_000, 2_000, 4_000, 8_000]
        );
    }
}
