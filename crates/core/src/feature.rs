//! Input features: the meta-information driving variant selection.
//!
//! Paper §II-B: "Input features are described in Nitro through feature
//! functions. These have the same argument types as the variant, but
//! always return a double." Features are evaluated before the variant
//! executes; their evaluation cost matters (paper §V-C / Figure 8), so
//! each feature can also report a *simulated* evaluation cost on the same
//! clock the variants use — O(1) features report ~0, a sub-sample
//! standard deviation reports time proportional to its sample size.

use crate::variant::Variant;

/// A feature function: maps an input to one scalar of meta-information.
pub trait InputFeature<I: ?Sized>: Send + Sync {
    /// Stable feature name (appears in models and Figure-8 style reports).
    fn name(&self) -> &str;

    /// Compute the feature value for this input.
    fn evaluate(&self, input: &I) -> f64;

    /// Simulated evaluation cost in nanoseconds on the variant clock.
    ///
    /// Used by the feature-overhead analysis; defaults to free. Features
    /// that inspect the whole input (e.g. DIA fill-in, row-length standard
    /// deviation) should report a cost proportional to the data touched.
    fn cost_ns(&self, _input: &I) -> f64 {
        0.0
    }
}

/// Adapter turning closures into an [`InputFeature`].
pub struct FnFeature<I: ?Sized, F, C = fn(&I) -> f64> {
    name: String,
    eval: F,
    cost: Option<C>,
    _marker: std::marker::PhantomData<fn(&I)>,
}

impl<I: ?Sized, F> FnFeature<I, F>
where
    F: Fn(&I) -> f64 + Send + Sync,
{
    /// A feature with negligible (zero) evaluation cost.
    pub fn new(name: impl Into<String>, eval: F) -> Self {
        Self {
            name: name.into(),
            eval,
            cost: None,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<I: ?Sized, F, C> FnFeature<I, F, C>
where
    F: Fn(&I) -> f64 + Send + Sync,
    C: Fn(&I) -> f64 + Send + Sync,
{
    /// A feature with an explicit simulated cost function.
    pub fn with_cost(name: impl Into<String>, eval: F, cost: C) -> Self {
        Self {
            name: name.into(),
            eval,
            cost: Some(cost),
            _marker: std::marker::PhantomData,
        }
    }
}

impl<I: ?Sized, F, C> InputFeature<I> for FnFeature<I, F, C>
where
    F: Fn(&I) -> f64 + Send + Sync,
    C: Fn(&I) -> f64 + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn evaluate(&self, input: &I) -> f64 {
        (self.eval)(input)
    }

    fn cost_ns(&self, input: &I) -> f64 {
        self.cost.as_ref().map_or(0.0, |c| c(input))
    }
}

/// A constraint: vetoes a specific variant on inputs where it would be
/// incorrect or pathologically slow (paper §II-B "Defining Constraints").
///
/// During offline training a violated constraint forces the variant's
/// objective to ∞ so it is never labeled best; online, a violated
/// constraint makes the dispatcher fall back to the default variant.
pub trait Constraint<I: ?Sized>: Send + Sync {
    /// Stable constraint name for diagnostics.
    fn name(&self) -> &str;

    /// `true` when the associated variant is allowed on this input.
    fn is_satisfied(&self, input: &I) -> bool;
}

/// Adapter turning a closure into a [`Constraint`].
pub struct FnConstraint<I: ?Sized, F> {
    name: String,
    f: F,
    _marker: std::marker::PhantomData<fn(&I)>,
}

impl<I: ?Sized, F> FnConstraint<I, F>
where
    F: Fn(&I) -> bool + Send + Sync,
{
    /// Wrap `f` as a named constraint.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        Self {
            name: name.into(),
            f,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<I: ?Sized, F> Constraint<I> for FnConstraint<I, F>
where
    F: Fn(&I) -> bool + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn is_satisfied(&self, input: &I) -> bool {
        (self.f)(input)
    }
}

/// Blanket helper: any variant can be probed for its name; re-exported so
/// downstream crates can build name lists without extra bounds.
pub fn variant_names<I: ?Sized>(variants: &[std::sync::Arc<dyn Variant<I>>]) -> Vec<String> {
    variants.iter().map(|v| v.name().to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_feature_evaluates() {
        let f = FnFeature::new("nnz", |v: &Vec<f64>| {
            v.iter().filter(|&&x| x != 0.0).count() as f64
        });
        assert_eq!(f.evaluate(&vec![1.0, 0.0, 2.0]), 2.0);
        assert_eq!(f.cost_ns(&vec![1.0]), 0.0);
    }

    #[test]
    fn fn_feature_with_cost_reports_it() {
        let f = FnFeature::with_cost(
            "row_sd",
            |v: &Vec<f64>| v.len() as f64,
            |v: &Vec<f64>| v.len() as f64 * 2.0,
        );
        assert_eq!(f.cost_ns(&vec![0.0; 10]), 20.0);
    }

    #[test]
    fn fn_constraint_gates() {
        let c = FnConstraint::new("small_only", |v: &Vec<f64>| v.len() < 3);
        assert!(c.is_satisfied(&vec![1.0]));
        assert!(!c.is_satisfied(&vec![1.0; 5]));
        assert_eq!(c.name(), "small_only");
    }
}
