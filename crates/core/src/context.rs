//! The tuning context: global state shared by all `code_variant`s.
//!
//! Paper §II-B: "a pointer to a `context` object that maintains global
//! state among all the variants in the program must be included as a
//! constructor argument." The Rust `Context` is cheaply clonable (an
//! `Arc` handle) and holds a model registry plus an optional directory
//! for persisted model artifacts.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use nitro_trace::Tracer;
use parking_lot::Mutex;

use crate::error::Result;
use crate::model::ModelArtifact;

#[derive(Debug, Default)]
struct ContextInner {
    model_dir: Mutex<Option<PathBuf>>,
    registry: Mutex<HashMap<String, ModelArtifact>>,
    tracer: Mutex<Option<Tracer>>,
}

/// Shared tuning state. Clones refer to the same underlying context.
#[derive(Debug, Clone, Default)]
pub struct Context {
    inner: Arc<ContextInner>,
}

impl Context {
    /// Create an empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a context that persists models under `dir`.
    pub fn with_model_dir(dir: impl Into<PathBuf>) -> Self {
        let ctx = Self::new();
        ctx.set_model_dir(dir);
        ctx
    }

    /// Set (or replace) the model persistence directory.
    pub fn set_model_dir(&self, dir: impl Into<PathBuf>) {
        *self.inner.model_dir.lock() = Some(dir.into());
    }

    /// The configured model directory, if any.
    pub fn model_dir(&self) -> Option<PathBuf> {
        self.inner.model_dir.lock().clone()
    }

    /// File path a function's model persists to (requires a model dir).
    pub fn model_path(&self, function: &str) -> Option<PathBuf> {
        self.model_dir()
            .map(|d| d.join(format!("{function}.model.json")))
    }

    /// Register a trained model in the in-memory registry and, when a
    /// model directory is configured, persist it to disk too.
    pub fn store_model(&self, artifact: ModelArtifact) -> Result<()> {
        if let Some(path) = self.model_path(&artifact.function) {
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent)?;
            }
            artifact.save(&path)?;
        }
        self.inner
            .registry
            .lock()
            .insert(artifact.function.clone(), artifact);
        Ok(())
    }

    /// Fetch a function's model from the registry, falling back to the
    /// model directory. Returns `None` if neither has it.
    pub fn fetch_model(&self, function: &str) -> Option<ModelArtifact> {
        if let Some(a) = self.inner.registry.lock().get(function).cloned() {
            return Some(a);
        }
        let path = self.model_path(function)?;
        let artifact = ModelArtifact::load(&path).ok()?;
        self.inner
            .registry
            .lock()
            .insert(function.to_string(), artifact.clone());
        Some(artifact)
    }

    /// Names of all functions with registered models.
    pub fn registered_functions(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.registry.lock().keys().cloned().collect();
        names.sort();
        names
    }

    /// Install a tracer: dispatch, tuning and profiling through this
    /// context emit spans/metrics into it. Replaces any previous tracer.
    pub fn install_tracer(&self, tracer: Tracer) {
        *self.inner.tracer.lock() = Some(tracer);
    }

    /// Remove the installed tracer, returning it if one was present.
    pub fn clear_tracer(&self) -> Option<Tracer> {
        self.inner.tracer.lock().take()
    }

    /// The installed tracer, if any. Cloning a `Tracer` is one
    /// reference-count bump, so this allocates nothing either way —
    /// instrumentation sites call it per operation.
    pub fn tracer(&self) -> Option<Tracer> {
        self.inner.tracer.lock().clone()
    }

    /// Remove a function's model from the registry (and its on-disk file,
    /// when a model directory is configured).
    pub fn evict_model(&self, function: &str) -> Result<()> {
        self.inner.registry.lock().remove(function);
        if let Some(path) = self.model_path(function) {
            if path.exists() {
                std::fs::remove_file(path)?;
            }
        }
        Ok(())
    }
}

/// Convenience: contexts compare equal when they share the same state.
impl PartialEq for Context {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

#[allow(unused)]
fn _assert_send_sync(ctx: Context) -> impl Send + Sync {
    ctx
}

/// Helper for tests across the workspace: a unique temp directory.
/// Fails with [`crate::NitroError::Io`] when the directory cannot be
/// created instead of panicking.
pub fn temp_model_dir(tag: &str) -> Result<PathBuf> {
    let dir = std::env::temp_dir().join(format!("nitro-models-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::TuningPolicy;
    use nitro_ml::{ClassifierConfig, Dataset, TrainedModel};

    fn artifact(name: &str) -> ModelArtifact {
        let data = Dataset::from_parts(vec![vec![0.0], vec![1.0]], vec![0, 1]);
        ModelArtifact {
            schema_version: crate::model::MODEL_SCHEMA_VERSION,
            function: name.into(),
            variant_names: vec!["a".into(), "b".into()],
            feature_names: vec!["f".into()],
            policy: TuningPolicy::default(),
            model: TrainedModel::train(&ClassifierConfig::Knn { k: 1 }, &data),
        }
    }

    #[test]
    fn clones_share_state() {
        let ctx = Context::new();
        let clone = ctx.clone();
        ctx.store_model(artifact("spmv")).unwrap();
        assert!(clone.fetch_model("spmv").is_some());
        assert_eq!(ctx, clone);
    }

    #[test]
    fn fetch_missing_returns_none() {
        assert!(Context::new().fetch_model("nope").is_none());
    }

    #[test]
    fn persists_to_model_dir_and_reloads() {
        let dir = temp_model_dir("ctx-persist").unwrap();
        let ctx = Context::with_model_dir(&dir);
        ctx.store_model(artifact("sort")).unwrap();
        assert!(ctx.model_path("sort").unwrap().exists());

        // A fresh context over the same dir lazily loads from disk.
        let ctx2 = Context::with_model_dir(&dir);
        let a = ctx2.fetch_model("sort").expect("loaded from disk");
        assert_eq!(a.function, "sort");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn evict_removes_registry_and_file() {
        let dir = temp_model_dir("ctx-evict").unwrap();
        let ctx = Context::with_model_dir(&dir);
        ctx.store_model(artifact("bfs")).unwrap();
        ctx.evict_model("bfs").unwrap();
        assert!(ctx.fetch_model("bfs").is_none());
        assert!(!ctx.model_path("bfs").unwrap().exists());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn tracer_installs_shares_and_clears() {
        let ctx = Context::new();
        assert!(ctx.tracer().is_none());
        let sink = std::sync::Arc::new(nitro_trace::RingSink::new(8));
        ctx.install_tracer(nitro_trace::Tracer::new(sink.clone()));
        // Clones of the context see the same tracer.
        let clone = ctx.clone();
        clone
            .tracer()
            .expect("installed")
            .instant("e", "test", vec![]);
        assert_eq!(sink.len(), 1);
        assert!(ctx.clear_tracer().is_some());
        assert!(clone.tracer().is_none());
    }

    #[test]
    fn registered_functions_sorted() {
        let ctx = Context::new();
        ctx.store_model(artifact("zeta")).unwrap();
        ctx.store_model(artifact("alpha")).unwrap();
        assert_eq!(
            ctx.registered_functions(),
            vec!["alpha".to_string(), "zeta".to_string()]
        );
    }
}
