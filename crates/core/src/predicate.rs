//! Declarative constraints: a serializable predicate AST over features.
//!
//! The paper's constraints are opaque host-language closures (§II-B), and
//! so were ours: `dyn Constraint<I>` can be *executed* but not *analyzed*.
//! This module adds the declarative alternative — a [`Predicate`] is a
//! small boolean expression over **registered feature indices** (interval
//! bounds on one feature, comparisons between two features, and
//! and/or/not), registered through
//! [`crate::CodeVariant::add_predicate_constraint`].
//!
//! A predicate-backed constraint behaves exactly like a closure at
//! dispatch time (it evaluates the referenced feature functions on the
//! input and applies the expression), but unlike a closure it also
//! *lowers into the tuning-graph IR*: the `nitro-audit` whole-
//! configuration analyses (NITRO080–NITRO086) can prove a variant
//! statically dead, find subsumed constraints, and check model-label
//! exhaustiveness. Opaque closures remain supported as an escape hatch
//! and appear in the IR as unanalyzable `Opaque` nodes.
//!
//! Feature values seen by a predicate are sanitized the same way dispatch
//! sanitizes them (non-finite → 0.0), so the declarative semantics agree
//! with the feature vectors models are trained on.

use serde::{Deserialize, Serialize};

/// Comparison operator used by predicate atoms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
}

impl CmpOp {
    /// Apply the comparison to two values.
    pub fn apply(self, lhs: f64, rhs: f64) -> bool {
        match self {
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
        }
    }

    /// The operator computing the logical negation (over finite values).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
        }
    }
}

impl std::fmt::Display for CmpOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        };
        write!(f, "{s}")
    }
}

/// A boolean expression over registered feature indices.
///
/// Feature indices refer to the *full* registered feature list of the
/// `CodeVariant` the predicate is attached to (registration order), not
/// the policy's active subset — constraints must keep working when the
/// model's feature subset changes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Predicate {
    /// Always satisfied.
    True,
    /// Never satisfied.
    False,
    /// Compare one feature against a constant: `feature op value`.
    Feature {
        /// Registered feature index.
        feature: usize,
        /// Comparison operator.
        op: CmpOp,
        /// Constant right-hand side.
        value: f64,
    },
    /// Compare two features: `lhs op rhs`.
    Pair {
        /// Registered feature index (left-hand side).
        lhs: usize,
        /// Comparison operator.
        op: CmpOp,
        /// Registered feature index (right-hand side).
        rhs: usize,
    },
    /// Conjunction: all children must hold (empty = true).
    And(Vec<Predicate>),
    /// Disjunction: at least one child must hold (empty = false).
    Or(Vec<Predicate>),
    /// Logical negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `feature < value`.
    pub fn lt(feature: usize, value: f64) -> Self {
        Predicate::Feature {
            feature,
            op: CmpOp::Lt,
            value,
        }
    }

    /// `feature <= value`.
    pub fn le(feature: usize, value: f64) -> Self {
        Predicate::Feature {
            feature,
            op: CmpOp::Le,
            value,
        }
    }

    /// `feature > value`.
    pub fn gt(feature: usize, value: f64) -> Self {
        Predicate::Feature {
            feature,
            op: CmpOp::Gt,
            value,
        }
    }

    /// `feature >= value`.
    pub fn ge(feature: usize, value: f64) -> Self {
        Predicate::Feature {
            feature,
            op: CmpOp::Ge,
            value,
        }
    }

    /// `feature == value`.
    pub fn eq(feature: usize, value: f64) -> Self {
        Predicate::Feature {
            feature,
            op: CmpOp::Eq,
            value,
        }
    }

    /// `feature != value`.
    pub fn ne(feature: usize, value: f64) -> Self {
        Predicate::Feature {
            feature,
            op: CmpOp::Ne,
            value,
        }
    }

    /// `lo <= feature <= hi` (an interval bound).
    pub fn between(feature: usize, lo: f64, hi: f64) -> Self {
        Predicate::And(vec![Self::ge(feature, lo), Self::le(feature, hi)])
    }

    /// `lhs op rhs` over two features.
    pub fn pair(lhs: usize, op: CmpOp, rhs: usize) -> Self {
        Predicate::Pair { lhs, op, rhs }
    }

    /// Conjunction of `parts`.
    pub fn all(parts: Vec<Predicate>) -> Self {
        Predicate::And(parts)
    }

    /// Disjunction of `parts`.
    pub fn any(parts: Vec<Predicate>) -> Self {
        Predicate::Or(parts)
    }

    /// Logical negation of `self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Predicate::Not(Box::new(self))
    }

    /// Evaluate over a full feature vector (registered order). Missing
    /// indices read as 0.0 and non-finite values are sanitized to 0.0,
    /// matching the dispatcher's feature sanitation.
    pub fn eval(&self, features: &[f64]) -> bool {
        let value = |i: usize| {
            let v = features.get(i).copied().unwrap_or(0.0);
            if v.is_finite() {
                v
            } else {
                0.0
            }
        };
        match self {
            Predicate::True => true,
            Predicate::False => false,
            Predicate::Feature {
                feature,
                op,
                value: c,
            } => op.apply(value(*feature), *c),
            Predicate::Pair { lhs, op, rhs } => op.apply(value(*lhs), value(*rhs)),
            Predicate::And(parts) => parts.iter().all(|p| p.eval(features)),
            Predicate::Or(parts) => parts.iter().any(|p| p.eval(features)),
            Predicate::Not(p) => !p.eval(features),
        }
    }

    /// All feature indices referenced, sorted and de-duplicated.
    pub fn features_referenced(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_features(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_features(&self, out: &mut Vec<usize>) {
        match self {
            Predicate::True | Predicate::False => {}
            Predicate::Feature { feature, .. } => out.push(*feature),
            Predicate::Pair { lhs, rhs, .. } => {
                out.push(*lhs);
                out.push(*rhs);
            }
            Predicate::And(parts) | Predicate::Or(parts) => {
                for p in parts {
                    p.collect_features(out);
                }
            }
            Predicate::Not(p) => p.collect_features(out),
        }
    }

    /// The largest feature index referenced, if any.
    pub fn max_feature(&self) -> Option<usize> {
        self.features_referenced().last().copied()
    }

    /// Node count (atoms + connectives); the analysis passes use this to
    /// budget normalization work.
    pub fn size(&self) -> usize {
        match self {
            Predicate::True
            | Predicate::False
            | Predicate::Feature { .. }
            | Predicate::Pair { .. } => 1,
            Predicate::And(parts) | Predicate::Or(parts) => {
                1 + parts.iter().map(|p| p.size()).sum::<usize>()
            }
            Predicate::Not(p) => 1 + p.size(),
        }
    }

    /// Validate against a feature-table size: every referenced index must
    /// be a registered feature. Returns the first offending index.
    pub fn validate(&self, n_features: usize) -> std::result::Result<(), usize> {
        match self
            .features_referenced()
            .into_iter()
            .find(|&i| i >= n_features)
        {
            Some(bad) => Err(bad),
            None => Ok(()),
        }
    }
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Predicate::True => write!(f, "true"),
            Predicate::False => write!(f, "false"),
            Predicate::Feature { feature, op, value } => write!(f, "f{feature} {op} {value}"),
            Predicate::Pair { lhs, op, rhs } => write!(f, "f{lhs} {op} f{rhs}"),
            Predicate::And(parts) => {
                if parts.is_empty() {
                    return write!(f, "true");
                }
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " && ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Predicate::Or(parts) => {
                if parts.is_empty() {
                    return write!(f, "false");
                }
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " || ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Predicate::Not(p) => write!(f, "!{p}"),
        }
    }
}

/// Descriptor of one registered constraint, in registration order: the
/// target variant, the constraint's name, and — when it was registered
/// declaratively — its predicate. Opaque closures carry `None`, the
/// tuning-graph IR models them as unanalyzable `Opaque` nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConstraintDescriptor {
    /// Variant index the constraint vetoes.
    pub variant: usize,
    /// Stable constraint name (diagnostic subject).
    pub name: String,
    /// The lowered predicate, or `None` for opaque closures.
    pub predicate: Option<Predicate>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atoms_evaluate() {
        assert!(Predicate::le(0, 5.0).eval(&[5.0]));
        assert!(!Predicate::lt(0, 5.0).eval(&[5.0]));
        assert!(Predicate::between(1, 2.0, 4.0).eval(&[0.0, 3.0]));
        assert!(!Predicate::between(1, 2.0, 4.0).eval(&[0.0, 5.0]));
        assert!(Predicate::pair(0, CmpOp::Lt, 1).eval(&[1.0, 2.0]));
        assert!(!Predicate::pair(0, CmpOp::Gt, 1).eval(&[1.0, 2.0]));
    }

    #[test]
    fn connectives_evaluate() {
        let p = Predicate::any(vec![
            Predicate::ge(0, 10.0),
            Predicate::all(vec![Predicate::le(0, 2.0), Predicate::ne(1, 0.0)]),
        ]);
        assert!(p.eval(&[11.0, 0.0]));
        assert!(p.eval(&[1.0, 3.0]));
        assert!(!p.eval(&[1.0, 0.0]));
        assert!(!Predicate::True.not().eval(&[]));
        assert!(Predicate::And(vec![]).eval(&[]));
        assert!(!Predicate::Or(vec![]).eval(&[]));
    }

    #[test]
    fn missing_and_non_finite_features_read_as_zero() {
        // Index 3 is out of range: reads 0.0.
        assert!(Predicate::eq(3, 0.0).eval(&[1.0]));
        // Non-finite values sanitize to 0.0, as in dispatch.
        assert!(Predicate::eq(0, 0.0).eval(&[f64::NAN]));
        assert!(Predicate::lt(0, 1.0).eval(&[f64::INFINITY]));
    }

    #[test]
    fn feature_bookkeeping() {
        let p = Predicate::all(vec![
            Predicate::le(4, 1.0),
            Predicate::pair(2, CmpOp::Lt, 4),
            Predicate::gt(0, -1.0).not(),
        ]);
        assert_eq!(p.features_referenced(), vec![0, 2, 4]);
        assert_eq!(p.max_feature(), Some(4));
        assert_eq!(p.size(), 5);
        assert!(p.validate(5).is_ok());
        assert_eq!(p.validate(4), Err(4));
    }

    #[test]
    fn cmp_op_negation_is_logical_complement_on_finite_values() {
        for op in [
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
            CmpOp::Eq,
            CmpOp::Ne,
        ] {
            for (a, b) in [(1.0, 2.0), (2.0, 1.0), (1.5, 1.5)] {
                assert_eq!(op.apply(a, b), !op.negate().apply(a, b), "{op} on {a},{b}");
            }
        }
    }

    #[test]
    fn serde_round_trip() {
        let p = Predicate::any(vec![
            Predicate::between(0, 1.0, 8.0),
            Predicate::pair(1, CmpOp::Ge, 0).not(),
        ]);
        let json = serde_json::to_string(&p).unwrap();
        let back: Predicate = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn display_is_readable() {
        let p = Predicate::all(vec![
            Predicate::le(3, 12.0),
            Predicate::pair(0, CmpOp::Lt, 1),
        ]);
        assert_eq!(p.to_string(), "(f3 <= 12 && f0 < f1)");
    }
}
