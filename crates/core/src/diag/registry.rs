//! The central registry of `NITRO0xx` diagnostic codes.
//!
//! Every code an analyzer can emit is defined here exactly once, with
//! its severity label, subsystem area, and one-line summary. Analyzers
//! across the workspace (`nitro-audit`, `nitro-guard`, `nitro-store`,
//! `nitro-tuner`, the bench binaries) reference [`codes`] constants
//! instead of string literals, so a typo'd or colliding code is a
//! compile error or a registry-test failure rather than a silently
//! unexplainable finding. The SARIF exporter reads rule metadata from
//! here, and a test asserts the README code table stays in sync.

/// Metadata for one diagnostic code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeInfo {
    /// The stable machine-readable code (`NITRO0xx`).
    pub code: &'static str,
    /// Severity label as documented (e.g. `"error"`, `"error / info"`
    /// when the code is emitted at several severities).
    pub severity: &'static str,
    /// Subsystem area the code belongs to.
    pub area: &'static str,
    /// One-line summary (doubles as the SARIF rule description).
    pub summary: &'static str,
}

macro_rules! registry {
    ($( $code:ident => $severity:literal, $area:literal, $summary:literal; )+) => {
        /// Code-string constants, one per registered diagnostic code.
        /// Analyzers emit these instead of string literals.
        pub mod codes {
            $(
                #[doc = $summary]
                pub const $code: &str = stringify!($code);
            )+
        }

        /// Every registered code, in ascending code order (the same
        /// order as the README table).
        pub const REGISTRY: &[CodeInfo] = &[
            $( CodeInfo {
                code: stringify!($code),
                severity: $severity,
                area: $area,
                summary: $summary,
            }, )+
        ];
    };
}

registry! {
    NITRO001 => "error", "artifact", "artifact JSON unreadable / tuned model unexportable";
    NITRO010 => "error / info", "registration", "no variants registered (error); only one (info)";
    NITRO011 => "error", "registration", "duplicate variant names";
    NITRO012 => "error", "registration", "duplicate feature names";
    NITRO013 => "warning", "registration", "no default variant set";
    NITRO014 => "error", "registration", "default variant index out of range";
    NITRO015 => "error", "registration", "`feature_subset` index out of bounds";
    NITRO016 => "error", "registration", "no active features to train on";
    NITRO017 => "error", "registration", "constraint targets an unknown variant";
    NITRO018 => "error / warning", "registration, artifact", "kNN `k == 0` (error); `k` exceeds training/stored points (warning)";
    NITRO019 => "error / info", "registration", "grid search with empty C/γ grids or < 2 folds (error); grid search requested with both parameters fixed (info)";
    NITRO020 => "warning / error", "artifact", "legacy `schema_version` 0 (warning); newer than this build (error)";
    NITRO021 => "error", "artifact vs. registration", "function name or variant names disagree";
    NITRO022 => "error", "artifact", "feature names or scaler arity disagree with the model";
    NITRO023 => "error", "artifact", "non-finite support-vector coordinate";
    NITRO024 => "error", "artifact", "non-finite dual coefficient or bias (ρ)";
    NITRO025 => "error", "artifact", "non-finite feature-scaling parameters";
    NITRO026 => "warning", "artifact", "constant training feature (scaler min == max)";
    NITRO027 => "error", "artifact", "class label outside the variant range";
    NITRO028 => "error / warning", "artifact", "non-finite Platt parameters (error); positive Platt slope (warning)";
    NITRO029 => "warning", "artifact", "SVM KKT residual above tolerance (under-trained model)";
    NITRO030 => "warning", "profile", "dead variant: never the best on any profiled input";
    NITRO031 => "warning", "profile", "constant feature column (carries no signal)";
    NITRO032 => "warning", "profile", "duplicate feature columns";
    NITRO033 => "warning", "profile", "class imbalance: one variant wins > 90 % of inputs";
    NITRO034 => "warning", "profile", "wins decided inside the noise floor (labels unreliable)";
    NITRO040 => "error", "metrics", "exported metrics JSON does not parse as a snapshot";
    NITRO041 => "warning", "metrics", "constraints veto the model's choice on most calls";
    NITRO042 => "warning", "metrics", "declared variant never won a single dispatch";
    NITRO043 => "info", "metrics", "vetoes outnumber recorded wins";
    NITRO050 => "error", "resilience", "zero-trip circuit breaker (`quarantine_threshold == 0`)";
    NITRO051 => "warning", "resilience", "zero retry budget: transient failures count straight toward quarantine";
    NITRO052 => "error", "resilience", "fault-plan probability outside [0, 1] / bad slowdown factor";
    NITRO053 => "warning", "resilience", "quarantine threshold below retry budget (one bad input can quarantine)";
    NITRO054 => "warning", "resilience", "zero cooldown: quarantine never rests a failing variant";
    NITRO055 => "error", "resilience", "negative or non-finite backoff base";
    NITRO060 => "warning", "fast path", "≥ 90 % of training rows are support vectors (degenerate model, slow predicts)";
    NITRO061 => "error", "fast path", "SMO kernel-cache budget smaller than a single kernel column";
    NITRO062 => "error", "fast path", "compiled prediction engine disagrees with the reference path";
    NITRO070 => "warning", "lifecycle", "torn journal tail (crash mid-write); truncated and resumed";
    NITRO071 => "warning / error", "lifecycle", "checksum mismatch: journal line (warning, truncated) or stored artifact version (error, never installed)";
    NITRO072 => "error", "lifecycle", "stored version missing, unreadable or unparseable despite the manifest";
    NITRO073 => "warning", "lifecycle", "stale promotion candidate: shadow window never filled before `max_candidate_age`";
    NITRO074 => "warning", "lifecycle", "post-promotion regression: candidate auto-rolled-back to the prior version";
    NITRO075 => "error", "lifecycle", "rollback storm: promotions held until an operator releases the hold";
    NITRO080 => "error", "whole-config", "statically dead variant: its constraint conjunction is unsatisfiable over the feature domain";
    NITRO081 => "warning", "whole-config", "shadowed constraint: subsumed by another constraint on the same variant";
    NITRO082 => "warning", "whole-config", "constant feature: identical value across the whole profile table yet consulted by the model or a predicate";
    NITRO083 => "warning", "whole-config", "never-read feature: outside the policy's active subset and referenced by no predicate";
    NITRO084 => "error", "whole-config", "fallback cascade broken: veto cycle or no constraint-free path to the terminal default variant";
    NITRO085 => "warning / error", "whole-config", "store manifest version incompatible with the live registration (error on the latest version, warning on historical ones)";
    NITRO086 => "error", "whole-config", "model-label gap: a trained model can emit a class with no live, non-dead variant behind it";
    NITRO090 => "error", "pulse", "SLO spec references a metric the pulse registry never registered";
    NITRO091 => "warning", "pulse", "saturated quantile sketch: observations overflowed the top bucket, so upper quantiles degrade to the observed max";
    NITRO092 => "error", "pulse", "watchdog window shorter than the metric's update period (windows can hold at most one observation)";
    NITRO093 => "warning", "pulse", "stripe count below available parallelism: concurrent recording threads will share stripes and contend";
    NITRO100 => "error", "serving", "unbounded (or zero-capacity) admission queue configured: overload backs up instead of shedding";
    NITRO101 => "error", "serving", "zero-capacity tenant token bucket: the tenant can never be admitted";
    NITRO102 => "error", "serving", "degradation ladder missing its terminal default variant";
    NITRO103 => "warning", "serving", "deadline budget shorter than the observed p99 dispatch floor: most admitted requests will expire";
    NITRO104 => "warning", "serving", "shard count exceeds available hardware threads: shards contend instead of parallelizing";
    NITRO110 => "warning", "self-healing", "shard restarted: the supervisor replaced a dead or wedged worker, re-seeded from the current model version";
    NITRO111 => "error", "self-healing", "shard restart budget exhausted: the shard is retired and serving capacity permanently reduced";
    NITRO112 => "error", "self-healing", "poison-pill request quarantined after killing more than one shard";
    NITRO113 => "error", "self-healing", "filesystem retry budget exhausted: a transient-looking I/O fault persisted and is surfaced as permanent";
    NITRO114 => "error", "self-healing", "request-lineage conservation violated: an admitted request was lost or accounted more than once";
}

/// Look up one code's metadata.
pub fn lookup(code: &str) -> Option<&'static CodeInfo> {
    REGISTRY.iter().find(|c| c.code == code)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_well_formed_and_ordered() {
        let mut seen = std::collections::HashSet::new();
        let mut prev = "";
        for info in REGISTRY {
            assert!(seen.insert(info.code), "duplicate code {}", info.code);
            assert!(
                info.code.starts_with("NITRO") && info.code.len() == 8,
                "malformed code {}",
                info.code
            );
            assert!(
                info.code[5..].chars().all(|c| c.is_ascii_digit()),
                "non-numeric code {}",
                info.code
            );
            assert!(prev < info.code, "{} out of order", info.code);
            prev = info.code;
            assert!(!info.summary.is_empty() && !info.area.is_empty());
            for part in info.severity.split(" / ") {
                assert!(
                    ["error", "warning", "info"].contains(&part),
                    "unknown severity label '{part}' on {}",
                    info.code
                );
            }
        }
    }

    #[test]
    fn lookup_finds_registered_codes_only() {
        assert_eq!(lookup("NITRO080").unwrap().area, "whole-config");
        assert!(lookup("NITRO999").is_none());
    }

    /// The README's code table is generated from this registry by hand;
    /// this test keeps the two in lockstep, column for column.
    #[test]
    fn readme_code_table_matches_registry() {
        let readme =
            std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md"))
                .expect("README.md is readable from crates/core");
        let rows: Vec<(String, String, String, String)> = readme
            .lines()
            .filter(|l| l.starts_with("| NITRO"))
            .map(|l| {
                let cols: Vec<&str> = l.trim_matches('|').split('|').map(str::trim).collect();
                assert_eq!(cols.len(), 4, "bad table row: {l}");
                (
                    cols[0].to_string(),
                    cols[1].to_string(),
                    cols[2].to_string(),
                    cols[3].to_string(),
                )
            })
            .collect();
        let expected: Vec<(String, String, String, String)> = REGISTRY
            .iter()
            .map(|c| {
                (
                    c.code.to_string(),
                    c.severity.to_string(),
                    c.area.to_string(),
                    c.summary.to_string(),
                )
            })
            .collect();
        assert_eq!(
            rows, expected,
            "README code table out of sync with nitro_core::diag::registry"
        );
    }
}
