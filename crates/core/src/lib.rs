//! # nitro-core — the Nitro library interface
//!
//! Rust rendering of the paper's C++ template library (Table I):
//!
//! | Paper construct | Here |
//! |---|---|
//! | `context` | [`Context`] |
//! | `code_variant<Policy, ArgTuple>` | [`CodeVariant<I>`] |
//! | `variant_type` + `operator()` | [`Variant`] trait (or [`FnVariant`]) |
//! | `input_feature_type` | [`InputFeature`] trait (or [`FnFeature`]) |
//! | constraint functions | [`Constraint`] trait (or [`FnConstraint`]) |
//! | `add_variant` / `set_default` | [`CodeVariant::add_variant`] / [`CodeVariant::set_default`] |
//! | `add_input_feature` / `add_constraint` | same names |
//! | `fix_inputs` (async features) | [`CodeVariant::fix_inputs`] + [`CodeVariant::call_fixed`] |
//! | generated tuning-policy header | [`TuningPolicy`] (serde-persisted) |
//!
//! A `CodeVariant` owns a set of functionally equivalent [`Variant`]s, the
//! [`InputFeature`]s used to select among them, optional per-variant
//! [`Constraint`]s, and (once tuned) a [`nitro_ml::TrainedModel`]. End
//! users of a Nitro-enabled library never see any of this — they call the
//! library's normal entry point, which internally calls
//! [`CodeVariant::call`].
//!
//! ## Example
//!
//! ```
//! use nitro_core::{CodeVariant, Context, FnFeature, FnVariant};
//!
//! let ctx = Context::new();
//! let mut gemm = CodeVariant::<Vec<f64>>::new("axpy", &ctx);
//! gemm.add_variant(FnVariant::new("scalar", |v: &Vec<f64>| v.len() as f64));
//! gemm.add_variant(FnVariant::new("blocked", |v: &Vec<f64>| v.len() as f64 * 0.5 + 100.0));
//! gemm.set_default(0);
//! gemm.add_input_feature(FnFeature::new("n", |v: &Vec<f64>| v.len() as f64));
//!
//! // Without a model the default variant runs; the autotuner in
//! // `nitro-tuner` trains and installs models.
//! let outcome = gemm.call(&vec![0.0; 64]).unwrap();
//! assert_eq!(outcome.variant_name, "scalar");
//! ```

#![warn(missing_docs)]

pub mod code_variant;
pub mod context;
pub mod diag;
pub mod error;
pub mod feature;
pub mod fsio;
pub mod model;
pub mod observer;
pub mod policy;
pub mod predicate;
pub mod request;
pub mod variant;

pub use code_variant::{CallStats, CodeVariant, Invocation};
pub use context::Context;
pub use diag::{Diagnostic, Severity};
pub use error::{NitroError, Result};
pub use feature::{Constraint, FnConstraint, FnFeature, InputFeature};
pub use fsio::{
    atomic_write, atomic_write_with, crc32, fs_read, is_retryable, mix64, ChaosFs, FsFault, FsOp,
    FsPolicy, RetryPolicy,
};
pub use model::{ModelArtifact, MODEL_SCHEMA_VERSION};
pub use observer::{DispatchObservation, DispatchObserver};
pub use policy::{StoppingCriterion, TuningPolicy};
pub use predicate::{CmpOp, ConstraintDescriptor, Predicate};
pub use request::{Deadline, Priority, RequestMeta, TenantId};
pub use variant::{FnVariant, Objective, Variant};

// Re-export the ML types that appear in this crate's public API, so
// downstream crates don't need a direct nitro-ml dependency for basic use.
pub use nitro_ml::{ClassifierConfig, TrainedModel};
