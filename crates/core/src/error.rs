//! Error type for the Nitro library interface.

use std::fmt;

use crate::diag::{Diagnostic, Severity};

/// Errors surfaced by the Nitro core library.
#[derive(Debug)]
pub enum NitroError {
    /// A `code_variant` was called before any variant was registered.
    NoVariants,
    /// No model is installed and no default variant was set.
    NoSelectionPossible,
    /// `call_fixed` was invoked without a preceding `fix_inputs`.
    NoFixedInput,
    /// A model artifact did not match the function it was loaded into
    /// (different variant or feature lists).
    ModelMismatch {
        /// Explanation of what disagreed.
        detail: String,
    },
    /// A registered index referred outside its table (default variant,
    /// constraint target, feature-subset entry…).
    InvalidIndex {
        /// What kind of index was out of range.
        what: &'static str,
        /// The offending index.
        index: usize,
        /// Size of the table it indexed into.
        len: usize,
    },
    /// An audit pass found error-severity findings; tuning or
    /// installation refused to proceed.
    Audit {
        /// The full finding list (errors plus accompanying warnings).
        diagnostics: Vec<Diagnostic>,
    },
    /// A variant execution failed at dispatch time: it panicked or
    /// returned a non-finite objective. Produced by
    /// `CodeVariant::try_run_variant`, which isolates the failure
    /// instead of unwinding into the caller.
    VariantFailed {
        /// Index of the failing variant.
        variant: usize,
        /// Name of the failing variant.
        name: String,
        /// Execution attempts made (1 without retries; resilient
        /// dispatch layers raise it when a retry budget was spent).
        attempts: u32,
        /// The panic payload or a description of the bad objective.
        detail: String,
    },
    /// Resilient dispatch exhausted its fallback cascade: every candidate
    /// variant was quarantined, vetoed or failed its execution attempts.
    NoHealthyVariant {
        /// The `code_variant` that could not be served.
        function: String,
        /// What happened to the last candidate tried (or why none were).
        detail: String,
    },
    /// A worker thread panicked (asynchronous feature evaluation).
    Thread {
        /// What the thread was doing.
        detail: String,
    },
    /// Filesystem failure while persisting or loading a model.
    Io(std::io::Error),
    /// Serialization failure while persisting or loading a model.
    Serde(serde_json::Error),
}

impl NitroError {
    /// The audit findings carried by an [`NitroError::Audit`], if any.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        match self {
            NitroError::Audit { diagnostics } => diagnostics,
            _ => &[],
        }
    }
}

impl fmt::Display for NitroError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NitroError::NoVariants => write!(f, "no variants registered"),
            NitroError::NoSelectionPossible => {
                write!(f, "no trained model installed and no default variant set")
            }
            NitroError::NoFixedInput => {
                write!(f, "call_fixed used without fix_inputs (no pending input)")
            }
            NitroError::ModelMismatch { detail } => write!(f, "model mismatch: {detail}"),
            NitroError::InvalidIndex { what, index, len } => {
                write!(f, "{what} index {index} out of range (have {len})")
            }
            NitroError::Audit { diagnostics } => {
                let errors = diagnostics
                    .iter()
                    .filter(|d| d.severity == Severity::Error)
                    .count();
                write!(
                    f,
                    "audit found {errors} error(s) in {} finding(s):",
                    diagnostics.len()
                )?;
                for d in diagnostics {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            NitroError::VariantFailed {
                variant,
                name,
                attempts,
                detail,
            } => write!(
                f,
                "variant {variant} '{name}' failed after {attempts} attempt(s): {detail}"
            ),
            NitroError::NoHealthyVariant { function, detail } => {
                write!(f, "no healthy variant for '{function}': {detail}")
            }
            NitroError::Thread { detail } => write!(f, "worker thread panicked: {detail}"),
            NitroError::Io(e) => write!(f, "io error: {e}"),
            NitroError::Serde(e) => write!(f, "serialization error: {e}"),
        }
    }
}

impl std::error::Error for NitroError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NitroError::Io(e) => Some(e),
            NitroError::Serde(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NitroError {
    fn from(e: std::io::Error) -> Self {
        NitroError::Io(e)
    }
}

impl From<serde_json::Error> for NitroError {
    fn from(e: serde_json::Error) -> Self {
        NitroError::Serde(e)
    }
}

/// Convenience alias used across the core crate.
pub type Result<T> = std::result::Result<T, NitroError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(NitroError::NoVariants.to_string().contains("variants"));
        assert!(NitroError::NoFixedInput.to_string().contains("fix_inputs"));
        let e = NitroError::ModelMismatch {
            detail: "3 vs 4 variants".into(),
        };
        assert!(e.to_string().contains("3 vs 4"));
    }

    #[test]
    fn audit_error_lists_findings() {
        let e = NitroError::Audit {
            diagnostics: vec![
                Diagnostic::error("NITRO014", "toy", "default variant 9 not registered"),
                Diagnostic::warning("NITRO030", "toy", "variant 'b' is never best"),
            ],
        };
        let s = e.to_string();
        assert!(s.contains("1 error(s)"));
        assert!(s.contains("NITRO014"));
        assert!(s.contains("NITRO030"));
        assert_eq!(e.diagnostics().len(), 2);
        assert!(NitroError::NoVariants.diagnostics().is_empty());
    }

    #[test]
    fn invalid_index_display_names_the_table() {
        let e = NitroError::InvalidIndex {
            what: "default variant",
            index: 7,
            len: 3,
        };
        assert!(e.to_string().contains("default variant index 7"));
    }

    #[test]
    fn variant_failed_display_names_the_variant() {
        let e = NitroError::VariantFailed {
            variant: 2,
            name: "CSR-Vector".into(),
            attempts: 3,
            detail: "injected launch failure: kernel 'spmv_csr_vector' (launch 7)".into(),
        };
        let s = e.to_string();
        assert!(s.contains("'CSR-Vector'"));
        assert!(s.contains("3 attempt(s)"));
        assert!(s.contains("injected launch failure"));
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: NitroError = io.into();
        assert!(matches!(e, NitroError::Io(_)));
    }
}
