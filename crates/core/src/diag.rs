//! Structured diagnostics: the vocabulary of the `nitro-audit` analyzers.
//!
//! Every analyzer finding is a [`Diagnostic`] with a stable `NITRO0xx`
//! code, a [`Severity`], the subject it refers to (a function, artifact
//! or feature name) and a human-readable message. The type lives in
//! `nitro-core` so that [`crate::NitroError::Audit`] can carry findings
//! without a dependency cycle; the analyzers themselves live in the
//! `nitro-audit` crate.
//!
//! Code ranges:
//!
//! * `NITRO001`           — unreadable artifact (unparseable JSON).
//! * `NITRO010`–`NITRO019` — registration lint (variants, features,
//!   default, constraints, policy).
//! * `NITRO020`–`NITRO029` — model-artifact audit (schema, name lists,
//!   numeric invariants of the trained model).
//! * `NITRO030`–`NITRO039` — profile-table / training-set analysis.
//! * `NITRO040`–`NITRO049` — runtime-metrics analysis (exported
//!   `nitro-trace` snapshots: fallback rates, dead variants).
//! * `NITRO050`–`NITRO059` — resilience configuration (guard policies
//!   and fault plans; these analyzers live in `nitro-guard`, which sits
//!   above `nitro-audit` in the crate graph).
//! * `NITRO060`–`NITRO069` — model fast path (compiled prediction and
//!   kernel-cache health; `nitro-audit::fastpath`).
//! * `NITRO070`–`NITRO079` — durability & model lifecycle (torn
//!   journals, artifact-store checksums/version gaps, staged-promotion
//!   rollbacks; these analyzers live in `nitro-store`, which sits above
//!   `nitro-audit` in the crate graph like the guard's `NITRO05x`).
//! * `NITRO080`–`NITRO089` — whole-configuration analysis over the
//!   tuning-graph IR (`nitro-audit::deep`): dead variants, shadowed
//!   constraints, feature dataflow, cascade termination, cross-version
//!   compatibility, model-label exhaustiveness.
//!
//! Every code is defined exactly once in [`registry`], which carries
//! severity/area/summary metadata and is test-locked against the README
//! code table.

pub mod registry;

use std::fmt;

use serde::{Deserialize, Serialize};

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Informational: worth knowing, never blocks anything.
    Info,
    /// Suspicious but usable: tuning proceeds, the finding is reported.
    Warning,
    /// Broken: tuning or installation refuses to proceed.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable machine-readable code (`NITRO0xx`).
    pub code: String,
    /// Finding severity.
    pub severity: Severity,
    /// What the finding is about (function, artifact, feature, variant…).
    pub subject: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Build a finding with explicit severity.
    pub fn new(
        code: impl Into<String>,
        severity: Severity,
        subject: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Self {
            code: code.into(),
            severity,
            subject: subject.into(),
            message: message.into(),
        }
    }

    /// An [`Severity::Error`] finding.
    pub fn error(
        code: impl Into<String>,
        subject: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Self::new(code, Severity::Error, subject, message)
    }

    /// A [`Severity::Warning`] finding.
    pub fn warning(
        code: impl Into<String>,
        subject: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Self::new(code, Severity::Warning, subject, message)
    }

    /// A [`Severity::Info`] finding.
    pub fn info(
        code: impl Into<String>,
        subject: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Self::new(code, Severity::Info, subject, message)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.severity, self.code, self.subject, self.message
        )
    }
}

/// True when any finding has [`Severity::Error`].
pub fn has_errors(diagnostics: &[Diagnostic]) -> bool {
    diagnostics.iter().any(|d| d.severity == Severity::Error)
}

/// Split findings into `(errors, rest)`; `rest` keeps warnings and infos
/// in their original order.
pub fn partition_errors(diagnostics: Vec<Diagnostic>) -> (Vec<Diagnostic>, Vec<Diagnostic>) {
    diagnostics
        .into_iter()
        .partition(|d| d.severity == Severity::Error)
}

/// Render findings as one text line each, ordered most severe first
/// (ties keep insertion order). Returns `"no findings"` when empty.
pub fn render_text(diagnostics: &[Diagnostic]) -> String {
    if diagnostics.is_empty() {
        return "no findings".to_string();
    }
    let mut sorted: Vec<&Diagnostic> = diagnostics.iter().collect();
    sorted.sort_by_key(|d| std::cmp::Reverse(d.severity));
    sorted
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

/// Render findings as a pretty-printed JSON array.
pub fn render_json(diagnostics: &[Diagnostic]) -> String {
    serde_json::to_string_pretty(&diagnostics.to_vec()).expect("diagnostics always serialize")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_info_warning_error() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn display_includes_code_and_subject() {
        let d = Diagnostic::error("NITRO011", "histogram", "duplicate variant name 'Sort-ES'");
        let s = d.to_string();
        assert!(s.contains("NITRO011"));
        assert!(s.contains("histogram"));
        assert!(s.contains("error"));
    }

    #[test]
    fn has_errors_detects_only_error_severity() {
        let warn = vec![Diagnostic::warning("NITRO030", "t", "m")];
        let err = vec![
            Diagnostic::warning("NITRO030", "t", "m"),
            Diagnostic::error("NITRO014", "t", "m"),
        ];
        assert!(!has_errors(&warn));
        assert!(has_errors(&err));
    }

    #[test]
    fn render_text_sorts_errors_first() {
        let diags = vec![
            Diagnostic::info("NITRO019", "a", "info msg"),
            Diagnostic::error("NITRO010", "a", "error msg"),
        ];
        let text = render_text(&diags);
        let error_pos = text.find("error msg").unwrap();
        let info_pos = text.find("info msg").unwrap();
        assert!(error_pos < info_pos);
        assert_eq!(render_text(&[]), "no findings");
    }

    #[test]
    fn json_round_trips() {
        let diags = vec![
            Diagnostic::error("NITRO023", "svm", "NaN support vector"),
            Diagnostic::info("NITRO019", "svm", "degenerate grid"),
        ];
        let json = render_json(&diags);
        let back: Vec<Diagnostic> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, diags);
    }
}
