//! Tuning policies: the per-function configuration of Table II.
//!
//! The paper's Python tuning script sets options like
//! `spmv.classifier = svm_classifier()` or
//! `spmv.parallel_feature_evaluation = False` and writes them into a
//! generated header consumed by the C++ library. In Rust the same options
//! live in a plain struct attached to each `CodeVariant`, and persist as
//! JSON alongside trained models.

use nitro_ml::ClassifierConfig;
use serde::{Deserialize, Serialize};

use crate::variant::Objective;

/// Stopping rule for incremental (active-learning) tuning — the paper's
/// `itune(iter | acc)` option in Table II.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StoppingCriterion {
    /// Stop after a fixed number of BvSB queries ("useful when the number
    /// of training inputs is too large for Nitro to evaluate").
    Iterations(usize),
    /// Stop once prediction accuracy on a labeled test set reaches this
    /// threshold (requires known test labels, §III-B).
    Accuracy(f64),
}

/// Per-function tuning configuration (paper Table II).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningPolicy {
    /// Which model family to fit (`classifier` in Table II). Default: RBF
    /// SVM with cross-validated parameter search.
    pub classifier: ClassifierConfig,
    /// Honour registered constraints (`constraints` in Table II). When
    /// `false`, constraints are ignored both offline and online.
    pub constraints: bool,
    /// Evaluate feature functions in parallel (`parallel_feature_evaluation`;
    /// the paper implements this with Intel TBB, we use rayon).
    pub parallel_feature_evaluation: bool,
    /// Allow asynchronous feature evaluation via `fix_inputs`
    /// (`async_feature_eval`).
    pub async_feature_eval: bool,
    /// Restrict the model to a subset of registered features (by index,
    /// in registration order). `None` uses all features. This is the knob
    /// behind the paper's Figure-8 feature-pruning study.
    pub feature_subset: Option<Vec<usize>>,
    /// Direction of the objective the variants return.
    pub objective: Objective,
    /// Incremental-tuning stopping rule; `None` trains on the full
    /// training set (no active learning).
    pub incremental: Option<StoppingCriterion>,
}

impl Default for TuningPolicy {
    fn default() -> Self {
        Self {
            classifier: ClassifierConfig::default(),
            constraints: true,
            parallel_feature_evaluation: false,
            async_feature_eval: false,
            feature_subset: None,
            objective: Objective::Minimize,
            incremental: None,
        }
    }
}

impl TuningPolicy {
    /// The active feature indices under this policy, given the number of
    /// registered features: either the configured subset (invalid indices
    /// dropped) or all of them.
    pub fn active_features(&self, n_features: usize) -> Vec<usize> {
        match &self.feature_subset {
            Some(subset) => subset.iter().copied().filter(|&i| i < n_features).collect(),
            None => (0..n_features).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_defaults() {
        let p = TuningPolicy::default();
        assert_eq!(p.classifier, ClassifierConfig::default());
        assert!(p.constraints);
        assert!(!p.parallel_feature_evaluation);
        assert!(!p.async_feature_eval);
        assert_eq!(p.objective, Objective::Minimize);
        assert!(p.incremental.is_none());
    }

    #[test]
    fn active_features_defaults_to_all() {
        let p = TuningPolicy::default();
        assert_eq!(p.active_features(3), vec![0, 1, 2]);
    }

    #[test]
    fn active_features_filters_invalid_indices() {
        let p = TuningPolicy {
            feature_subset: Some(vec![2, 0, 9]),
            ..Default::default()
        };
        assert_eq!(p.active_features(3), vec![2, 0]);
    }

    #[test]
    fn serde_round_trip() {
        let p = TuningPolicy {
            incremental: Some(StoppingCriterion::Iterations(25)),
            feature_subset: Some(vec![0, 1]),
            ..Default::default()
        };
        let j = serde_json::to_string(&p).unwrap();
        let back: TuningPolicy = serde_json::from_str(&j).unwrap();
        assert_eq!(p, back);
    }
}
