//! Serving-layer request envelope: tenant identity, priority class and
//! deadline budget.
//!
//! These types live in `nitro-core` (rather than `nitro-serve`) because
//! they are the vocabulary the whole stack shares: the serving front
//! door stamps them on every admitted request, audits reference them in
//! `NITRO10x` diagnostics, and report binaries serialize them into
//! `target/BENCH_serve.json`. All time values are plain `u64`
//! nanoseconds on whatever clock the caller supplies — wall, monotonic
//! or the simulator's virtual clock — so deadline arithmetic stays
//! deterministic under test.

use serde::{Deserialize, Serialize};

/// An opaque tenant identity for per-tenant admission control.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TenantId(pub u32);

// Hand-written: the offline serde derive needs named fields, and a
// tenant id should serialize as its bare number anyway.
impl Serialize for TenantId {
    fn to_value(&self) -> serde::Value {
        self.0.to_value()
    }
}

impl Deserialize for TenantId {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        u32::from_value(v).map(TenantId)
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// Request priority class. Order matters: `Interactive` is drained
/// first and admitted deepest into a loaded queue; `Batch` is shed
/// first.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Priority {
    /// Latency-sensitive traffic: drained first, admitted deepest.
    Interactive,
    /// The default class.
    #[default]
    Standard,
    /// Throughput traffic: first to be rejected under pressure.
    Batch,
}

impl Priority {
    /// All classes, drain order first.
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Standard, Priority::Batch];

    /// Stable queue index (drain order).
    pub fn index(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Standard => 1,
            Priority::Batch => 2,
        }
    }

    /// How much of the admission watermark this class may use: lower-
    /// priority traffic is turned away earlier as queues deepen, so a
    /// burst of batch work cannot starve interactive requests.
    pub fn admission_fraction(self) -> f64 {
        match self {
            Priority::Interactive => 1.0,
            Priority::Standard => 0.85,
            Priority::Batch => 0.7,
        }
    }

    /// Short label for metric names and reports.
    pub fn label(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Standard => "standard",
            Priority::Batch => "batch",
        }
    }
}

/// An absolute deadline derived from a per-request latency budget.
///
/// The serving layer's contract is built on this type: an admitted
/// request either completes before `expires_ns` or is shed *before*
/// dispatch — work is never started on (or completed for) a request
/// that can no longer meet its deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Deadline {
    /// Clock reading when the request was issued (ns).
    pub issued_ns: u64,
    /// Absolute expiry: `issued_ns + budget` (ns, saturating).
    pub expires_ns: u64,
}

impl Deadline {
    /// A deadline `budget_ns` after `now_ns`.
    pub fn new(now_ns: u64, budget_ns: u64) -> Self {
        Self {
            issued_ns: now_ns,
            expires_ns: now_ns.saturating_add(budget_ns),
        }
    }

    /// The original budget this deadline was issued with (ns).
    pub fn budget_ns(&self) -> u64 {
        self.expires_ns - self.issued_ns
    }

    /// Whether the deadline has passed at clock reading `now_ns`.
    pub fn is_expired(&self, now_ns: u64) -> bool {
        now_ns >= self.expires_ns
    }

    /// Budget left at `now_ns` (0 once expired).
    pub fn remaining_ns(&self, now_ns: u64) -> u64 {
        self.expires_ns.saturating_sub(now_ns)
    }
}

/// Everything the front door stamps on a request besides its payload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestMeta {
    /// Who sent it (admission-control bucket key).
    pub tenant: TenantId,
    /// Which class it travels in.
    pub priority: Priority,
    /// When it must be done.
    pub deadline: Deadline,
}

impl RequestMeta {
    /// Stamp a request issued at `now_ns` with a `budget_ns` deadline.
    pub fn new(tenant: TenantId, priority: Priority, now_ns: u64, budget_ns: u64) -> Self {
        Self {
            tenant,
            priority,
            deadline: Deadline::new(now_ns, budget_ns),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_arithmetic_is_saturating_and_exact() {
        let d = Deadline::new(100, 50);
        assert_eq!(d.budget_ns(), 50);
        assert!(!d.is_expired(149));
        assert!(d.is_expired(150), "expiry is inclusive");
        assert_eq!(d.remaining_ns(120), 30);
        assert_eq!(d.remaining_ns(200), 0);
        let huge = Deadline::new(u64::MAX - 1, 100);
        assert_eq!(huge.expires_ns, u64::MAX, "saturates, never wraps");
    }

    #[test]
    fn priority_order_matches_drain_and_admission_semantics() {
        assert!(Priority::Interactive < Priority::Standard);
        assert!(Priority::Standard < Priority::Batch);
        for (i, p) in Priority::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        assert!(Priority::Interactive.admission_fraction() > Priority::Batch.admission_fraction());
    }

    #[test]
    fn request_meta_round_trips_through_serde() {
        let meta = RequestMeta::new(TenantId(7), Priority::Batch, 1_000, 5_000);
        let json = serde_json::to_string(&meta).unwrap();
        assert!(json.to_lowercase().contains("batch"), "{json}");
        let back: RequestMeta = serde_json::from_str(&json).unwrap();
        assert_eq!(back, meta);
        assert_eq!(TenantId(7).to_string(), "tenant-7");
    }
}
