//! Code variants: alternative implementations of one computation.
//!
//! Paper §II-B: "Each variant must be defined as a C++ function object
//! deriving from the `variant_type` class … The code for the variant must
//! be specified in the `operator()` function … Nitro variants are required
//! to return a double precision value, which by default denotes the time
//! taken by the variant." The Rust rendering is the [`Variant`] trait; the
//! returned objective value can equally be energy, error, or — as in the
//! paper's BFS benchmark — a throughput metric like TEPS, with the
//! direction controlled by [`Objective`].

use serde::{Deserialize, Serialize};

/// Whether smaller or larger objective values are better.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Objective {
    /// Smaller is better (the default: variants return elapsed time).
    #[default]
    Minimize,
    /// Larger is better (e.g. traversed edges per second for BFS).
    Maximize,
}

impl Objective {
    /// True if `a` is a better objective value than `b`.
    pub fn better(&self, a: f64, b: f64) -> bool {
        match self {
            Objective::Minimize => a < b,
            Objective::Maximize => a > b,
        }
    }

    /// The worst representable objective value (what constraint violations
    /// are mapped to during training, the paper's "∞").
    pub fn worst(&self) -> f64 {
        match self {
            Objective::Minimize => f64::INFINITY,
            Objective::Maximize => f64::NEG_INFINITY,
        }
    }

    /// Relative performance of `achieved` against `best` as a fraction in
    /// `[0, 1]` (the paper's "% of performance of exhaustive search").
    pub fn relative(&self, achieved: f64, best: f64) -> f64 {
        let r = match self {
            Objective::Minimize => best / achieved,
            Objective::Maximize => achieved / best,
        };
        if r.is_nan() {
            0.0
        } else {
            r.clamp(0.0, 1.0)
        }
    }
}

/// One implementation of the tuned computation.
///
/// All variants registered on a `CodeVariant` share the input type `I` and
/// must be functionally equivalent; they may use fundamentally different
/// algorithms.
pub trait Variant<I: ?Sized>: Send + Sync {
    /// Stable, human-readable variant name (appears in models & reports).
    fn name(&self) -> &str;

    /// Run the variant on `input`, returning its objective value
    /// (simulated elapsed nanoseconds by default).
    fn invoke(&self, input: &I) -> f64;
}

/// Adapter turning a closure into a [`Variant`] — convenient for tests and
/// for wrapping existing library entry points.
pub struct FnVariant<I: ?Sized, F> {
    name: String,
    f: F,
    _marker: std::marker::PhantomData<fn(&I)>,
}

impl<I: ?Sized, F> FnVariant<I, F>
where
    F: Fn(&I) -> f64 + Send + Sync,
{
    /// Wrap `f` under the given variant name.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        Self {
            name: name.into(),
            f,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<I: ?Sized, F> Variant<I> for FnVariant<I, F>
where
    F: Fn(&I) -> f64 + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn invoke(&self, input: &I) -> f64 {
        (self.f)(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objective_direction() {
        assert!(Objective::Minimize.better(1.0, 2.0));
        assert!(Objective::Maximize.better(2.0, 1.0));
        assert_eq!(Objective::Minimize.worst(), f64::INFINITY);
        assert_eq!(Objective::Maximize.worst(), f64::NEG_INFINITY);
    }

    #[test]
    fn relative_performance_is_a_fraction() {
        assert_eq!(Objective::Minimize.relative(2.0, 1.0), 0.5);
        assert_eq!(Objective::Minimize.relative(1.0, 1.0), 1.0);
        assert_eq!(Objective::Maximize.relative(50.0, 100.0), 0.5);
        // Worse than best clamps at 1.0 never exceeds it.
        assert_eq!(Objective::Minimize.relative(0.5, 1.0), 1.0);
    }

    #[test]
    fn relative_handles_degenerate_values() {
        assert_eq!(
            Objective::Minimize.relative(f64::INFINITY, f64::INFINITY),
            0.0
        );
        assert_eq!(Objective::Maximize.relative(0.0, 0.0), 0.0);
    }

    #[test]
    fn fn_variant_invokes_closure() {
        let v = FnVariant::new("double", |x: &f64| x * 2.0);
        assert_eq!(v.name(), "double");
        assert_eq!(v.invoke(&21.0), 42.0);
    }

    #[test]
    fn fn_variant_works_on_unsized_inputs() {
        let v = FnVariant::new("len", |s: &[u8]| s.len() as f64);
        assert_eq!(v.invoke(&[1, 2, 3][..]), 3.0);
    }
}
