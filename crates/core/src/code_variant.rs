//! The `code_variant` dispatcher: Nitro's central construct.
//!
//! Mirrors the paper's `code_variant<TuningPolicy, ArgTuple>` class
//! (Table I): variants, features and constraints are registered, a
//! trained model is installed (by the autotuner or loaded from the
//! [`Context`]), and calls then select and execute the predicted best
//! variant — falling back to the default when a constraint vetoes the
//! prediction.

use std::sync::Arc;

use nitro_ml::{PredictScratch, TrainedModel};
use rayon::prelude::*;

use crate::context::Context;
use crate::error::{NitroError, Result};
use crate::feature::{Constraint, InputFeature};
use crate::model::ModelArtifact;
use crate::observer::{DispatchObservation, DispatchObserver};
use crate::policy::TuningPolicy;
use crate::predicate::{ConstraintDescriptor, Predicate};
use crate::variant::Variant;

/// Replace non-finite feature values with 0: a NaN or ±∞ leaking out of
/// a feature function would otherwise poison the scaler and every model
/// trained on it.
fn sanitize(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

/// Outcome of one dispatched call.
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    /// Index of the executed variant.
    pub variant: usize,
    /// Name of the executed variant.
    pub variant_name: String,
    /// Objective value the variant returned (simulated ns by default).
    pub objective: f64,
    /// Feature vector used for selection (active subset, in order).
    pub features: Vec<f64>,
    /// Simulated feature-evaluation cost on the variant clock.
    pub feature_cost_ns: f64,
    /// True when a constraint vetoed the model's choice and the default
    /// variant ran instead.
    pub fell_back_to_default: bool,
}

/// Cumulative dispatch statistics for one `code_variant`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CallStats {
    /// Total dispatched calls.
    pub calls: u64,
    /// Times each variant (by index) was executed.
    pub selections: Vec<u64>,
    /// Calls where a constraint forced the default variant.
    pub fallbacks: u64,
    /// Accumulated simulated feature-evaluation cost.
    pub feature_cost_ns: f64,
    /// Calls served through the asynchronous `fix_inputs` path.
    pub async_calls: u64,
}

/// Pending asynchronous feature evaluation (paper §III-C).
struct Pending<I: ?Sized> {
    input: Arc<I>,
    handle: std::thread::JoinHandle<(Vec<f64>, f64)>,
}

/// One registered constraint: the vetoed variant, the executable check,
/// and — for declaratively registered constraints — the predicate it was
/// lowered from (what the whole-configuration analyses consume).
struct ConstraintEntry<I: ?Sized> {
    variant: usize,
    check: Arc<dyn Constraint<I>>,
    predicate: Option<Predicate>,
}

/// Executable form of a declarative predicate: evaluates the referenced
/// feature functions on the input (with the same non-finite sanitation
/// as dispatch) and applies the expression.
struct PredicateConstraint<I: ?Sized> {
    name: String,
    predicate: Predicate,
    features: Vec<(usize, Arc<dyn InputFeature<I>>)>,
    width: usize,
}

impl<I: ?Sized> Constraint<I> for PredicateConstraint<I> {
    fn name(&self) -> &str {
        &self.name
    }

    fn is_satisfied(&self, input: &I) -> bool {
        let mut values = vec![0.0; self.width];
        for (i, f) in &self.features {
            values[*i] = sanitize(f.evaluate(input));
        }
        self.predicate.eval(&values)
    }
}

/// A tuned function: set of variants + selection meta-information.
///
/// Type parameter `I` is the input (argument tuple) type shared by every
/// variant, feature and constraint.
pub struct CodeVariant<I: ?Sized> {
    name: String,
    context: Context,
    variants: Vec<Arc<dyn Variant<I>>>,
    default_variant: Option<usize>,
    features: Vec<Arc<dyn InputFeature<I>>>,
    constraints: Vec<ConstraintEntry<I>>,
    model: Option<TrainedModel>,
    policy: TuningPolicy,
    stats: CallStats,
    pending: Option<Pending<I>>,
    scratch: PredictScratch,
    observer: Option<Arc<dyn DispatchObserver>>,
}

impl<I: ?Sized> CodeVariant<I> {
    /// Create a named dispatcher attached to a [`Context`].
    pub fn new(name: impl Into<String>, context: &Context) -> Self {
        Self {
            name: name.into(),
            context: context.clone(),
            variants: Vec::new(),
            default_variant: None,
            features: Vec::new(),
            constraints: Vec::new(),
            model: None,
            policy: TuningPolicy::default(),
            stats: CallStats::default(),
            pending: None,
            scratch: PredictScratch::default(),
            observer: None,
        }
    }

    /// This function's name (used as the model registry key).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attached context.
    pub fn context(&self) -> &Context {
        &self.context
    }

    /// Register a variant; returns its index (the model's class label).
    pub fn add_variant(&mut self, v: impl Variant<I> + 'static) -> usize {
        self.variants.push(Arc::new(v));
        self.stats.selections.push(0);
        self.variants.len() - 1
    }

    /// Register an already-shared variant; returns its index.
    pub fn add_variant_arc(&mut self, v: Arc<dyn Variant<I>>) -> usize {
        self.variants.push(v);
        self.stats.selections.push(0);
        self.variants.len() - 1
    }

    /// Register a *family* of variants generated from a parameter grid:
    /// one variant per value, named `base@value`. Returns their indices.
    ///
    /// This folds optimization-parameter tuning into variant selection —
    /// the integration path the paper sketches for parameter-tuning
    /// systems (§VI: parameterized templates "generate new variants based
    /// on the actual values of the parameters"; §VII plans to
    /// "incorporate into Nitro optimization parameters common to most
    /// autotuning systems").
    pub fn add_variant_family<P, F>(&mut self, base: &str, params: Vec<P>, invoke: F) -> Vec<usize>
    where
        I: 'static,
        P: std::fmt::Display + Send + Sync + 'static,
        F: Fn(&P, &I) -> f64 + Send + Sync + Clone + 'static,
    {
        params
            .into_iter()
            .map(|p| {
                let name = format!("{base}@{p}");
                let f = invoke.clone();
                self.add_variant(crate::variant::FnVariant::new(name, move |input: &I| {
                    f(&p, input)
                }))
            })
            .collect()
    }

    /// Mark the variant used when no model is installed or a constraint
    /// vetoes the prediction.
    ///
    /// Out-of-range indices are accepted here (registration order is not
    /// prescribed — a library may set the default before adding variants)
    /// and reported by the `nitro-audit` registration linter; dispatch
    /// refuses to run with an invalid default.
    pub fn set_default(&mut self, index: usize) {
        self.default_variant = Some(index);
    }

    /// The default variant's index, if set.
    pub fn default_variant(&self) -> Option<usize> {
        self.default_variant
    }

    /// Register an input feature; returns its index.
    pub fn add_input_feature(&mut self, f: impl InputFeature<I> + 'static) -> usize {
        self.features.push(Arc::new(f));
        self.features.len() - 1
    }

    /// Attach an opaque (closure-backed) constraint to one variant.
    ///
    /// The variant must already be registered: unknown indices are a
    /// typed [`NitroError::InvalidIndex`] at registration time, so a
    /// mistyped index fails where it was written instead of surfacing
    /// later as an audit finding. Register variants before constraints.
    ///
    /// Opaque constraints can be *executed* but not *analyzed* — the
    /// whole-configuration analyses model them as `Opaque` nodes. Prefer
    /// [`CodeVariant::add_predicate_constraint`] when the condition is
    /// expressible over registered features.
    pub fn add_constraint(
        &mut self,
        variant: usize,
        c: impl Constraint<I> + 'static,
    ) -> Result<()> {
        self.checked_constraint_variant(variant)?;
        self.constraints.push(ConstraintEntry {
            variant,
            check: Arc::new(c),
            predicate: None,
        });
        Ok(())
    }

    /// Attach a declarative constraint: `variant` may only run on inputs
    /// where `predicate` holds over the registered feature vector.
    ///
    /// The predicate is lowered into the tuning-graph IR, so the
    /// `nitro-audit` whole-configuration analyses (NITRO080–086) can
    /// reason about it statically; at dispatch it behaves exactly like a
    /// closure constraint (referenced features are evaluated on the
    /// input, sanitized, and the expression applied).
    ///
    /// Both the variant index and every feature index the predicate
    /// references must already be registered; violations are a typed
    /// [`NitroError::InvalidIndex`].
    pub fn add_predicate_constraint(
        &mut self,
        variant: usize,
        name: impl Into<String>,
        predicate: Predicate,
    ) -> Result<()>
    where
        I: 'static,
    {
        self.checked_constraint_variant(variant)?;
        if let Err(bad) = predicate.validate(self.features.len()) {
            return Err(NitroError::InvalidIndex {
                what: "predicate feature",
                index: bad,
                len: self.features.len(),
            });
        }
        let features = predicate
            .features_referenced()
            .into_iter()
            .map(|i| (i, Arc::clone(&self.features[i])))
            .collect::<Vec<_>>();
        let width = features.iter().map(|(i, _)| i + 1).max().unwrap_or(0);
        let check = PredicateConstraint {
            name: name.into(),
            predicate: predicate.clone(),
            features,
            width,
        };
        self.constraints.push(ConstraintEntry {
            variant,
            check: Arc::new(check),
            predicate: Some(predicate),
        });
        Ok(())
    }

    /// Registration-time validation shared by both constraint paths.
    fn checked_constraint_variant(&self, variant: usize) -> Result<()> {
        if variant < self.variants.len() {
            Ok(())
        } else {
            Err(NitroError::InvalidIndex {
                what: "constraint variant",
                index: variant,
                len: self.variants.len(),
            })
        }
    }

    /// Variant indices referenced by registered constraints, in
    /// registration order (with repeats). Registration now rejects
    /// unknown indices, but the `nitro-audit` registration linter still
    /// re-checks this defensively (NITRO017).
    pub fn constraint_targets(&self) -> Vec<usize> {
        self.constraints.iter().map(|e| e.variant).collect()
    }

    /// Descriptors for every registered constraint, in registration
    /// order: target variant, name, and the lowered predicate (`None`
    /// for opaque closures). This is the feed for the `nitro-audit`
    /// tuning-graph IR.
    pub fn constraint_descriptors(&self) -> Vec<ConstraintDescriptor> {
        self.constraints
            .iter()
            .map(|e| ConstraintDescriptor {
                variant: e.variant,
                name: e.check.name().to_string(),
                predicate: e.predicate.clone(),
            })
            .collect()
    }

    /// Whether any registered constraint was declared as a predicate
    /// (and the deep whole-configuration analyses therefore have
    /// something to analyze).
    pub fn has_predicate_constraints(&self) -> bool {
        self.constraints.iter().any(|e| e.predicate.is_some())
    }

    /// Number of registered variants.
    pub fn n_variants(&self) -> usize {
        self.variants.len()
    }

    /// Number of registered features.
    pub fn n_features(&self) -> usize {
        self.features.len()
    }

    /// Registered variant names, in index order.
    pub fn variant_names(&self) -> Vec<String> {
        self.variants.iter().map(|v| v.name().to_string()).collect()
    }

    /// Registered feature names, in index order (full set, not subset).
    pub fn feature_names(&self) -> Vec<String> {
        self.features.iter().map(|f| f.name().to_string()).collect()
    }

    /// Feature names after applying the policy's feature subset.
    pub fn active_feature_names(&self) -> Vec<String> {
        self.policy
            .active_features(self.features.len())
            .into_iter()
            .map(|i| self.features[i].name().to_string())
            .collect()
    }

    /// The tuning policy (Table II options).
    pub fn policy(&self) -> &TuningPolicy {
        &self.policy
    }

    /// Mutable access to the tuning policy.
    pub fn policy_mut(&mut self) -> &mut TuningPolicy {
        &mut self.policy
    }

    /// Dispatch statistics so far.
    pub fn stats(&self) -> &CallStats {
        &self.stats
    }

    /// Install a trained model directly (used by the autotuner).
    pub fn install_model(&mut self, model: TrainedModel) {
        self.model = Some(model);
    }

    /// Whether a model is installed.
    pub fn has_model(&self) -> bool {
        self.model.is_some()
    }

    /// The installed model, if any (the IR builder reads its emittable
    /// class labels for the NITRO086 exhaustiveness analysis).
    pub fn model(&self) -> Option<&TrainedModel> {
        self.model.as_ref()
    }

    /// Install a persisted artifact after validating that it was trained
    /// for this function's exact variant and feature lists.
    pub fn install_artifact(&mut self, artifact: ModelArtifact) -> Result<()> {
        artifact.validate(&self.name, &self.variant_names(), &self.feature_names())?;
        self.policy = artifact.policy.clone();
        self.model = Some(artifact.model);
        Ok(())
    }

    /// Bundle the installed model into a persistable artifact.
    pub fn export_artifact(&self) -> Result<ModelArtifact> {
        let model = self.model.clone().ok_or(NitroError::NoSelectionPossible)?;
        Ok(ModelArtifact {
            schema_version: crate::model::MODEL_SCHEMA_VERSION,
            function: self.name.clone(),
            variant_names: self.variant_names(),
            feature_names: self.feature_names(),
            policy: self.policy.clone(),
            model,
        })
    }

    /// Store the installed model in the context (registry + disk).
    pub fn save_model(&self) -> Result<()> {
        self.context.store_model(self.export_artifact()?)
    }

    /// Load and install this function's model from the context.
    pub fn load_model(&mut self) -> Result<()> {
        let artifact =
            self.context
                .fetch_model(&self.name)
                .ok_or_else(|| NitroError::ModelMismatch {
                    detail: format!("no stored model for '{}'", self.name),
                })?;
        self.install_artifact(artifact)
    }

    /// Evaluate the active features for an input. Returns the feature
    /// vector and the total simulated evaluation cost in nanoseconds.
    pub fn evaluate_features(&self, input: &I) -> (Vec<f64>, f64)
    where
        I: Sync,
    {
        let active = self.policy.active_features(self.features.len());
        // Borrow only the feature table: capturing `self` would demand
        // `I: Send` because of the pending-async slot.
        let features = &self.features;
        if self.policy.parallel_feature_evaluation {
            let pairs: Vec<(f64, f64)> = active
                .par_iter()
                .map(|&i| {
                    let f = &features[i];
                    (sanitize(f.evaluate(input)), f.cost_ns(input))
                })
                .collect();
            let values = pairs.iter().map(|p| p.0).collect();
            // Parallel evaluation overlaps the features: the simulated
            // cost is the longest one, not the sum (paper §III-C).
            let cost = pairs.iter().map(|p| p.1).fold(0.0, f64::max);
            (values, cost)
        } else {
            let mut values = Vec::with_capacity(active.len());
            let mut cost = 0.0;
            for &i in &active {
                let f = &self.features[i];
                values.push(sanitize(f.evaluate(input)));
                cost += f.cost_ns(input);
            }
            (values, cost)
        }
    }

    /// Per-feature simulated evaluation costs for an input, over the
    /// *full* registered feature list (ignores the policy's subset). Used
    /// by the feature-overhead analysis (paper Figure 8) to order
    /// features from cheap to expensive.
    pub fn feature_costs(&self, input: &I) -> Vec<f64> {
        self.features.iter().map(|f| f.cost_ns(input)).collect()
    }

    /// Whether every constraint attached to `variant` accepts this input.
    /// Always true when the policy disables constraints.
    pub fn constraints_satisfied(&self, variant: usize, input: &I) -> bool {
        if !self.policy.constraints {
            return true;
        }
        self.constraints
            .iter()
            .filter(|e| e.variant == variant)
            .all(|e| e.check.is_satisfied(input))
    }

    /// Execute one specific variant directly (the autotuner's exhaustive
    /// search uses this).
    ///
    /// # Panics
    /// Panics if `variant` is out of range.
    pub fn run_variant(&self, variant: usize, input: &I) -> f64 {
        self.variants[variant].invoke(input)
    }

    /// Execute one variant with failure isolation: a panic inside the
    /// variant (e.g. an injected launch failure from the simulator's
    /// fault plan) or a non-finite objective value becomes a typed
    /// [`NitroError::VariantFailed`] instead of unwinding into the
    /// caller. Failure-tolerant profiling and the `nitro-guard`
    /// retry/quarantine dispatch build on this.
    pub fn try_run_variant(&self, variant: usize, input: &I) -> Result<f64> {
        let Some(v) = self.variants.get(variant) else {
            return Err(NitroError::InvalidIndex {
                what: "variant",
                index: variant,
                len: self.variants.len(),
            });
        };
        // AssertUnwindSafe: on Err we only read the variant's name (the
        // shared-variant table is not mutated across the unwind), and
        // variants are required to leave `input` consistent on failure —
        // the same contract a real launch failure imposes.
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| v.invoke(input))) {
            Ok(objective) if objective.is_finite() => Ok(objective),
            Ok(objective) => Err(NitroError::VariantFailed {
                variant,
                name: v.name().to_string(),
                attempts: 1,
                detail: format!("non-finite objective value {objective}"),
            }),
            Err(payload) => {
                let detail = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "variant panicked".to_string());
                Err(NitroError::VariantFailed {
                    variant,
                    name: v.name().to_string(),
                    attempts: 1,
                    detail,
                })
            }
        }
    }

    /// Shared handle to a registered variant, or `None` if out of range.
    pub fn variant(&self, index: usize) -> Option<Arc<dyn Variant<I>>> {
        self.variants.get(index).cloned()
    }

    /// Replace a registered variant in place, returning the old one. The
    /// index keeps its model label and statistics slot, so the
    /// replacement must be functionally equivalent (chaos harnesses use
    /// this to wrap a variant in a fault-injecting decorator that keeps
    /// the inner variant's name).
    pub fn replace_variant(
        &mut self,
        index: usize,
        v: Arc<dyn Variant<I>>,
    ) -> Result<Arc<dyn Variant<I>>> {
        if index >= self.variants.len() {
            return Err(NitroError::InvalidIndex {
                what: "variant",
                index,
                len: self.variants.len(),
            });
        }
        Ok(std::mem::replace(&mut self.variants[index], v))
    }

    /// Model prediction for a feature vector (no constraint handling).
    pub fn select(&self, features: &[f64]) -> Option<usize> {
        self.model.as_ref().map(|m| m.predict(features))
    }

    /// Model ranking for a feature vector: every variant index, ordered
    /// from most to least preferred by the model's class posterior.
    /// `None` without a model. The `nitro-guard` fallback cascade walks
    /// this ranking when preferred variants are quarantined or vetoed.
    pub fn predict_ranked(&self, features: &[f64]) -> Option<Vec<usize>> {
        self.model.as_ref().map(|m| m.rank(features))
    }

    /// The full dispatch pipeline: evaluate features, consult the model,
    /// apply constraints, execute, record statistics.
    pub fn call(&mut self, input: &I) -> Result<Invocation>
    where
        I: Sync,
    {
        let (features, feature_cost_ns) = self.evaluate_features(input);
        self.dispatch(input, features, feature_cost_ns, false)
    }

    /// Validate the (permissively stored) default variant index before
    /// dispatching through it.
    fn checked_default(&self, index: usize) -> Result<usize> {
        if index < self.variants.len() {
            Ok(index)
        } else {
            Err(NitroError::InvalidIndex {
                what: "default variant",
                index,
                len: self.variants.len(),
            })
        }
    }

    /// Pre-register this function's dispatch metrics (calls, fallback,
    /// and per-variant win/veto counters) in a tracer's registry, so an
    /// exported metrics JSON distinguishes "variant never won" from
    /// "variant never registered" — the signal the `nitro-audit`
    /// metrics analyzer keys on.
    pub fn declare_tracer_metrics(&self, tracer: &nitro_trace::Tracer) {
        let m = tracer.metrics();
        m.declare_counter(&format!("dispatch.{}.calls", self.name));
        m.declare_counter(&format!("dispatch.{}.fallback", self.name));
        m.declare_counter("ml.predict.kernel_evals");
        for v in &self.variants {
            m.declare_counter(&format!("dispatch.{}.win.{}", self.name, v.name()));
            m.declare_counter(&format!("dispatch.{}.veto.{}", self.name, v.name()));
        }
    }

    /// Install a per-dispatch observer (see
    /// [`crate::observer::DispatchObserver`]): telemetry layers above
    /// this crate receive one borrowed observation per call. Replaces
    /// any previous observer.
    pub fn set_dispatch_observer(&mut self, observer: Arc<dyn DispatchObserver>) {
        self.observer = Some(observer);
    }

    /// Remove the dispatch observer, returning it if one was installed.
    pub fn clear_dispatch_observer(&mut self) -> Option<Arc<dyn DispatchObserver>> {
        self.observer.take()
    }

    /// The installed dispatch observer, if any.
    pub fn dispatch_observer(&self) -> Option<&Arc<dyn DispatchObserver>> {
        self.observer.as_ref()
    }

    /// Shared dispatch tail for `call` and `call_fixed`.
    fn dispatch(
        &mut self,
        input: &I,
        features: Vec<f64>,
        feature_cost_ns: f64,
        via_async: bool,
    ) -> Result<Invocation> {
        // One cheap clone of the installed tracer (a reference-count
        // bump); `None` on the untraced hot path, which allocates
        // nothing below this point.
        let tracer = self.context.tracer();
        let mut span = tracer.as_ref().map(|t| {
            t.span(
                &format!("dispatch:{}", self.name),
                "dispatch",
                vec![
                    nitro_trace::arg("features", &features),
                    nitro_trace::arg("feature_cost_ns", &feature_cost_ns),
                ],
            )
        });

        if self.variants.is_empty() {
            return Err(NitroError::NoVariants);
        }
        let predict_start = tracer.as_ref().map(|t| t.now_ns());
        // The observer wants wall-clock prediction cost even with no
        // tracer installed (its clock may be manual); one Instant read
        // only when an observer is watching.
        let observer_predict_start = self.observer.as_ref().map(|_| std::time::Instant::now());
        let predicted = match (&self.model, self.default_variant) {
            // Scratch-buffer prediction: after the first call the model
            // hot path performs no allocations.
            (Some(m), _) => m.predict_into(&features, &mut self.scratch),
            (None, Some(d)) => self.checked_default(d)?,
            (None, None) => return Err(NitroError::NoSelectionPossible),
        };
        let kernel_evals = self.scratch.take_kernel_evals();
        let predict_ns = tracer
            .as_ref()
            .zip(predict_start)
            .map(|(t, start)| t.now_ns().saturating_sub(start));
        let predict_wall_ns = observer_predict_start
            .map(|start| start.elapsed().as_nanos() as u64)
            .unwrap_or(0);

        // Online constraint handling: revert to the default variant when
        // the predicted one is vetoed (paper §II-B).
        let mut fell_back = false;
        let intended = predicted.min(self.variants.len() - 1);
        let mut chosen = intended;
        if !self.constraints_satisfied(chosen, input) {
            fell_back = true;
            chosen = match self.default_variant {
                Some(d) => self.checked_default(d)?,
                None => 0,
            };
        }

        let objective = self.variants[chosen].invoke(input);

        self.stats.calls += 1;
        self.stats.selections[chosen] += 1;
        self.stats.feature_cost_ns += feature_cost_ns;
        if fell_back {
            self.stats.fallbacks += 1;
        }
        if via_async {
            self.stats.async_calls += 1;
        }

        // The observer path is lock-free and allocation-free end to
        // end: the observation borrows dispatcher state, and pulse-style
        // observers record through striped atomics.
        if let Some(obs) = &self.observer {
            obs.on_dispatch(&DispatchObservation {
                function: &self.name,
                variant: chosen,
                variant_name: self.variants[chosen].name(),
                intended,
                intended_name: self.variants[intended].name(),
                fell_back,
                objective_ns: objective,
                feature_cost_ns,
                predict_wall_ns,
                kernel_evals,
                features: &features,
                via_async,
            });
        }

        if let Some(t) = &tracer {
            let m = t.metrics();
            m.inc(&format!("dispatch.{}.calls", self.name));
            m.inc(&format!(
                "dispatch.{}.win.{}",
                self.name,
                self.variants[chosen].name()
            ));
            if fell_back {
                m.inc(&format!("dispatch.{}.fallback", self.name));
                m.inc(&format!(
                    "dispatch.{}.veto.{}",
                    self.name,
                    self.variants[intended].name()
                ));
            }
            m.observe(
                &format!("dispatch.{}.feature_ns", self.name),
                feature_cost_ns,
            );
            if let Some(ns) = predict_ns {
                m.observe(&format!("dispatch.{}.predict_ns", self.name), ns as f64);
            }
            if kernel_evals > 0 {
                m.add("ml.predict.kernel_evals", kernel_evals);
            }
            if let Some(s) = span.as_mut() {
                s.end_arg("predicted", nitro_trace::val(&predicted));
                s.end_arg("chosen", nitro_trace::val(&chosen));
                s.end_arg("vetoed", nitro_trace::val(&fell_back));
                s.end_arg("objective_ns", nitro_trace::val(&objective));
            }
        }

        Ok(Invocation {
            variant: chosen,
            variant_name: self.variants[chosen].name().to_string(),
            objective,
            features,
            feature_cost_ns,
            fell_back_to_default: fell_back,
        })
    }
}

impl<I: ?Sized + Send + Sync + 'static> CodeVariant<I> {
    /// Begin asynchronous feature evaluation for `input` (paper §III-C:
    /// "start executing feature functions asynchronously … Calling the
    /// variant while in asynchronous mode introduces an implicit
    /// barrier"). Returns immediately; follow with [`CodeVariant::call_fixed`].
    ///
    /// When the policy's `async_feature_eval` is disabled, the features
    /// are evaluated eagerly on this thread instead (same semantics,
    /// no concurrency).
    pub fn fix_inputs(&mut self, input: Arc<I>) {
        let active = self.policy.active_features(self.features.len());
        let feats: Vec<Arc<dyn InputFeature<I>>> = active
            .iter()
            .map(|&i| Arc::clone(&self.features[i]))
            .collect();
        let parallel = self.policy.parallel_feature_evaluation;
        let work = {
            let input = Arc::clone(&input);
            move || -> (Vec<f64>, f64) {
                if parallel {
                    let pairs: Vec<(f64, f64)> = feats
                        .par_iter()
                        .map(|f| (f.evaluate(&input), f.cost_ns(&input)))
                        .collect();
                    let values = pairs.iter().map(|p| p.0).collect();
                    let cost = pairs.iter().map(|p| p.1).fold(0.0, f64::max);
                    (values, cost)
                } else {
                    let mut values = Vec::with_capacity(feats.len());
                    let mut cost = 0.0;
                    for f in &feats {
                        values.push(f.evaluate(&input));
                        cost += f.cost_ns(&input);
                    }
                    (values, cost)
                }
            }
        };
        let handle = if self.policy.async_feature_eval {
            std::thread::spawn(work)
        } else {
            // Eager evaluation wrapped in an immediately-finished thread
            // keeps one code path for call_fixed.
            let result = work();
            std::thread::spawn(move || result)
        };
        self.pending = Some(Pending { input, handle });
    }

    /// Join the pending feature evaluation (the implicit barrier) and
    /// dispatch on the fixed input.
    pub fn call_fixed(&mut self) -> Result<Invocation> {
        let Pending { input, handle } = self.pending.take().ok_or(NitroError::NoFixedInput)?;
        let (features, cost) = handle.join().map_err(|payload| {
            let detail = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "asynchronous feature evaluation".to_string());
            NitroError::Thread { detail }
        })?;
        self.dispatch(&input, features, cost, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{FnConstraint, FnFeature};
    use crate::variant::FnVariant;
    use nitro_ml::{ClassifierConfig, Dataset};

    /// A toy tuned function over f64 inputs: variant 0 is "cheap for
    /// small", variant 1 is "cheap for large".
    fn toy() -> CodeVariant<f64> {
        let ctx = Context::new();
        let mut cv = CodeVariant::new("toy", &ctx);
        cv.add_variant(FnVariant::new("small", |&x: &f64| 1.0 + x));
        cv.add_variant(FnVariant::new("large", |&x: &f64| 10.0 - x * 0.5));
        cv.set_default(0);
        cv.add_input_feature(FnFeature::new("x", |&x: &f64| x));
        cv
    }

    fn toy_model() -> TrainedModel {
        // Learn: x < 5 → variant 0, else variant 1.
        let data = Dataset::from_parts(
            (0..10).map(|i| vec![i as f64]).collect(),
            (0..10).map(|i| usize::from(i >= 5)).collect(),
        );
        TrainedModel::train(&ClassifierConfig::Knn { k: 1 }, &data)
    }

    #[test]
    fn no_variants_is_an_error() {
        let ctx = Context::new();
        let mut cv: CodeVariant<f64> = CodeVariant::new("empty", &ctx);
        assert!(matches!(cv.call(&1.0), Err(NitroError::NoVariants)));
    }

    #[test]
    fn without_model_uses_default() {
        let mut cv = toy();
        let inv = cv.call(&8.0).unwrap();
        assert_eq!(inv.variant, 0);
        assert_eq!(inv.variant_name, "small");
    }

    #[test]
    fn without_model_or_default_errors() {
        let ctx = Context::new();
        let mut cv = CodeVariant::new("nodefault", &ctx);
        cv.add_variant(FnVariant::new("only", |&_x: &f64| 1.0));
        assert!(matches!(
            cv.call(&1.0),
            Err(NitroError::NoSelectionPossible)
        ));
    }

    #[test]
    fn model_drives_selection() {
        let mut cv = toy();
        cv.install_model(toy_model());
        assert_eq!(cv.call(&1.0).unwrap().variant, 0);
        assert_eq!(cv.call(&9.0).unwrap().variant, 1);
    }

    #[test]
    fn constraint_forces_fallback_to_default() {
        let mut cv = toy();
        cv.install_model(toy_model());
        // Veto the "large" variant everywhere.
        cv.add_constraint(1, FnConstraint::new("never", |_: &f64| false))
            .unwrap();
        let inv = cv.call(&9.0).unwrap();
        assert!(inv.fell_back_to_default);
        assert_eq!(inv.variant, 0);
        assert_eq!(cv.stats().fallbacks, 1);
    }

    #[test]
    fn disabling_constraints_in_policy_ignores_them() {
        let mut cv = toy();
        cv.install_model(toy_model());
        cv.add_constraint(1, FnConstraint::new("never", |_: &f64| false))
            .unwrap();
        cv.policy_mut().constraints = false;
        let inv = cv.call(&9.0).unwrap();
        assert!(!inv.fell_back_to_default);
        assert_eq!(inv.variant, 1);
    }

    #[test]
    fn feature_subset_changes_feature_vector() {
        let mut cv = toy();
        cv.add_input_feature(FnFeature::new("x_squared", |&x: &f64| x * x));
        cv.policy_mut().feature_subset = Some(vec![1]);
        let (features, _) = cv.evaluate_features(&3.0);
        assert_eq!(features, vec![9.0]);
        assert_eq!(cv.active_feature_names(), vec!["x_squared".to_string()]);
    }

    #[test]
    fn serial_feature_cost_sums_parallel_takes_max() {
        let mut cv = toy();
        cv.add_input_feature(FnFeature::with_cost("slow", |&x: &f64| x, |_| 100.0));
        cv.add_input_feature(FnFeature::with_cost("slower", |&x: &f64| x, |_| 300.0));
        let (_, serial_cost) = cv.evaluate_features(&1.0);
        assert_eq!(serial_cost, 400.0);
        cv.policy_mut().parallel_feature_evaluation = true;
        let (_, parallel_cost) = cv.evaluate_features(&1.0);
        assert_eq!(parallel_cost, 300.0);
    }

    #[test]
    fn stats_accumulate() {
        let mut cv = toy();
        cv.install_model(toy_model());
        cv.call(&1.0).unwrap();
        cv.call(&2.0).unwrap();
        cv.call(&9.0).unwrap();
        let s = cv.stats();
        assert_eq!(s.calls, 3);
        assert_eq!(s.selections, vec![2, 1]);
    }

    #[test]
    fn async_fix_inputs_then_call_fixed() {
        let mut cv = toy();
        cv.install_model(toy_model());
        cv.policy_mut().async_feature_eval = true;
        cv.fix_inputs(Arc::new(9.0));
        let inv = cv.call_fixed().unwrap();
        assert_eq!(inv.variant, 1);
        assert_eq!(cv.stats().async_calls, 1);
    }

    #[test]
    fn call_fixed_without_fix_inputs_errors() {
        let mut cv = toy();
        assert!(matches!(cv.call_fixed(), Err(NitroError::NoFixedInput)));
    }

    #[test]
    fn artifact_round_trip_through_context() {
        let dir = crate::context::temp_model_dir("cv-artifact").unwrap();
        let ctx = Context::with_model_dir(&dir);
        let mut cv = CodeVariant::new("toy", &ctx);
        cv.add_variant(FnVariant::new("small", |&x: &f64| 1.0 + x));
        cv.add_variant(FnVariant::new("large", |&x: &f64| 10.0 - x * 0.5));
        cv.set_default(0);
        cv.add_input_feature(FnFeature::new("x", |&x: &f64| x));
        cv.install_model(toy_model());
        cv.save_model().unwrap();

        // A second instance of the same library function loads it back.
        let mut cv2 = CodeVariant::new("toy", &ctx);
        cv2.add_variant(FnVariant::new("small", |&x: &f64| 1.0 + x));
        cv2.add_variant(FnVariant::new("large", |&x: &f64| 10.0 - x * 0.5));
        cv2.set_default(0);
        cv2.add_input_feature(FnFeature::new("x", |&x: &f64| x));
        cv2.load_model().unwrap();
        assert_eq!(cv2.call(&9.0).unwrap().variant, 1);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn variant_family_expands_parameter_grid() {
        let ctx = Context::new();
        let mut cv = CodeVariant::<f64>::new("fam", &ctx);
        // Cost model: |x − p| — each parameter value wins near itself.
        let ids = cv.add_variant_family("tile", vec![2u32, 4, 8], |&p, &x: &f64| {
            (x - p as f64).abs()
        });
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(
            cv.variant_names(),
            vec![
                "tile@2".to_string(),
                "tile@4".to_string(),
                "tile@8".to_string()
            ]
        );
        assert_eq!(cv.run_variant(1, &5.0), 1.0);
        // Families can be tuned like any other variant set.
        cv.set_default(0);
        cv.add_input_feature(FnFeature::new("x", |&x: &f64| x));
        let data = Dataset::from_parts(
            vec![
                vec![2.0],
                vec![2.2],
                vec![4.1],
                vec![3.9],
                vec![7.8],
                vec![8.3],
            ],
            vec![0, 0, 1, 1, 2, 2],
        );
        cv.install_model(TrainedModel::train(&ClassifierConfig::Knn { k: 1 }, &data));
        assert_eq!(cv.call(&7.9).unwrap().variant_name, "tile@8");
    }

    #[test]
    fn traced_dispatch_emits_span_and_metrics() {
        let mut cv = toy();
        cv.install_model(toy_model());
        cv.add_constraint(1, FnConstraint::new("never", |_: &f64| false))
            .unwrap();
        let sink = Arc::new(nitro_trace::RingSink::new(64));
        let tracer = nitro_trace::Tracer::new(sink.clone());
        cv.declare_tracer_metrics(&tracer);
        cv.context().install_tracer(tracer.clone());

        cv.call(&1.0).unwrap(); // predicted 0, runs 0
        cv.call(&9.0).unwrap(); // predicted 1, vetoed, falls back to 0

        let events = sink.snapshot();
        assert_eq!(events.len(), 4, "two spans = four boundary events");
        assert_eq!(events[0].name, "dispatch:toy");
        assert_eq!(events[0].cat, "dispatch");
        assert_eq!(events[0].phase, nitro_trace::Phase::Begin);
        let vetoed_end = &events[3];
        assert_eq!(vetoed_end.phase, nitro_trace::Phase::End);
        let vetoed = vetoed_end
            .args
            .iter()
            .find(|(k, _)| k == "vetoed")
            .expect("end event carries outcome");
        assert_eq!(vetoed.1, nitro_trace::Value::Bool(true));

        let m = tracer.metrics();
        assert_eq!(m.counter("dispatch.toy.calls"), Some(2));
        assert_eq!(m.counter("dispatch.toy.win.small"), Some(2));
        assert_eq!(m.counter("dispatch.toy.win.large"), Some(0));
        assert_eq!(m.counter("dispatch.toy.veto.large"), Some(1));
        assert_eq!(m.counter("dispatch.toy.fallback"), Some(1));

        // Dispatch behavior itself is unchanged by tracing.
        assert_eq!(cv.stats().calls, 2);
        assert_eq!(cv.stats().fallbacks, 1);
    }

    #[test]
    fn svm_dispatch_counts_kernel_evaluations() {
        let mut cv = toy();
        let data = Dataset::from_parts(
            (0..10).map(|i| vec![i as f64]).collect(),
            (0..10).map(|i| usize::from(i >= 5)).collect(),
        );
        cv.install_model(TrainedModel::train(
            &ClassifierConfig::Svm {
                c: Some(10.0),
                gamma: Some(1.0),
                grid_search: false,
                cache_bytes: None,
            },
            &data,
        ));
        let tracer = nitro_trace::Tracer::new(Arc::new(nitro_trace::RingSink::new(16)));
        cv.declare_tracer_metrics(&tracer);
        cv.context().install_tracer(tracer.clone());

        cv.call(&1.0).unwrap();
        cv.call(&9.0).unwrap();
        let evals = tracer.metrics().counter("ml.predict.kernel_evals").unwrap();
        assert!(evals > 0, "SVM dispatch must report kernel work");
        // Knn dispatch reports none (counter stays declared-but-zero).
        let mut knn = toy();
        knn.install_model(toy_model());
        let t2 = nitro_trace::Tracer::new(Arc::new(nitro_trace::RingSink::new(16)));
        knn.declare_tracer_metrics(&t2);
        knn.context().install_tracer(t2.clone());
        knn.call(&1.0).unwrap();
        assert_eq!(t2.metrics().counter("ml.predict.kernel_evals"), Some(0));
    }

    #[test]
    fn traced_error_path_still_closes_span() {
        let ctx = Context::new();
        let sink = Arc::new(nitro_trace::RingSink::new(8));
        ctx.install_tracer(nitro_trace::Tracer::new(sink.clone()));
        let mut cv = CodeVariant::new("nodefault", &ctx);
        cv.add_variant(FnVariant::new("only", |&_x: &f64| 1.0));
        assert!(cv.call(&1.0).is_err());
        let events = sink.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].phase, nitro_trace::Phase::End);
    }

    #[test]
    fn untraced_dispatch_emits_nothing() {
        let mut cv = toy();
        cv.install_model(toy_model());
        cv.call(&1.0).unwrap();
        assert!(cv.context().tracer().is_none());
    }

    #[test]
    fn try_run_variant_isolates_panics_and_bad_objectives() {
        let ctx = Context::new();
        let mut cv = CodeVariant::<f64>::new("fragile", &ctx);
        cv.add_variant(FnVariant::new("ok", |&x: &f64| x + 1.0));
        cv.add_variant(FnVariant::new("panics", |_: &f64| -> f64 {
            panic!("injected launch failure: kernel 'k' (launch 0)")
        }));
        cv.add_variant(FnVariant::new("nan", |_: &f64| f64::NAN));
        cv.add_variant(FnVariant::new("inf", |_: &f64| f64::INFINITY));

        assert_eq!(cv.try_run_variant(0, &1.0).unwrap(), 2.0);
        match cv.try_run_variant(1, &1.0) {
            Err(NitroError::VariantFailed {
                variant,
                name,
                attempts,
                detail,
            }) => {
                assert_eq!((variant, attempts), (1, 1));
                assert_eq!(name, "panics");
                assert!(detail.contains("injected launch failure"), "{detail}");
            }
            other => panic!("expected VariantFailed, got {other:?}"),
        }
        assert!(matches!(
            cv.try_run_variant(2, &1.0),
            Err(NitroError::VariantFailed { .. })
        ));
        assert!(matches!(
            cv.try_run_variant(3, &1.0),
            Err(NitroError::VariantFailed { .. })
        ));
        assert!(matches!(
            cv.try_run_variant(9, &1.0),
            Err(NitroError::InvalidIndex { .. })
        ));
    }

    #[test]
    fn predict_ranked_starts_at_prediction_and_covers_all_variants() {
        let mut cv = toy();
        assert!(cv.predict_ranked(&[1.0]).is_none());
        cv.install_model(toy_model());
        for x in [1.0, 9.0] {
            let (features, _) = cv.evaluate_features(&x);
            let order = cv.predict_ranked(&features).unwrap();
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1]);
            assert_eq!(order[0], cv.select(&features).unwrap());
        }
    }

    #[test]
    fn replace_variant_keeps_index_and_returns_old() {
        let mut cv = toy();
        let old = cv
            .replace_variant(0, Arc::new(FnVariant::new("small", |&x: &f64| 100.0 + x)))
            .unwrap();
        assert_eq!(old.name(), "small");
        assert_eq!(cv.run_variant(0, &1.0), 101.0);
        assert_eq!(
            cv.variant_names(),
            vec!["small".to_string(), "large".to_string()]
        );
        assert!(cv
            .replace_variant(5, Arc::new(FnVariant::new("x", |&x: &f64| x)))
            .is_err());
        assert!(cv.variant(1).is_some());
        assert!(cv.variant(7).is_none());
    }

    #[test]
    fn predicate_constraint_vetoes_like_a_closure() {
        let mut cv = toy();
        cv.install_model(toy_model());
        // "large" may only run when x <= 7 (feature 0 is x itself).
        cv.add_predicate_constraint(1, "x_le_7", Predicate::le(0, 7.0))
            .unwrap();
        assert!(cv.has_predicate_constraints());
        let inv = cv.call(&6.0).unwrap();
        assert_eq!(inv.variant, 1);
        assert!(!inv.fell_back_to_default);
        let inv = cv.call(&9.0).unwrap();
        assert_eq!(inv.variant, 0);
        assert!(inv.fell_back_to_default);
    }

    #[test]
    fn constraint_registration_rejects_unknown_indices() {
        let mut cv = toy();
        // Unknown variant: typed error at registration, not an audit find.
        let err = cv
            .add_constraint(5, FnConstraint::new("x", |_: &f64| true))
            .unwrap_err();
        assert!(matches!(
            err,
            NitroError::InvalidIndex {
                what: "constraint variant",
                index: 5,
                len: 2
            }
        ));
        let err = cv
            .add_predicate_constraint(3, "p", Predicate::True)
            .unwrap_err();
        assert!(matches!(
            err,
            NitroError::InvalidIndex {
                what: "constraint variant",
                index: 3,
                ..
            }
        ));
        // Unknown feature index inside the predicate.
        let err = cv
            .add_predicate_constraint(1, "p", Predicate::le(4, 1.0))
            .unwrap_err();
        assert!(matches!(
            err,
            NitroError::InvalidIndex {
                what: "predicate feature",
                index: 4,
                len: 1
            }
        ));
        // Nothing was registered by the failed calls.
        assert!(cv.constraint_targets().is_empty());
    }

    #[test]
    fn constraint_descriptors_expose_predicates_and_opaques() {
        let mut cv = toy();
        cv.add_constraint(0, FnConstraint::new("opaque_check", |_: &f64| true))
            .unwrap();
        assert!(!cv.has_predicate_constraints());
        cv.add_predicate_constraint(1, "x_le_7", Predicate::le(0, 7.0))
            .unwrap();
        let descs = cv.constraint_descriptors();
        assert_eq!(descs.len(), 2);
        assert_eq!(
            (descs[0].variant, descs[0].name.as_str()),
            (0, "opaque_check")
        );
        assert_eq!(descs[0].predicate, None);
        assert_eq!((descs[1].variant, descs[1].name.as_str()), (1, "x_le_7"));
        assert_eq!(descs[1].predicate, Some(Predicate::le(0, 7.0)));
    }

    #[test]
    fn artifact_with_wrong_shape_is_rejected() {
        let ctx = Context::new();
        let mut cv = toy();
        cv.install_model(toy_model());
        let artifact = cv.export_artifact().unwrap();

        let mut other = CodeVariant::new("toy", &ctx);
        other.add_variant(FnVariant::new("renamed", |&x: &f64| x));
        other.add_variant(FnVariant::new("large", |&x: &f64| x));
        other.add_input_feature(FnFeature::new("x", |&x: &f64| x));
        assert!(other.install_artifact(artifact).is_err());
    }
}

#[cfg(test)]
mod sanitize_tests {
    use super::*;
    use crate::feature::FnFeature;
    use crate::variant::FnVariant;

    #[test]
    fn non_finite_features_are_zeroed() {
        let ctx = Context::new();
        let mut cv = CodeVariant::<f64>::new("nan", &ctx);
        cv.add_variant(FnVariant::new("only", |&_x: &f64| 1.0));
        cv.set_default(0);
        cv.add_input_feature(FnFeature::new("bad_nan", |&_x: &f64| f64::NAN));
        cv.add_input_feature(FnFeature::new("bad_inf", |&_x: &f64| f64::INFINITY));
        cv.add_input_feature(FnFeature::new("good", |&x: &f64| x));
        let (features, _) = cv.evaluate_features(&3.0);
        assert_eq!(features, vec![0.0, 0.0, 3.0]);

        // Same guarantee on the parallel path.
        cv.policy_mut().parallel_feature_evaluation = true;
        let (features, _) = cv.evaluate_features(&3.0);
        assert_eq!(features, vec![0.0, 0.0, 3.0]);
    }
}
