//! The dispatch observation hook: a trait boundary that lets telemetry
//! layers above `nitro-core` (notably `nitro-pulse`) watch every
//! dispatch without this crate depending on them.
//!
//! A [`DispatchObserver`] installed via
//! [`CodeVariant::set_dispatch_observer`] receives one borrowed
//! [`DispatchObservation`] per dispatch, after the chosen variant has
//! run. The contract is hot-path-shaped: the observation borrows
//! everything (no allocation to build it), and implementations are
//! expected to record through lock-free primitives — an observer that
//! blocks serializes every caller of the tuned function.
//!
//! [`CodeVariant::set_dispatch_observer`]: crate::CodeVariant::set_dispatch_observer

/// Everything one dispatch decided and measured, borrowed from the
/// dispatcher's own state.
#[derive(Debug, Clone, Copy)]
pub struct DispatchObservation<'a> {
    /// The tuned function's name.
    pub function: &'a str,
    /// Index of the variant that ran.
    pub variant: usize,
    /// Name of the variant that ran.
    pub variant_name: &'a str,
    /// Index of the variant the model (or default) selected before
    /// constraint handling.
    pub intended: usize,
    /// Name of the intended variant.
    pub intended_name: &'a str,
    /// True when a constraint vetoed the intended variant and dispatch
    /// fell back to the default.
    pub fell_back: bool,
    /// The executed variant's objective value (simulated nanoseconds
    /// for the SIMT-backed suites) — the latency signal SLO watchdogs
    /// evaluate.
    pub objective_ns: f64,
    /// Feature-extraction cost charged to this call (simulated ns).
    pub feature_cost_ns: f64,
    /// Wall-clock nanoseconds the model prediction took (0 when no
    /// model is installed).
    pub predict_wall_ns: u64,
    /// Kernel evaluations the prediction performed.
    pub kernel_evals: u64,
    /// The feature vector the selection used.
    pub features: &'a [f64],
    /// True when the call went through the async feature-evaluation
    /// path (`fix_inputs` / `call_fixed`).
    pub via_async: bool,
}

/// Receiver of per-dispatch observations. Implementations must be
/// thread-safe (a shared observer may see dispatches from many threads
/// at once) and should never block or allocate on the record path.
pub trait DispatchObserver: Send + Sync {
    /// Called once per dispatch, after the chosen variant ran.
    fn on_dispatch(&self, observation: &DispatchObservation<'_>);
}
