//! Property tests: every sort variant produces a sorted permutation of
//! its input, for arbitrary key sets and both widths.

use nitro_simt::DeviceConfig;
use nitro_sort::{run_variant, Keys, Method, SortInput};
use proptest::prelude::*;

fn sorted_copy_f64(v: &[f64]) -> Vec<f64> {
    let mut s = v.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    s
}

fn sorted_copy_f32(v: &[f32]) -> Vec<f32> {
    let mut s = v.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    s
}

proptest! {
    /// f64 keys: output equals the comparison-sorted input for every
    /// variant (i.e. it is a sorted permutation).
    #[test]
    fn f64_variants_sort_any_input(keys in prop::collection::vec(-1e12f64..1e12, 1..4000)) {
        let cfg = DeviceConfig::fermi_c2050().noiseless();
        let expect = sorted_copy_f64(&keys);
        for m in [Method::Merge, Method::Locality, Method::Radix] {
            let input = SortInput::new("p64", "prop", Keys::F64(keys.clone()));
            let (out, ns) = run_variant(m, &input, &cfg);
            match out {
                Keys::F64(v) => prop_assert_eq!(&v, &expect, "{:?}", m),
                _ => prop_assert!(false, "wrong key width"),
            }
            prop_assert!(ns > 0.0);
        }
    }

    /// f32 keys, including negatives and repeats.
    #[test]
    fn f32_variants_sort_any_input(keys in prop::collection::vec(-1e6f32..1e6, 1..4000)) {
        let cfg = DeviceConfig::fermi_c2050().noiseless();
        let expect = sorted_copy_f32(&keys);
        for m in [Method::Merge, Method::Locality, Method::Radix] {
            let input = SortInput::new("p32", "prop", Keys::F32(keys.clone()));
            let (out, _) = run_variant(m, &input, &cfg);
            match out {
                Keys::F32(v) => prop_assert_eq!(&v, &expect, "{:?}", m),
                _ => prop_assert!(false, "wrong key width"),
            }
        }
    }

    /// NAscSeq is between 1 and n, and sorted input always reports 1.
    #[test]
    fn ascending_runs_bounds(keys in prop::collection::vec(-1e6f64..1e6, 1..2000)) {
        let k = Keys::F64(keys.clone());
        let runs = k.ascending_runs();
        prop_assert!((1..=keys.len()).contains(&runs));
        let sorted = Keys::F64(sorted_copy_f64(&keys));
        prop_assert_eq!(sorted.ascending_runs(), 1);
    }

    /// Median displacement is zero exactly when the keys are sorted
    /// (modulo ties) and bounded by n.
    #[test]
    fn median_displacement_bounds(keys in prop::collection::vec(0f64..1e9, 2..2000)) {
        let k = Keys::F64(keys.clone());
        let d = k.median_displacement();
        prop_assert!((0.0..=keys.len() as f64).contains(&d));
        let sorted = Keys::F64(sorted_copy_f64(&keys));
        prop_assert_eq!(sorted.median_displacement(), 0.0);
    }
}
