//! Sort keys and workload generators.
//!
//! Paper §IV: "Sorting is performed on 32 and 64-bit floating point
//! keys … 100 consisting of uniformly random keys, 100 consisting of
//! reverse sorted keys, and 100 consisting of almost sorted keys" (the
//! last made by "taking a sorted sequence and randomly swapping 20-25%
//! of the keys"). Normal and Exponential key distributions are included
//! too — the paper tried them and found performance identical to
//! uniform.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Exp, Normal};

/// Key storage: 32- or 64-bit floating point.
#[derive(Debug, Clone, PartialEq)]
pub enum Keys {
    /// 32-bit keys.
    F32(Vec<f32>),
    /// 64-bit keys.
    F64(Vec<f64>),
}

impl Keys {
    /// Number of keys.
    pub fn len(&self) -> usize {
        match self {
            Keys::F32(v) => v.len(),
            Keys::F64(v) => v.len(),
        }
    }

    /// Whether there are no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bits per key (the paper's `Nbits` feature).
    pub fn bits(&self) -> u32 {
        match self {
            Keys::F32(_) => 32,
            Keys::F64(_) => 64,
        }
    }

    /// Bytes per key.
    pub fn key_bytes(&self) -> usize {
        (self.bits() / 8) as usize
    }

    /// Number of ascending (non-decreasing) runs — the paper's `NAscSeq`
    /// feature. A sorted sequence has 1; a reverse-sorted one has `len`.
    pub fn ascending_runs(&self) -> usize {
        fn runs<T: PartialOrd>(v: &[T]) -> usize {
            if v.is_empty() {
                return 0;
            }
            1 + v.windows(2).filter(|w| w[0] > w[1]).count()
        }
        match self {
            Keys::F32(v) => runs(v),
            Keys::F64(v) => runs(v),
        }
    }

    /// Whether the keys are in non-decreasing order.
    pub fn is_sorted(&self) -> bool {
        match self {
            Keys::F32(v) => v.windows(2).all(|w| w[0] <= w[1]),
            Keys::F64(v) => v.windows(2).all(|w| w[0] <= w[1]),
        }
    }

    /// Median displacement between each element's position and its sorted
    /// position — the structural property the locality sort exploits.
    pub fn median_displacement(&self) -> f64 {
        fn disp<T: PartialOrd + Copy>(v: &[T]) -> f64 {
            if v.is_empty() {
                return 0.0;
            }
            let mut order: Vec<usize> = (0..v.len()).collect();
            order.sort_by(|&a, &b| v[a].partial_cmp(&v[b]).unwrap_or(std::cmp::Ordering::Equal));
            let mut d: Vec<usize> = order
                .iter()
                .enumerate()
                .map(|(rank, &i)| rank.abs_diff(i))
                .collect();
            let mid = d.len() / 2;
            *d.select_nth_unstable(mid).1 as f64
        }
        match self {
            Keys::F32(v) => disp(v),
            Keys::F64(v) => disp(v),
        }
    }
}

/// One sorting problem instance.
#[derive(Debug, Clone)]
pub struct SortInput {
    /// Instance name (seeds simulation noise).
    pub name: String,
    /// Workload category (`uniform`, `reverse`, `almost_sorted`, …).
    pub group: String,
    /// The keys.
    pub keys: Keys,
    /// Noise seed.
    pub gpu_seed: u64,
}

impl SortInput {
    /// Wrap keys as a named instance.
    pub fn new(name: impl Into<String>, group: impl Into<String>, keys: Keys) -> Self {
        let name = name.into();
        let gpu_seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, c| {
            (h ^ c as u64).wrapping_mul(0x100_0000_01b3)
        });
        Self {
            name,
            group: group.into(),
            keys,
            gpu_seed,
        }
    }
}

/// Key-workload categories.
pub const CATEGORIES: [&str; 5] = [
    "uniform",
    "reverse",
    "almost_sorted",
    "normal",
    "exponential",
];

/// Generate a key sequence of the given category and width.
pub fn generate(category: &str, n: usize, wide: bool, seed: u64, name: &str) -> SortInput {
    let mut rng = StdRng::seed_from_u64(seed);
    let raw: Vec<f64> = match category {
        "uniform" => (0..n).map(|_| rng.random::<f64>() * 1e6).collect(),
        "reverse" => {
            let mut v: Vec<f64> = (0..n).map(|_| rng.random::<f64>() * 1e6).collect();
            v.sort_by(|a, b| b.partial_cmp(a).unwrap());
            v
        }
        "almost_sorted" => {
            let mut v: Vec<f64> = (0..n).map(|_| rng.random::<f64>() * 1e6).collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            // Swap 20–25% of the keys (paper's recipe). Swap partners are
            // drawn from a bounded neighbourhood: "almost sorted" data in
            // practice (incremental updates, timestamps, resorted feeds)
            // has bounded displacement, which is precisely the structure
            // a locality sort exploits.
            let swaps = (n as f64 * rng.random_range(0.10..0.125)) as usize;
            for _ in 0..swaps {
                let i = rng.random_range(0..n);
                let d = rng.random_range(1..1024usize);
                let j = (i + d).min(n - 1);
                v.swap(i, j);
            }
            v
        }
        "normal" => {
            let d = Normal::new(0.0, 1.0).expect("valid normal");
            (0..n).map(|_| d.sample(&mut rng)).collect()
        }
        "exponential" => {
            let d = Exp::new(1.0).expect("valid exp");
            (0..n).map(|_| d.sample(&mut rng)).collect()
        }
        other => panic!("unknown sort category '{other}'"),
    };
    let keys = if wide {
        Keys::F64(raw)
    } else {
        Keys::F32(raw.into_iter().map(|v| v as f32).collect())
    };
    SortInput::new(name, category, keys)
}

/// Training set: 120 instances (paper: 60 sequences per key width).
pub fn sort_training_set(seed: u64) -> Vec<SortInput> {
    build_set("train", 60, 0, seed)
}

/// Test set: 600 instances (paper: 300 per key width, 100 per category —
/// uniform / reverse-sorted / almost-sorted).
pub fn sort_test_set(seed: u64) -> Vec<SortInput> {
    let mut out = Vec::with_capacity(600);
    for wide in [false, true] {
        let width = if wide { 64 } else { 32 };
        for (c, category) in ["uniform", "reverse", "almost_sorted"]
            .into_iter()
            .enumerate()
        {
            for i in 0..100 {
                let mut rng = StdRng::seed_from_u64(seed ^ ((width + c * 7 + i * 31) as u64) << 9);
                let n = rng.random_range(10_000..200_000);
                out.push(generate(
                    category,
                    n,
                    wide,
                    rng.random(),
                    &format!("test/{category}/{width}/{i}"),
                ));
            }
        }
    }
    out
}

/// Small train/test pair for unit and integration tests.
pub fn sort_small_sets(seed: u64) -> (Vec<SortInput>, Vec<SortInput>) {
    let make = |tag: &str, base: usize, per: usize| -> Vec<SortInput> {
        let mut out = Vec::new();
        for wide in [false, true] {
            let width = if wide { 64 } else { 32 };
            for category in ["uniform", "reverse", "almost_sorted"] {
                for i in 0..per {
                    let mut rng = StdRng::seed_from_u64(
                        seed ^ ((base + i * 13 + width) as u64) << 7 ^ h(category),
                    );
                    let n = rng.random_range(3_000..12_000);
                    out.push(generate(
                        category,
                        n,
                        wide,
                        rng.random(),
                        &format!("{tag}/{category}/{width}/{i}"),
                    ));
                }
            }
        }
        out
    };
    (make("train", 0, 3), make("test", 900, 4))
}

fn h(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |a, b| {
        (a ^ b as u64).wrapping_mul(0x100_0000_01b3)
    })
}

/// The paper's training mix: 60 sequences per width across the five
/// categories.
fn build_set(tag: &str, per_width: usize, idx_base: usize, seed: u64) -> Vec<SortInput> {
    let mut out = Vec::with_capacity(2 * per_width);
    for wide in [false, true] {
        let width = if wide { 64 } else { 32 };
        for i in 0..per_width {
            let category = CATEGORIES[i % CATEGORIES.len()];
            let mut rng =
                StdRng::seed_from_u64(seed ^ ((idx_base + i) as u64) << 8 ^ (width as u64));
            let n = rng.random_range(10_000..200_000);
            out.push(generate(
                category,
                n,
                wide,
                rng.random(),
                &format!("{tag}/{category}/{width}/{i}"),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_counting_matches_structure() {
        let sorted = Keys::F64(vec![1.0, 2.0, 3.0]);
        assert_eq!(sorted.ascending_runs(), 1);
        let reverse = Keys::F64(vec![3.0, 2.0, 1.0]);
        assert_eq!(reverse.ascending_runs(), 3);
        assert_eq!(Keys::F32(vec![]).ascending_runs(), 0);
    }

    #[test]
    fn almost_sorted_has_small_median_displacement() {
        let almost = generate("almost_sorted", 20_000, false, 3, "a");
        let random = generate("uniform", 20_000, false, 3, "u");
        assert!(almost.keys.median_displacement() < 10.0);
        assert!(random.keys.median_displacement() > 1000.0);
    }

    #[test]
    fn reverse_has_large_displacement_and_max_runs() {
        let rev = generate("reverse", 10_000, true, 5, "r");
        assert!(rev.keys.median_displacement() > 2000.0);
        assert_eq!(rev.keys.ascending_runs(), 10_000);
    }

    #[test]
    fn set_sizes_match_paper() {
        assert_eq!(sort_training_set(1).len(), 120);
        let test = sort_test_set(1);
        assert_eq!(test.len(), 600);
        let f32s = test.iter().filter(|i| i.keys.bits() == 32).count();
        assert_eq!(f32s, 300);
    }

    #[test]
    fn generators_deterministic() {
        let a = generate("uniform", 1000, true, 7, "x");
        let b = generate("uniform", 1000, true, 7, "x");
        assert_eq!(a.keys, b.keys);
    }
}
