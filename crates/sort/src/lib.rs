//! # nitro-sort — the Sort benchmark
//!
//! The paper's fifth benchmark (Figure 4): three sorting variants —
//! ModernGPU's Merge and Locality sorts and CUB's Radix sort — on 32- and
//! 64-bit floating-point keys. The paper's findings this crate
//! reproduces: Radix dominates 32-bit keys, Merge/Locality overtake it on
//! 64-bit keys, and Locality wins on almost-sorted sequences (§V-A).
//!
//! * [`keys`] — key containers, the `N` / `Nbits` / `NAscSeq` features and
//!   the uniform / reverse / almost-sorted / normal / exponential
//!   workload generators (120 training, 600 test instances — paper
//!   counts).
//! * [`variants`] — real sorting implementations with simulated costs and
//!   [`variants::build_code_variant`].

#![warn(missing_docs)]

pub mod keys;
pub mod variants;

pub use keys::{Keys, SortInput};
pub use variants::{build_code_variant, run_variant, Method};
