//! The three sorting code variants and their simulated costs.
//!
//! * **Radix Sort** (CUB): LSD radix over the bit-flipped IEEE keys —
//!   cost ∝ `passes × key_bytes`, so it is superb on 32-bit keys and
//!   loses ground on 64-bit ones (twice the passes *and* twice the bytes
//!   per pass), exactly the paper's observation.
//! * **Merge Sort** (ModernGPU): tile blocksort plus `log(N/tile)`
//!   oblivious merge passes.
//! * **Locality Sort** (ModernGPU): merge sort that detects already
//!   ordered tile boundaries and merges only the overlapping windows, so
//!   nearly-sorted inputs move almost no data — "for almost sorted
//!   sequences, Locality Sort performs best" (§V-A).
//!
//! All three really sort (tests verify the output); the data movement
//! each one charges to the simulated GPU is measured from the actual
//! execution.

use nitro_core::{CodeVariant, Context, FnFeature, FnVariant, Predicate};
use nitro_simt::{DeviceConfig, Gpu, Schedule};

use crate::keys::{Keys, SortInput};

/// Tile size for blocksort (one thread block's share).
const TILE: usize = 512;

/// Variant names in registration order.
pub const VARIANT_NAMES: [&str; 3] = ["Merge", "Locality", "Radix"];

/// Sorting method selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// ModernGPU-style merge sort.
    Merge,
    /// ModernGPU-style locality sort.
    Locality,
    /// CUB-style LSD radix sort.
    Radix,
}

/// Run one variant; returns the sorted keys and simulated nanoseconds.
pub fn run_variant(method: Method, input: &SortInput, cfg: &DeviceConfig) -> (Keys, f64) {
    let gpu = Gpu::with_seed(cfg.clone(), input.gpu_seed ^ method as u64);
    match (&input.keys, method) {
        (Keys::F32(v), m) => {
            let (sorted, ns) = sort_typed(v, 4, m, &gpu);
            (Keys::F32(sorted), ns)
        }
        (Keys::F64(v), m) => {
            let (sorted, ns) = sort_typed(v, 8, m, &gpu);
            (Keys::F64(sorted), ns)
        }
    }
}

/// Shared typed driver.
fn sort_typed<T>(keys: &[T], key_bytes: u64, method: Method, gpu: &Gpu) -> (Vec<T>, f64)
where
    T: Copy + PartialOrd + RadixKey,
{
    match method {
        Method::Merge => merge_sort(keys, key_bytes, gpu, false),
        Method::Locality => merge_sort(keys, key_bytes, gpu, true),
        Method::Radix => radix_sort(keys, key_bytes, gpu),
    }
}

/// Keys that can be converted to an order-preserving unsigned integer.
pub trait RadixKey {
    /// Order-preserving bit representation.
    fn to_bits_ordered(self) -> u64;
    /// Bits that participate in radix passes.
    fn radix_bits() -> u32;
}

impl RadixKey for f32 {
    fn to_bits_ordered(self) -> u64 {
        let b = self.to_bits();
        let flipped = if b & 0x8000_0000 != 0 {
            !b
        } else {
            b ^ 0x8000_0000
        };
        flipped as u64
    }
    fn radix_bits() -> u32 {
        32
    }
}

impl RadixKey for f64 {
    fn to_bits_ordered(self) -> u64 {
        let b = self.to_bits();
        if b & 0x8000_0000_0000_0000 != 0 {
            !b
        } else {
            b ^ 0x8000_0000_0000_0000
        }
    }
    fn radix_bits() -> u32 {
        64
    }
}

/// LSD radix sort with 8-bit digits over the order-preserving bits.
fn radix_sort<T: Copy + RadixKey>(keys: &[T], key_bytes: u64, gpu: &Gpu) -> (Vec<T>, f64) {
    let n = keys.len();
    let passes = (T::radix_bits() / 8) as usize;
    // Functional LSD radix on (bits, original index) pairs.
    let mut items: Vec<(u64, u32)> = keys
        .iter()
        .enumerate()
        .map(|(i, &k)| (k.to_bits_ordered(), i as u32))
        .collect();
    let mut buffer = vec![(0u64, 0u32); n];
    for p in 0..passes {
        let shift = 8 * p;
        let mut counts = [0usize; 257];
        for &(bits, _) in items.iter() {
            counts[((bits >> shift) & 0xFF) as usize + 1] += 1;
        }
        for d in 0..256 {
            counts[d + 1] += counts[d];
        }
        for &(bits, idx) in items.iter() {
            let d = ((bits >> shift) & 0xFF) as usize;
            buffer[counts[d]] = (bits, idx);
            counts[d] += 1;
        }
        std::mem::swap(&mut items, &mut buffer);
    }
    let sorted: Vec<T> = items.iter().map(|&(_, i)| keys[i as usize]).collect();

    // Cost: each pass streams the keys in and scatters them out (poorly
    // coalesced), plus digit histogram/scan work.
    let blocks = n.div_ceil(TILE).max(1);
    let stats = gpu.launch("radix_sort", blocks, Schedule::EvenShare, |b, ctx| {
        let s0 = b * TILE;
        let s1 = (s0 + TILE).min(n);
        if s0 >= s1 {
            return;
        }
        let tile = (s1 - s0) as f64;
        for _ in 0..passes {
            // Histogram read + rank read, then a poorly coalesced scatter.
            ctx.bulk_read(tile * key_bytes as f64 * 2.0, 1.0);
            ctx.bulk_write(tile * key_bytes as f64, 0.25);
            ctx.bulk_ops(tile, 1.0);
        }
    });
    (sorted, stats.elapsed_ns)
}

/// Tile blocksort + merge passes. With `locality`, tile-pair boundaries
/// that are already ordered skip their merge, and real merges only charge
/// the overlapping window.
fn merge_sort<T: Copy + PartialOrd>(
    keys: &[T],
    key_bytes: u64,
    gpu: &Gpu,
    locality: bool,
) -> (Vec<T>, f64) {
    let n = keys.len();
    let mut data: Vec<T> = keys.to_vec();

    // --- Blocksort: sort each tile; locality sort skips pre-sorted tiles.
    let mut presorted_tiles = 0usize;
    let n_tiles = n.div_ceil(TILE).max(1);
    for t in 0..n_tiles {
        let s0 = t * TILE;
        let s1 = (s0 + TILE).min(n);
        let tile = &mut data[s0..s1];
        if locality && tile.windows(2).all(|w| w[0] <= w[1]) {
            presorted_tiles += 1;
            continue;
        }
        tile.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    }

    // --- Merge passes, measuring movement.
    let mut width = TILE;
    let mut buffer: Vec<T> = Vec::with_capacity(n);
    let mut moved = 0u64; // elements actually shuffled by merges
    let mut checks = 0u64; // boundary probes
    let mut passes = 0u64;
    while width < n {
        passes += 1;
        let mut s0 = 0;
        while s0 < n {
            let mid = (s0 + width).min(n);
            let s1 = (s0 + 2 * width).min(n);
            if mid < s1 {
                checks += 1;
                let trivially_ordered = data[mid - 1] <= data[mid];
                if !(locality && trivially_ordered) {
                    // Overlap window: the only region a merge-path
                    // windowed merge has to touch.
                    let window = if locality {
                        let right_first = data[mid];
                        let left_last = data[mid - 1];
                        let lcut = data[s0..mid].partition_point(|v| *v <= right_first);
                        let rcut = data[mid..s1].partition_point(|v| *v < left_last);
                        ((mid - s0 - lcut) + rcut) as u64
                    } else {
                        (s1 - s0) as u64
                    };
                    moved += window;
                    // Functional merge (full, for simplicity — cost uses
                    // the window).
                    buffer.clear();
                    let (mut i, mut j) = (s0, mid);
                    while i < mid && j < s1 {
                        if data[i] <= data[j] {
                            buffer.push(data[i]);
                            i += 1;
                        } else {
                            buffer.push(data[j]);
                            j += 1;
                        }
                    }
                    buffer.extend_from_slice(&data[i..mid]);
                    buffer.extend_from_slice(&data[j..s1]);
                    data[s0..s1].copy_from_slice(&buffer);
                }
            }
            s0 = s1;
        }
        width *= 2;
    }

    // --- Cost accounting.
    let blocks = n.div_ceil(TILE).max(1);
    let sorted_tiles = n_tiles - presorted_tiles;
    let stats = gpu.launch(
        if locality {
            "locality_sort"
        } else {
            "merge_sort"
        },
        blocks,
        Schedule::EvenShare,
        |b, ctx| {
            // Spread the measured totals evenly over blocks.
            let share = |x: u64| x as f64 / blocks as f64;
            if b == 0 {
                // Per-pass boundary probing (tiny).
                ctx.bulk_ops(checks as f64 * 2.0, 1.0);
            }
            // Blocksort traffic: read + write each non-presorted tile.
            let tile_elems = share(sorted_tiles as u64 * TILE as u64);
            ctx.bulk_read(tile_elems * key_bytes as f64, 1.0);
            ctx.bulk_write(tile_elems * key_bytes as f64, 1.0);
            ctx.bulk_ops(tile_elems * 9.0, 1.0); // ~log2(TILE) compares
                                                 // Merge traffic: read + write every moved element, plus the
                                                 // stream of merge-path probes.
            let merged = share(moved);
            ctx.bulk_read(merged * key_bytes as f64, 0.9);
            ctx.bulk_write(merged * key_bytes as f64, 0.9);
            ctx.bulk_ops(merged * 2.0, 1.0);
            let _ = passes;
        },
    );
    (data, stats.elapsed_ns)
}

/// Assemble the Sort `code_variant`: 3 variants, 3 features (`N`,
/// `Nbits`, `NAscSeq` — Figure 4). Default: Merge (robust everywhere).
pub fn build_code_variant(ctx: &Context, cfg: &DeviceConfig) -> CodeVariant<SortInput> {
    let mut cv = CodeVariant::new("sort", ctx);
    for (method, name) in [
        (Method::Merge, "Merge"),
        (Method::Locality, "Locality"),
        (Method::Radix, "Radix"),
    ] {
        let cfg = cfg.clone();
        cv.add_variant(FnVariant::new(name, move |inp: &SortInput| {
            run_variant(method, inp, &cfg).1
        }));
    }
    cv.set_default(0);

    cv.add_input_feature(FnFeature::with_cost(
        "N",
        |i: &SortInput| i.keys.len() as f64,
        |_| 8.0,
    ));
    cv.add_input_feature(FnFeature::with_cost(
        "Nbits",
        |i: &SortInput| i.keys.bits() as f64,
        |_| 8.0,
    ));
    cv.add_input_feature(FnFeature::with_cost(
        "NAscSeq",
        |i: &SortInput| i.keys.ascending_runs() as f64,
        |i: &SortInput| 8.0 + i.keys.len() as f64 * 0.8,
    ));

    // Radix is only allowed on 32-bit keys (feature 1 = Nbits): on
    // 64-bit keys it pays twice the passes and twice the bytes per pass
    // and the merge family always wins (§V-A), so this declarative
    // guard never changes a label — it encodes the cost model's own
    // conclusion where the whole-configuration analyses can see it.
    cv.add_predicate_constraint(2, "radix_32bit", Predicate::le(1, 32.0))
        .expect("Radix is registered");
    cv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::generate;

    fn cfg() -> DeviceConfig {
        DeviceConfig::fermi_c2050().noiseless()
    }

    fn assert_sorted(k: &Keys) {
        assert!(k.is_sorted(), "output not sorted");
    }

    #[test]
    fn all_variants_sort_correctly() {
        for wide in [false, true] {
            for category in [
                "uniform",
                "reverse",
                "almost_sorted",
                "normal",
                "exponential",
            ] {
                let inp = generate(category, 5_000, wide, 11, "t");
                for m in [Method::Merge, Method::Locality, Method::Radix] {
                    let (sorted, ns) = run_variant(m, &inp, &cfg());
                    assert_sorted(&sorted);
                    assert_eq!(sorted.len(), 5_000);
                    assert!(ns > 0.0);
                }
            }
        }
    }

    #[test]
    fn radix_handles_negative_and_special_floats() {
        let keys = Keys::F64(vec![3.5, -0.0, -7.25, 0.0, 1e300, -1e300, 42.0]);
        let inp = SortInput::new("neg", "misc", keys);
        let (sorted, _) = run_variant(Method::Radix, &inp, &cfg());
        if let Keys::F64(v) = sorted {
            assert_eq!(v[0], -1e300);
            assert_eq!(*v.last().unwrap(), 1e300);
            assert!(v.windows(2).all(|w| w[0] <= w[1]));
        } else {
            panic!("wrong key type");
        }
    }

    #[test]
    fn radix_wins_on_32bit_random() {
        let inp = generate("uniform", 100_000, false, 5, "u32");
        let (_, radix) = run_variant(Method::Radix, &inp, &cfg());
        let (_, merge) = run_variant(Method::Merge, &inp, &cfg());
        assert!(radix < merge, "radix {radix} vs merge {merge} on 32-bit");
    }

    #[test]
    fn merge_family_wins_on_64bit_random() {
        let inp = generate("uniform", 100_000, true, 5, "u64");
        let (_, radix) = run_variant(Method::Radix, &inp, &cfg());
        let (_, merge) = run_variant(Method::Merge, &inp, &cfg());
        assert!(merge < radix, "merge {merge} vs radix {radix} on 64-bit");
    }

    #[test]
    fn locality_wins_on_almost_sorted() {
        let inp = generate("almost_sorted", 100_000, true, 7, "a");
        let (_, locality) = run_variant(Method::Locality, &inp, &cfg());
        let (_, merge) = run_variant(Method::Merge, &inp, &cfg());
        let (_, radix) = run_variant(Method::Radix, &inp, &cfg());
        assert!(locality < merge, "locality {locality} vs merge {merge}");
        assert!(locality < radix, "locality {locality} vs radix {radix}");
    }

    #[test]
    fn locality_matches_merge_on_random_data() {
        let inp = generate("uniform", 50_000, true, 9, "r");
        let (_, locality) = run_variant(Method::Locality, &inp, &cfg());
        let (_, merge) = run_variant(Method::Merge, &inp, &cfg());
        // Window accounting on random data covers nearly everything.
        assert!(
            (locality / merge) < 1.25,
            "locality {locality} vs merge {merge}"
        );
    }

    #[test]
    fn code_variant_matches_paper_inventory() {
        let ctx = Context::new();
        let cv = build_code_variant(&ctx, &cfg());
        assert_eq!(cv.n_variants(), 3);
        assert_eq!(cv.feature_names(), vec!["N", "Nbits", "NAscSeq"]);
    }
}
