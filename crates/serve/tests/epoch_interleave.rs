//! Interleaving coverage for the epoch hot-swap.
//!
//! Two layers, substituting for loom (not vendored):
//!
//! 1. An **exhaustive model checker** over the EpochCell protocol: every
//!    interleaving of two readers (pin → load → count → unpin → use →
//!    release) and one writer (swap → drain → drop-ref) is enumerated
//!    against a model tracking refcounts and freed flags. The checker
//!    proves no reader ever touches a freed epoch and every epoch is
//!    freed exactly once — and, as a self-test, that *removing* the
//!    writer's stripe drain produces exactly the use-after-retire the
//!    real implementation must not have.
//! 2. A **threaded stress test** on the real `EpochCell`, with payloads
//!    that (a) carry a torn-read-detecting invariant and (b) flip a drop
//!    counter, proving old epochs retire exactly once and only when
//!    quiescent.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use nitro_serve::EpochCell;

// ---------------------------------------------------------------------
// Layer 1: exhaustive protocol model checker.
// ---------------------------------------------------------------------

const READERS: usize = 2;
/// Reader program counters.
const R_PIN: usize = 0;
const R_LOAD: usize = 1;
const R_COUNT: usize = 2;
const R_UNPIN: usize = 3;
const R_USE: usize = 4;
const R_RELEASE: usize = 5;
const R_DONE: usize = 6;
/// Writer program counters.
const W_SWAP: usize = 0;
const W_DRAIN: usize = 1;
const W_DROP_REF: usize = 2;
const W_DONE: usize = 3;

/// The abstract state of the protocol: the cell, both epochs' refcount
/// bookkeeping, and every thread's program counter.
#[derive(Clone, PartialEq, Eq, Hash)]
struct State {
    /// Which epoch the cell points at (0 = old, 1 = new).
    ptr: usize,
    /// Reader pins outstanding (all readers share one stripe — the
    /// most adversarial mapping for the writer's drain).
    stripe: u32,
    /// Strong counts per epoch.
    rc: [i32; 2],
    /// Whether each epoch has been freed.
    freed: [bool; 2],
    /// Per-reader (program counter, loaded epoch).
    readers: [(usize, usize); READERS],
    /// Writer program counter.
    writer: usize,
}

impl State {
    fn initial() -> Self {
        State {
            ptr: 0,
            stripe: 0,
            rc: [1, 0], // the cell's own reference to epoch 0
            freed: [false, false],
            readers: [(R_PIN, usize::MAX); READERS],
            writer: W_SWAP,
        }
    }

    fn done(&self) -> bool {
        self.writer == W_DONE && self.readers.iter().all(|&(pc, _)| pc == R_DONE)
    }
}

/// Drop one strong count; freeing is the transition to zero. Freeing a
/// second time (or going negative) is a checker violation.
fn release(state: &mut State, epoch: usize) -> Result<(), String> {
    if state.freed[epoch] {
        return Err(format!("double free of epoch {epoch}"));
    }
    state.rc[epoch] -= 1;
    if state.rc[epoch] < 0 {
        return Err(format!("negative refcount on epoch {epoch}"));
    }
    if state.rc[epoch] == 0 {
        state.freed[epoch] = true;
    }
    Ok(())
}

/// Apply reader `r`'s next step. `None` when the reader is done.
fn step_reader(state: &State, r: usize) -> Option<Result<State, String>> {
    let (pc, loaded) = state.readers[r];
    let mut next = state.clone();
    let result = match pc {
        R_PIN => {
            next.stripe += 1;
            Ok(())
        }
        R_LOAD => {
            next.readers[r].1 = state.ptr;
            Ok(())
        }
        R_COUNT => {
            // The increment `Arc::increment_strong_count` performs.
            // Touching a freed epoch here is the use-after-retire the
            // drain exists to prevent.
            if state.freed[loaded] {
                Err(format!("reader {r} incremented freed epoch {loaded}"))
            } else {
                next.rc[loaded] += 1;
                Ok(())
            }
        }
        R_UNPIN => {
            next.stripe -= 1;
            Ok(())
        }
        R_USE => {
            if state.freed[loaded] {
                Err(format!("reader {r} used freed epoch {loaded}"))
            } else {
                Ok(())
            }
        }
        R_RELEASE => release(&mut next, loaded),
        _ => return None,
    };
    next.readers[r].0 = pc + 1;
    Some(result.map(|()| next))
}

/// Apply the writer's next step. `None` when done or (at `W_DRAIN`)
/// blocked on outstanding pins. `with_drain: false` models the buggy
/// protocol that skips the quiescence wait.
fn step_writer(state: &State, with_drain: bool) -> Option<Result<State, String>> {
    let mut next = state.clone();
    match state.writer {
        W_SWAP => {
            next.ptr = 1;
            next.rc[1] = 1; // the cell's reference to the new epoch
        }
        W_DRAIN => {
            if with_drain && state.stripe != 0 {
                return None; // blocked until readers unpin
            }
        }
        W_DROP_REF => {
            // The writer releases the cell's reference to the old epoch.
            if let Err(e) = release(&mut next, 0) {
                return Some(Err(e));
            }
        }
        _ => return None,
    }
    next.writer = state.writer + 1;
    Some(Ok(next))
}

/// DFS over every interleaving. Returns the number of distinct states
/// visited, or the first violation found.
fn explore(with_drain: bool) -> Result<usize, String> {
    let mut seen: HashSet<State> = HashSet::new();
    let mut stack = vec![State::initial()];
    while let Some(state) = stack.pop() {
        if !seen.insert(state.clone()) {
            continue;
        }
        let mut enabled = 0;
        for r in 0..READERS {
            if let Some(result) = step_reader(&state, r) {
                enabled += 1;
                stack.push(result?);
            }
        }
        if let Some(result) = step_writer(&state, with_drain) {
            enabled += 1;
            stack.push(result?);
        }
        if enabled == 0 {
            // Terminal state: no thread can move. Must mean everyone
            // finished (the drain can only block while a reader still
            // has an unpin step ahead of it, so there is no deadlock),
            // with the old epoch freed exactly once and the new epoch
            // alive in the cell.
            if !state.done() {
                return Err("deadlock: no step enabled before completion".into());
            }
            if !state.freed[0] || state.rc[0] != 0 {
                return Err(format!(
                    "old epoch leaked: rc {} freed {}",
                    state.rc[0], state.freed[0]
                ));
            }
            if state.freed[1] || state.rc[1] != 1 {
                return Err(format!(
                    "new epoch must survive in the cell: rc {} freed {}",
                    state.rc[1], state.freed[1]
                ));
            }
        }
    }
    Ok(seen.len())
}

#[test]
fn every_interleaving_is_free_of_torn_reads_and_use_after_retire() {
    let states = explore(true).expect("the drained protocol is sound");
    // Sanity: the model actually explored a nontrivial interleaving
    // space (2 readers × 6 steps, writer × 3 steps ⇒ ~400 distinct
    // states; a broken enumerator would visit a handful).
    assert!(states > 300, "only {states} states explored");
}

#[test]
fn removing_the_drain_is_caught_as_use_after_retire() {
    let violation = explore(false).expect_err("drainless protocol must be unsound");
    assert!(
        violation.contains("freed epoch"),
        "expected a use-after-retire, got: {violation}"
    );
}

// ---------------------------------------------------------------------
// Layer 2: threaded stress on the real implementation.
// ---------------------------------------------------------------------

/// Payload with a torn-read tripwire (`check` must always be the
/// bitwise complement of `value`) and a drop-side effect.
struct Payload {
    value: u64,
    check: u64,
    alive: AtomicBool,
    drops: Arc<AtomicU64>,
}

impl Payload {
    fn new(value: u64, drops: Arc<AtomicU64>) -> Self {
        Payload {
            value,
            check: !value,
            alive: AtomicBool::new(true),
            drops,
        }
    }
}

impl Drop for Payload {
    fn drop(&mut self) {
        assert!(
            self.alive.swap(false, Ordering::SeqCst),
            "payload dropped twice"
        );
        self.drops.fetch_add(1, Ordering::SeqCst);
    }
}

#[test]
fn hot_swap_under_reader_churn_never_tears_and_retires_exactly_once() {
    const PUBLISHES: u64 = 200;
    const READER_THREADS: usize = 4;
    let drops = Arc::new(AtomicU64::new(0));
    let cell = Arc::new(EpochCell::new(Arc::new(Payload::new(0, drops.clone()))));
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        for _ in 0..READER_THREADS {
            let cell = cell.clone();
            let stop = stop.clone();
            s.spawn(move || {
                let mut last_seen = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let p = cell.load();
                    // Use-after-retire tripwire: a freed payload would
                    // have alive == false (and miri would flag the read).
                    assert!(p.alive.load(Ordering::SeqCst), "read a retired epoch");
                    // Torn-read tripwire: value/check are written
                    // together before publish; a reader must never see
                    // a mix of two epochs.
                    assert_eq!(p.check, !p.value, "torn read across epochs");
                    // Publications are monotone for any single reader.
                    assert!(p.value >= last_seen, "epoch went backwards");
                    last_seen = p.value;
                }
            });
        }
        // Writer: publish on the main test thread.
        for v in 1..=PUBLISHES {
            cell.publish(Arc::new(Payload::new(v, drops.clone())));
        }
        stop.store(true, Ordering::SeqCst);
    });

    // All epochs but the live one have retired, each exactly once.
    assert_eq!(drops.load(Ordering::SeqCst), PUBLISHES);
    assert_eq!(cell.load().value, PUBLISHES);
    assert_eq!(cell.epoch(), PUBLISHES);
    drop(cell);
    assert_eq!(
        drops.load(Ordering::SeqCst),
        PUBLISHES + 1,
        "dropping the cell retires the final epoch"
    );
}
