//! Self-healing tests: shard death and restart, poison-pill
//! quarantine, restart-budget retirement, wedged-worker replacement,
//! and the legacy (unsupervised) panic path — all under a manual
//! clock, so backoff and staleness arithmetic is deterministic. The
//! supervisor polls on wall time but *decides* on serve-clock time,
//! which is what makes these tests possible: a frozen manual clock
//! freezes restart backoff until the test advances the hand.

use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use nitro_core::{CodeVariant, Context, FnFeature, FnVariant, Priority, RequestMeta, TenantId};
use nitro_guard::GuardPolicy;
use nitro_pulse::PulseRegistry;
use nitro_serve::{
    Rejection, ServeClock, ServeConfig, ServeFront, ServeOutcome, ShardState, SupervisorConfig,
};

/// A registration whose *feature evaluation* panics on negative input.
/// The guard only catches variant-body panics, so a grenade input blows
/// straight through to the worker's backstop — the deterministic way to
/// kill a shard.
fn grenade_cv(ctx: &Context, name: &str) -> CodeVariant<f64> {
    let mut cv = CodeVariant::new(name, ctx);
    cv.add_variant(FnVariant::new("only", |&x: &f64| x + 1.0));
    cv.set_default(0);
    cv.add_input_feature(FnFeature::new("x", |&x: &f64| {
        if x < 0.0 {
            panic!("grenade: feature evaluation blew up on {x}");
        }
        x
    }));
    cv
}

fn supervised_config(shards: usize, sup: SupervisorConfig) -> ServeConfig {
    ServeConfig {
        shards,
        queue_capacity: Some(64),
        tenant_slots: 16,
        tenant_rate_per_s: 1_000_000.0,
        tenant_burst: 10_000,
        hopeless_shedding: false,
        supervision: Some(sup),
        ..ServeConfig::default()
    }
}

fn meta(clock: &ServeClock, tenant: u32) -> RequestMeta {
    RequestMeta::new(
        TenantId(tenant),
        Priority::Interactive,
        clock.now_ns(),
        u64::MAX / 2,
    )
}

/// Spin (wall time) until `f` holds; the supervisor ticks every 1ms.
fn wait_until(what: &str, f: impl Fn() -> bool) {
    for _ in 0..5_000 {
        if f() {
            return;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    panic!("timed out waiting for {what}");
}

#[test]
fn dead_shard_restarts_and_recovers() {
    let (clock, hand) = ServeClock::manual();
    let front = ServeFront::start(
        supervised_config(1, SupervisorConfig::default()),
        GuardPolicy::default(),
        clock.clone(),
        None,
        |_| grenade_cv(&Context::new(), "heal"),
    )
    .unwrap();

    // The grenade kills the only shard. Its job is parked, and with no
    // live shard to take it (the restart is in backoff on a frozen
    // clock), re-placement sheds it as failover.
    let grenade = front.submit(-1.0, meta(&clock, 3)).unwrap();
    let grenade_lineage = grenade.lineage();
    match grenade.wait() {
        ServeOutcome::ShedFailover { from_shard } => assert_eq!(from_shard, 0),
        other => panic!("expected a failover shed, got {other:?}"),
    }
    assert_eq!(front.shard_states(), vec![ShardState::Dead]);

    // Advance past the 1ms restart backoff: the supervisor revives the
    // shard and it serves again.
    hand.fetch_add(2_000_000, Ordering::SeqCst);
    wait_until("shard 0 to restart", || {
        front.shard_states()[0] == ShardState::Up
    });
    let ok = front.submit(1.0, meta(&clock, 3)).unwrap();
    assert!(matches!(ok.wait(), ServeOutcome::Served { .. }));

    let summary = front.shutdown();
    assert_eq!(summary.escaped_panics, 1);
    assert_eq!(summary.shard_deaths, 1);
    assert_eq!(summary.shard_restarts, 1);
    assert_eq!(summary.shards_retired, 0);
    assert_eq!(summary.poison_quarantined, 0);
    assert_eq!(summary.workers_failed, 0);
    assert!(
        summary.accounting.is_conserved(),
        "{:?}",
        summary.accounting.violations()
    );
    assert_eq!(summary.accounting.admitted, 2);
    assert_eq!(summary.accounting.served, 1);
    assert_eq!(summary.accounting.shed_failover, 1);
    // The panic is attributed to the request that caused it.
    assert_eq!(summary.panic_records.len(), 1);
    assert_eq!(summary.panic_records[0].lineage, grenade_lineage);
    assert_eq!(summary.panic_records[0].tenant, 3);
    assert!(summary.panic_records[0].detail.contains("grenade"));
    assert!(
        summary.diagnostics.iter().any(|d| d.code == "NITRO110"),
        "restart must be audited: {:?}",
        summary.diagnostics
    );
}

#[test]
fn poison_pill_is_quarantined_after_two_kills() {
    let (clock, _hand) = ServeClock::manual();
    let front = ServeFront::start(
        supervised_config(2, SupervisorConfig::default()),
        GuardPolicy::default(),
        clock.clone(),
        None,
        |_| grenade_cv(&Context::new(), "poison"),
    )
    .unwrap();

    // Kill one shard; the supervisor re-places the request onto the
    // surviving shard, which it also kills — second strike, quarantine.
    let poison = front.submit(-1.0, meta(&clock, 9)).unwrap();
    let lineage = poison.lineage();
    match poison.wait() {
        ServeOutcome::Quarantined { kills } => assert_eq!(kills, 2),
        other => panic!("expected quarantine, got {other:?}"),
    }

    let summary = front.shutdown();
    assert_eq!(summary.escaped_panics, 2);
    assert_eq!(summary.shard_deaths, 2);
    assert_eq!(summary.poison_quarantined, 1);
    assert_eq!(summary.workers_failed, 0);
    assert!(
        summary.accounting.is_conserved(),
        "{:?}",
        summary.accounting.violations()
    );
    assert_eq!(summary.accounting.admitted, 1);
    assert_eq!(summary.accounting.quarantined, 1);
    // Both kills trace back to the same lineage, on different shards.
    assert_eq!(summary.panic_records.len(), 2);
    assert!(summary.panic_records.iter().all(|r| r.lineage == lineage));
    assert_ne!(
        summary.panic_records[0].shard,
        summary.panic_records[1].shard
    );
    assert!(
        summary.diagnostics.iter().any(|d| d.code == "NITRO112"),
        "quarantine must be audited: {:?}",
        summary.diagnostics
    );
}

#[test]
fn restart_budget_exhausts_into_retirement() {
    let (clock, hand) = ServeClock::manual();
    let sup = SupervisorConfig {
        restart_budget: 1,
        poison_kill_threshold: 10, // never quarantine in this test
        ..SupervisorConfig::default()
    };
    let front = ServeFront::start(
        supervised_config(1, sup),
        GuardPolicy::default(),
        clock.clone(),
        None,
        |_| grenade_cv(&Context::new(), "retire"),
    )
    .unwrap();

    // First kill: consumes the whole restart budget.
    let g1 = front.submit(-1.0, meta(&clock, 1)).unwrap();
    assert!(matches!(g1.wait(), ServeOutcome::ShedFailover { .. }));
    hand.fetch_add(2_000_000, Ordering::SeqCst);
    wait_until("the one budgeted restart", || {
        front.shard_states()[0] == ShardState::Up
    });

    // Second kill: no budget left — the shard retires permanently.
    let g2 = front.submit(-1.0, meta(&clock, 1)).unwrap();
    assert!(matches!(g2.wait(), ServeOutcome::ShedFailover { .. }));
    wait_until("retirement", || {
        front.shard_states()[0] == ShardState::Retired
    });
    assert!(matches!(
        front.submit(1.0, meta(&clock, 1)),
        Err(Rejection::NoLiveShards)
    ));

    let summary = front.shutdown();
    assert_eq!(summary.shard_deaths, 2);
    assert_eq!(summary.shard_restarts, 1);
    assert_eq!(summary.shards_retired, 1);
    assert_eq!(summary.workers_failed, 0);
    assert!(
        summary.accounting.is_conserved(),
        "{:?}",
        summary.accounting.violations()
    );
    assert_eq!(summary.accounting.admitted, 2);
    assert_eq!(summary.accounting.shed_failover, 2);
    assert!(
        summary.diagnostics.iter().any(|d| d.code == "NITRO111"),
        "retirement must be audited: {:?}",
        summary.diagnostics
    );
}

#[test]
fn wedged_shard_is_fenced_and_replaced() {
    struct Gate {
        state: Mutex<(bool, bool)>,
        cv: Condvar,
    }
    impl Gate {
        fn block(&self) {
            let mut g = self.state.lock().unwrap();
            g.0 = true;
            self.cv.notify_all();
            while !g.1 {
                g = self.cv.wait(g).unwrap();
            }
        }
        fn wait_entered(&self) {
            let mut g = self.state.lock().unwrap();
            while !g.0 {
                g = self.cv.wait(g).unwrap();
            }
        }
        fn release(&self) {
            let mut g = self.state.lock().unwrap();
            g.1 = true;
            self.cv.notify_all();
        }
    }
    let gate = Arc::new(Gate {
        state: Mutex::new((false, false)),
        cv: Condvar::new(),
    });

    let registry = PulseRegistry::new();
    let (clock, hand) = ServeClock::manual();
    let sup = SupervisorConfig {
        heartbeat_stale_ns: 1_000,
        ..SupervisorConfig::default()
    };
    let front = ServeFront::start(
        supervised_config(1, sup),
        GuardPolicy::default(),
        clock.clone(),
        Some(&registry),
        {
            let gate = gate.clone();
            move |_| {
                let mut cv = CodeVariant::new("wedge", &Context::new());
                let gate = gate.clone();
                cv.add_variant(FnVariant::new("only", move |&x: &f64| {
                    if x < 0.0 {
                        gate.block();
                    }
                    x
                }));
                cv.set_default(0);
                cv.add_input_feature(FnFeature::new("x", |&x: &f64| x));
                cv
            }
        },
    )
    .unwrap();

    // Wedge the worker inside a dispatch, then advance the serve clock
    // far past the staleness bound: the supervisor fences the zombie
    // and spawns a replacement on the same queue.
    let blocker = front.submit(-1.0, meta(&clock, 5)).unwrap();
    gate.wait_entered();
    hand.fetch_add(1_000_000, Ordering::SeqCst);
    wait_until("the wedged worker to be replaced", || {
        registry.counter_value("serve.wedge.shard_restarts") == Some(1)
    });
    assert_eq!(front.shard_states(), vec![ShardState::Up]);

    // The replacement serves fresh traffic while the zombie hangs.
    let fresh = front.submit(1.0, meta(&clock, 5)).unwrap();
    assert!(matches!(fresh.wait(), ServeOutcome::Served { .. }));

    // Unwedge the zombie: it finishes its one in-flight dispatch (the
    // blocker still resolves — exactly once), notices its generation is
    // stale, and exits without touching the queue again.
    gate.release();
    assert!(matches!(blocker.wait(), ServeOutcome::Served { .. }));

    let summary = front.shutdown();
    assert_eq!(summary.escaped_panics, 0);
    assert_eq!(summary.shard_deaths, 0);
    assert_eq!(summary.shard_restarts, 1);
    assert_eq!(summary.workers_failed, 0);
    assert!(
        summary.accounting.is_conserved(),
        "{:?}",
        summary.accounting.violations()
    );
    assert_eq!(summary.accounting.admitted, 2);
    assert_eq!(summary.accounting.served, 2);
    assert!(
        summary.diagnostics.iter().any(|d| d.code == "NITRO110"),
        "wedge replacement must be audited: {:?}",
        summary.diagnostics
    );
}

#[test]
fn legacy_mode_fails_the_request_in_place_with_identity() {
    let (clock, _hand) = ServeClock::manual();
    let config = ServeConfig {
        supervision: None,
        ..supervised_config(1, SupervisorConfig::default())
    };
    let front = ServeFront::start(config, GuardPolicy::default(), clock.clone(), None, |_| {
        grenade_cv(&Context::new(), "legacy")
    })
    .unwrap();

    // Unsupervised: the worker absorbs the escaped panic, fails the
    // request with its identity attached, and keeps serving.
    let grenade = front.submit(-1.0, meta(&clock, 7)).unwrap();
    let lineage = grenade.lineage();
    match grenade.wait() {
        ServeOutcome::Failed { error } => {
            assert!(error.contains(&format!("lineage {lineage}")), "{error}");
            assert!(error.contains("tenant 7"), "{error}");
        }
        other => panic!("expected an attributed failure, got {other:?}"),
    }
    let ok = front.submit(1.0, meta(&clock, 7)).unwrap();
    assert!(matches!(ok.wait(), ServeOutcome::Served { .. }));

    let summary = front.shutdown();
    assert_eq!(summary.escaped_panics, 1);
    assert_eq!(summary.workers_joined, 1);
    assert_eq!(summary.workers_failed, 0);
    assert_eq!(summary.shard_deaths, 0);
    assert_eq!(summary.shard_restarts, 0);
    assert!(
        summary.accounting.is_conserved(),
        "{:?}",
        summary.accounting.violations()
    );
    assert_eq!(summary.panic_records.len(), 1);
    assert_eq!(summary.panic_records[0].lineage, lineage);
}
