//! Property: under a randomized overload script, every admitted
//! request either completes within its deadline or is shed *before*
//! dispatch — work is never spent on a request that cannot make it,
//! and a deadline is never violated silently.
//!
//! Determinism: the front runs on a manual clock and a single shard
//! whose worker is parked inside a gated dispatch for the whole
//! script, so queue depth at each submission — and therefore every
//! admission decision — is exactly predictable, and every queued
//! request is dequeued at one known timestamp (the clock's final
//! value). The property checks the *exact* expected outcome of every
//! submission, not just an envelope.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use nitro_core::{CodeVariant, Context, FnFeature, FnVariant, Priority, RequestMeta, TenantId};
use nitro_guard::GuardPolicy;
use nitro_serve::{
    admission_watermark, Rejection, ServeClock, ServeConfig, ServeFront, ServeOutcome,
};
use proptest::prelude::*;

const CAPACITY: usize = 8;

struct Gate {
    state: Mutex<(bool, bool)>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Arc<Self> {
        Arc::new(Gate {
            state: Mutex::new((false, false)),
            cv: Condvar::new(),
        })
    }
    fn block(&self) {
        let mut g = self.state.lock().unwrap();
        g.0 = true;
        self.cv.notify_all();
        while !g.1 {
            g = self.cv.wait(g).unwrap();
        }
    }
    fn wait_entered(&self) {
        let mut g = self.state.lock().unwrap();
        while !g.0 {
            g = self.cv.wait(g).unwrap();
        }
    }
    fn release(&self) {
        let mut g = self.state.lock().unwrap();
        g.1 = true;
        self.cv.notify_all();
    }
}

fn priority_from(idx: u32) -> Priority {
    match idx % 3 {
        0 => Priority::Interactive,
        1 => Priority::Standard,
        _ => Priority::Batch,
    }
}

proptest! {
    /// One op = (clock advance, tenant, priority, deadline budget).
    /// The script runs against a worker wedged open by a blocker
    /// request, then the gate opens and every ticket must resolve to
    /// its precomputed outcome.
    #[test]
    fn admitted_requests_meet_deadlines_or_shed_before_dispatch(
        script in prop::collection::vec(
            (0u64..2_000, 0u32..4, 0u32..3, 1u64..3_000),
            1..24,
        )
    ) {
        let runs = Arc::new(AtomicU64::new(0));
        let gate = Gate::new();
        let (clock, hand) = ServeClock::manual();
        let config = ServeConfig {
            shards: 1,
            queue_capacity: Some(CAPACITY),
            tenant_slots: 16,
            tenant_rate_per_s: 1_000_000.0,
            tenant_burst: 10_000, // tenants never throttle in this script
            hopeless_shedding: false,
            ..ServeConfig::default()
        };
        let factory_runs = runs.clone();
        let factory_gate = gate.clone();
        let front = ServeFront::start(
            config,
            GuardPolicy::default(),
            clock.clone(),
            None,
            move |_| {
                let mut cv = CodeVariant::new("overload", &Context::new());
                let runs = factory_runs.clone();
                let gate = factory_gate.clone();
                cv.add_variant(FnVariant::new("only", move |&x: &f64| {
                    runs.fetch_add(1, Ordering::SeqCst);
                    if x < 0.0 {
                        gate.block();
                    }
                    x
                }));
                cv.set_default(0);
                cv.add_input_feature(FnFeature::new("x", |&x: &f64| x));
                cv
            },
        ).unwrap();

        // Wedge the single worker open so the script owns the queue.
        let blocker = front
            .submit(-1.0, RequestMeta::new(
                TenantId(99), Priority::Interactive, clock.now_ns(), u64::MAX / 2,
            ))
            .unwrap();
        gate.wait_entered();

        // Replay the script, precomputing each submission's fate.
        let mut queued = Vec::new(); // (ticket, expires_ns)
        for &(advance, tenant, prio_idx, budget) in &script {
            hand.fetch_add(advance, Ordering::SeqCst);
            let now = clock.now_ns();
            let priority = priority_from(prio_idx);
            let meta = RequestMeta::new(TenantId(tenant), priority, now, budget);
            let over_watermark =
                queued.len() >= admission_watermark(CAPACITY, priority, 0);
            match front.submit(1.0, meta) {
                Ok(ticket) => {
                    prop_assert!(!over_watermark, "should have been rejected");
                    queued.push((ticket, meta.deadline.expires_ns));
                }
                Err(Rejection::QueueFull { depth, .. }) => {
                    prop_assert!(over_watermark, "rejected below watermark");
                    prop_assert_eq!(depth, queued.len());
                }
                Err(other) => {
                    return Err(TestCaseError::fail(format!(
                        "only queue-full rejections are possible here, got {other:?}"
                    )));
                }
            }
        }

        // Open the gate: the worker drains everything at time `fin`.
        let fin = clock.now_ns();
        gate.release();
        prop_assert!(matches!(blocker.wait(), ServeOutcome::Served { .. }));

        let mut served = 0u64;
        for (ticket, expires_ns) in queued {
            match ticket.wait() {
                ServeOutcome::Served { deadline_met, .. } => {
                    prop_assert!(deadline_met, "a violated deadline was served");
                    prop_assert!(fin < expires_ns, "should have been shed at {fin}");
                    served += 1;
                }
                ServeOutcome::ShedExpired { .. } => {
                    prop_assert!(fin >= expires_ns, "live request was shed");
                }
                other => {
                    return Err(TestCaseError::fail(format!(
                        "unexpected outcome {other:?}"
                    )));
                }
            }
        }
        front.shutdown();

        // Shed and rejected requests never cost variant work.
        prop_assert_eq!(runs.load(Ordering::SeqCst), served + 1);
    }
}
