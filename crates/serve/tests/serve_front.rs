//! End-to-end tests for the serving front door: admission, shedding,
//! degradation, hot-swap, and SLO-driven tightening — all under a
//! manual clock (plus one wall-clock smoke test), so every deadline
//! decision in here is deterministic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use nitro_core::{CodeVariant, Context, FnFeature, FnVariant, Priority, RequestMeta, TenantId};
use nitro_guard::GuardPolicy;
use nitro_ml::{ClassifierConfig, Dataset, TrainedModel};
use nitro_pulse::{AlertKind, AlertSeverity, PulseAlert, PulseRegistry};
use nitro_serve::{Rejection, ServeClock, ServeConfig, ServeFront, ServeOutcome};

/// A gate a variant can block on, so tests can hold a worker mid-
/// dispatch and deterministically pile work up behind it.
struct Gate {
    state: Mutex<(bool, bool)>, // (worker entered, test released)
    cv: Condvar,
}

impl Gate {
    fn new() -> Arc<Self> {
        Arc::new(Gate {
            state: Mutex::new((false, false)),
            cv: Condvar::new(),
        })
    }

    /// Called from inside the variant: announce entry, wait for release.
    fn block(&self) {
        let mut g = self.state.lock().unwrap();
        g.0 = true;
        self.cv.notify_all();
        while !g.1 {
            g = self.cv.wait(g).unwrap();
        }
    }

    /// Test side: wait until the worker is parked inside the variant.
    fn wait_entered(&self) {
        let mut g = self.state.lock().unwrap();
        while !g.0 {
            g = self.cv.wait(g).unwrap();
        }
    }

    /// Test side: let the worker finish the blocked dispatch.
    fn release(&self) {
        let mut g = self.state.lock().unwrap();
        g.1 = true;
        self.cv.notify_all();
    }
}

/// Two-variant toy registration. Every execution bumps `runs` — the
/// tests' proof that shed requests never cost variant work. A negative
/// input parks the worker on `gate` until the test releases it.
fn toy_cv(ctx: &Context, runs: Arc<AtomicU64>, gate: Option<Arc<Gate>>) -> CodeVariant<f64> {
    let mut cv = CodeVariant::new("toy", ctx);
    {
        let runs = runs.clone();
        let gate = gate.clone();
        cv.add_variant(FnVariant::new("small", move |&x: &f64| {
            runs.fetch_add(1, Ordering::SeqCst);
            if x < 0.0 {
                if let Some(g) = &gate {
                    g.block();
                }
            }
            1.0 + x
        }));
    }
    {
        let runs = runs.clone();
        cv.add_variant(FnVariant::new("large", move |&x: &f64| {
            runs.fetch_add(1, Ordering::SeqCst);
            10.0 - x * 0.5
        }));
    }
    cv.set_default(0);
    cv.add_input_feature(FnFeature::new("x", |&x: &f64| x));
    cv
}

/// k=1 KNN trained on a single class: predicts `label` everywhere.
fn constant_model(label: usize) -> TrainedModel {
    let data = Dataset::from_parts((0..4).map(|i| vec![f64::from(i)]).collect(), vec![label; 4]);
    TrainedModel::train(&ClassifierConfig::Knn { k: 1 }, &data)
}

fn test_config() -> ServeConfig {
    ServeConfig {
        shards: 1,
        queue_capacity: Some(64),
        tenant_slots: 16,
        tenant_rate_per_s: 1_000_000.0,
        tenant_burst: 1_000,
        ..ServeConfig::default()
    }
}

fn meta(clock: &ServeClock, tenant: u32, priority: Priority, budget_ns: u64) -> RequestMeta {
    RequestMeta::new(TenantId(tenant), priority, clock.now_ns(), budget_ns)
}

#[test]
fn wall_clock_requests_are_served_within_budget() {
    let runs = Arc::new(AtomicU64::new(0));
    let registry = PulseRegistry::new();
    let clock = ServeClock::wall();
    let front = ServeFront::start(
        test_config(),
        GuardPolicy::default(),
        clock.clone(),
        Some(&registry),
        {
            let runs = runs.clone();
            move |_| toy_cv(&Context::new(), runs.clone(), None)
        },
    )
    .unwrap();

    let tickets: Vec<_> = (0..8)
        .map(|i| {
            front
                .submit(
                    f64::from(i),
                    meta(&clock, i, Priority::Standard, 5_000_000_000),
                )
                .expect("admitted")
        })
        .collect();
    for t in tickets {
        match t.wait() {
            ServeOutcome::Served { deadline_met, .. } => assert!(deadline_met),
            other => panic!("expected Served, got {other:?}"),
        }
    }

    let summary = front.shutdown();
    assert_eq!(summary.escaped_panics, 0);
    assert_eq!(summary.workers_joined, 1);
    assert_eq!(runs.load(Ordering::SeqCst), 8);
    assert_eq!(registry.counter_value("serve.toy.admitted"), Some(8));
    assert_eq!(
        registry.counter_value("serve.toy.deadline_violations"),
        Some(0)
    );
}

#[test]
fn expired_at_the_door_is_rejected_before_costing_anything() {
    let runs = Arc::new(AtomicU64::new(0));
    let registry = PulseRegistry::new();
    let (clock, hand) = ServeClock::manual();
    let front = ServeFront::start(
        test_config(),
        GuardPolicy::default(),
        clock.clone(),
        Some(&registry),
        {
            let runs = runs.clone();
            move |_| toy_cv(&Context::new(), runs.clone(), None)
        },
    )
    .unwrap();

    // Issued at t=0 with a 50 ns budget; the clock is already at 100.
    let stale = RequestMeta::new(TenantId(1), Priority::Interactive, 0, 50);
    hand.store(100, Ordering::SeqCst);
    assert!(matches!(
        front.submit(1.0, stale),
        Err(Rejection::DeadlineExpired)
    ));

    front.shutdown();
    assert_eq!(runs.load(Ordering::SeqCst), 0, "no work for a dead request");
    assert_eq!(
        registry.counter_value("serve.toy.rejected_expired"),
        Some(1)
    );
    assert_eq!(registry.counter_value("serve.toy.admitted"), Some(0));
}

#[test]
fn burst_exhaustion_throttles_the_tenant() {
    let runs = Arc::new(AtomicU64::new(0));
    let (clock, _hand) = ServeClock::manual();
    let config = ServeConfig {
        tenant_burst: 2,
        tenant_rate_per_s: 0.001, // effectively no refill at a frozen clock
        ..test_config()
    };
    let front = ServeFront::start(config, GuardPolicy::default(), clock.clone(), None, {
        let runs = runs.clone();
        move |_| toy_cv(&Context::new(), runs.clone(), None)
    })
    .unwrap();

    let t1 = front
        .submit(1.0, meta(&clock, 7, Priority::Standard, 1_000))
        .unwrap();
    let t2 = front
        .submit(2.0, meta(&clock, 7, Priority::Standard, 1_000))
        .unwrap();
    assert!(
        matches!(
            front.submit(3.0, meta(&clock, 7, Priority::Standard, 1_000)),
            Err(Rejection::TenantThrottled)
        ),
        "third request in the burst window is turned away"
    );
    assert!(matches!(t1.wait(), ServeOutcome::Served { .. }));
    assert!(matches!(t2.wait(), ServeOutcome::Served { .. }));
    front.shutdown();
}

#[test]
fn queue_watermarks_admit_by_priority() {
    let runs = Arc::new(AtomicU64::new(0));
    let registry = PulseRegistry::new();
    let gate = Gate::new();
    let (clock, _hand) = ServeClock::manual();
    let config = ServeConfig {
        queue_capacity: Some(4),
        ..test_config()
    };
    let front = ServeFront::start(
        config,
        GuardPolicy::default(),
        clock.clone(),
        Some(&registry),
        {
            let runs = runs.clone();
            let gate = gate.clone();
            move |_| toy_cv(&Context::new(), runs.clone(), Some(gate.clone()))
        },
    )
    .unwrap();

    // Park the single worker inside a dispatch so queued depth is ours
    // to control.
    let blocker = front
        .submit(-1.0, meta(&clock, 1, Priority::Interactive, u64::MAX / 2))
        .unwrap();
    gate.wait_entered();
    assert_eq!(front.queue_depths(), vec![0]);

    // Batch watermark on a 4-slot queue is floor(4 × 0.7) = 2: two
    // batch jobs queue, the third is refused.
    let b1 = front
        .submit(1.0, meta(&clock, 2, Priority::Batch, u64::MAX / 2))
        .unwrap();
    let b2 = front
        .submit(2.0, meta(&clock, 2, Priority::Batch, u64::MAX / 2))
        .unwrap();
    assert!(matches!(
        front.submit(3.0, meta(&clock, 2, Priority::Batch, u64::MAX / 2)),
        Err(Rejection::QueueFull { depth: 2, .. })
    ));

    // Interactive still has headroom up to the full capacity.
    let i1 = front
        .submit(4.0, meta(&clock, 3, Priority::Interactive, u64::MAX / 2))
        .unwrap();
    let i2 = front
        .submit(5.0, meta(&clock, 3, Priority::Interactive, u64::MAX / 2))
        .unwrap();
    assert!(matches!(
        front.submit(6.0, meta(&clock, 3, Priority::Interactive, u64::MAX / 2)),
        Err(Rejection::QueueFull { depth: 4, .. })
    ));

    gate.release();
    for t in [blocker, b1, b2, i1, i2] {
        assert!(matches!(t.wait(), ServeOutcome::Served { .. }));
    }
    front.shutdown();
    assert_eq!(registry.counter_value("serve.toy.rejected_queue"), Some(2));
    assert_eq!(registry.counter_value("serve.toy.admitted"), Some(5));
}

#[test]
fn deadline_shed_happens_before_dispatch_never_after() {
    let runs = Arc::new(AtomicU64::new(0));
    let registry = PulseRegistry::new();
    let gate = Gate::new();
    let (clock, hand) = ServeClock::manual();
    let config = ServeConfig {
        hopeless_shedding: false, // isolate the expiry shed
        ..test_config()
    };
    let front = ServeFront::start(
        config,
        GuardPolicy::default(),
        clock.clone(),
        Some(&registry),
        {
            let runs = runs.clone();
            let gate = gate.clone();
            move |_| toy_cv(&Context::new(), runs.clone(), Some(gate.clone()))
        },
    )
    .unwrap();

    let blocker = front
        .submit(-1.0, meta(&clock, 1, Priority::Interactive, u64::MAX / 2))
        .unwrap();
    gate.wait_entered();

    // Three requests with 1 µs budgets queue behind the blocker …
    let doomed: Vec<_> = (0..3)
        .map(|i| {
            front
                .submit(f64::from(i), meta(&clock, 2, Priority::Standard, 1_000))
                .unwrap()
        })
        .collect();
    // … and the clock leaps far past their deadlines while they wait.
    hand.store(5_000, Ordering::SeqCst);
    gate.release();

    assert!(matches!(blocker.wait(), ServeOutcome::Served { .. }));
    for t in doomed {
        match t.wait() {
            ServeOutcome::ShedExpired { queued_ns } => assert!(queued_ns > 0),
            other => panic!("expected ShedExpired, got {other:?}"),
        }
    }
    front.shutdown();
    assert_eq!(
        runs.load(Ordering::SeqCst),
        1,
        "only the blocker ever ran: shedding must precede dispatch"
    );
    assert_eq!(registry.counter_value("serve.toy.shed_expired"), Some(3));
    assert_eq!(
        registry.counter_value("serve.toy.deadline_violations"),
        Some(0)
    );
}

#[test]
fn hopeless_requests_are_shed_against_the_service_estimate() {
    let runs = Arc::new(AtomicU64::new(0));
    let registry = PulseRegistry::new();
    let gate = Gate::new();
    let (clock, hand) = ServeClock::manual();
    let front = ServeFront::start(
        test_config(), // hopeless_shedding: true
        GuardPolicy::default(),
        clock.clone(),
        Some(&registry),
        {
            let runs = runs.clone();
            let gate = gate.clone();
            move |_| toy_cv(&Context::new(), runs.clone(), Some(gate.clone()))
        },
    )
    .unwrap();

    // The blocker's dispatch "takes" 1 ms of manual time, seeding the
    // worker's service-time EWMA at 1 ms.
    let blocker = front
        .submit(-1.0, meta(&clock, 1, Priority::Interactive, u64::MAX / 2))
        .unwrap();
    gate.wait_entered();
    hand.store(1_000_000, Ordering::SeqCst);
    gate.release();
    assert!(matches!(blocker.wait(), ServeOutcome::Served { .. }));

    // A 1 µs budget is not yet expired, but it cannot possibly beat a
    // 1 ms service estimate: shed at dequeue, before any work.
    let hopeless = front
        .submit(1.0, meta(&clock, 2, Priority::Standard, 1_000))
        .unwrap();
    match hopeless.wait() {
        ServeOutcome::ShedHopeless {
            remaining_ns,
            estimate_ns,
        } => {
            assert!(remaining_ns <= 1_000);
            assert_eq!(estimate_ns, 1_000_000);
        }
        other => panic!("expected ShedHopeless, got {other:?}"),
    }
    front.shutdown();
    assert_eq!(runs.load(Ordering::SeqCst), 1, "hopeless request never ran");
    assert_eq!(registry.counter_value("serve.toy.shed_hopeless"), Some(1));
}

#[test]
fn hot_swap_mid_stream_changes_decisions_without_a_restart() {
    let runs = Arc::new(AtomicU64::new(0));
    let registry = PulseRegistry::new();
    let clock = ServeClock::wall();
    let front = ServeFront::start(
        test_config(),
        GuardPolicy::default(),
        clock.clone(),
        Some(&registry),
        {
            let runs = runs.clone();
            move |_| toy_cv(&Context::new(), runs.clone(), None)
        },
    )
    .unwrap();
    assert_eq!(front.model_version(), 0);

    // No model published yet: the guard degrades to the default.
    match front
        .submit(9.0, meta(&clock, 1, Priority::Standard, 5_000_000_000))
        .unwrap()
        .wait()
    {
        ServeOutcome::Served { variant, .. } => assert_eq!(variant, 0),
        other => panic!("{other:?}"),
    }

    // Publish a model that always picks variant 1; workers pick it up
    // on their next dispatch, no restart, no reader block.
    let artifact = {
        let ctx = Context::new();
        let mut cv = toy_cv(&ctx, runs.clone(), None);
        cv.install_model(constant_model(1));
        cv.export_artifact().unwrap()
    };
    assert_eq!(front.publish_artifact(artifact), 1);
    assert_eq!(front.model_version(), 1);

    match front
        .submit(9.0, meta(&clock, 1, Priority::Standard, 5_000_000_000))
        .unwrap()
        .wait()
    {
        ServeOutcome::Served {
            variant,
            variant_name,
            ..
        } => {
            assert_eq!(variant, 1);
            assert_eq!(variant_name, "large");
        }
        other => panic!("{other:?}"),
    }

    front.shutdown();
    assert_eq!(
        registry.counter_value("serve.toy.hotswap_installs"),
        Some(1)
    );
}

#[test]
fn page_alerts_tighten_admission_and_relax_restores_it() {
    let runs = Arc::new(AtomicU64::new(0));
    let registry = PulseRegistry::new();
    let (clock, _hand) = ServeClock::manual();
    let config = ServeConfig {
        max_tighten: 2,
        ..test_config()
    };
    let front = ServeFront::start(config, GuardPolicy::default(), clock, Some(&registry), {
        let runs = runs.clone();
        move |_| toy_cv(&Context::new(), runs.clone(), None)
    })
    .unwrap();

    let page = PulseAlert {
        slo: "toy-p99".into(),
        kind: AlertKind::LatencyRegression,
        severity: AlertSeverity::Page,
        metric: "serve.toy.e2e_latency_ns".into(),
        observed: 9e6,
        threshold: 1e6,
        window_ticks: 3,
    };
    // Alerts for other functions or lower severities do not apply.
    let other_fn = PulseAlert {
        metric: "serve.other.e2e_latency_ns".into(),
        ..page.clone()
    };
    let warn_only = PulseAlert {
        severity: AlertSeverity::Warn,
        ..page.clone()
    };
    assert!(!front.ingest_alert(&other_fn));
    assert!(!front.ingest_alert(&warn_only));
    assert_eq!(front.tighten_level(), 0);

    assert!(front.ingest_alert(&page));
    assert_eq!(front.tighten_level(), 1);
    assert!(front.ingest_alert(&page));
    assert!(front.ingest_alert(&page), "applies but saturates at max");
    assert_eq!(front.tighten_level(), 2, "capped at max_tighten");
    assert_eq!(registry.gauge_value("serve.toy.tightened"), Some(2.0));

    front.relax();
    front.relax();
    front.relax(); // saturates at zero
    assert_eq!(front.tighten_level(), 0);
    assert_eq!(registry.gauge_value("serve.toy.tightened"), Some(0.0));
    front.shutdown();
}

#[test]
fn startup_refuses_mismatched_shards_and_unserveable_configs() {
    let runs = Arc::new(AtomicU64::new(0));
    let (clock, _hand) = ServeClock::manual();

    // Shard 1 registering a different function is a hard error.
    let err = match ServeFront::start(
        ServeConfig {
            shards: 2,
            ..test_config()
        },
        GuardPolicy::default(),
        clock.clone(),
        None,
        {
            let runs = runs.clone();
            move |shard| {
                let ctx = Context::new();
                if shard == 0 {
                    toy_cv(&ctx, runs.clone(), None)
                } else {
                    let mut cv = CodeVariant::new("imposter", &ctx);
                    cv.add_variant(FnVariant::new("v", |&x: &f64| x));
                    cv.set_default(0);
                    cv
                }
            }
        },
    ) {
        Err(e) => e,
        Ok(_) => panic!("mismatched shard registration must refuse startup"),
    };
    assert!(err.to_string().contains("imposter"), "{err}");

    // A registration without a terminal default is refused (NITRO102).
    let err = match ServeFront::start(test_config(), GuardPolicy::default(), clock, None, |_| {
        let ctx = Context::new();
        let mut cv = CodeVariant::new("nodefault", &ctx);
        cv.add_variant(FnVariant::new("v", |&x: &f64| x));
        cv.add_input_feature(FnFeature::new("x", |&x: &f64| x));
        cv
    }) {
        Err(e) => e,
        Ok(_) => panic!("missing default must refuse startup"),
    };
    assert!(
        err.diagnostics().iter().any(|d| d.code == "NITRO102"),
        "{err}"
    );
}
