//! Serving-configuration audit: the `NITRO10x` diagnostics.
//!
//! Same shape as the guard's `NITRO05x` audit: inspect the
//! configuration before traffic flows, refuse to start on
//! error-severity findings, warn on footguns.
//!
//! * `NITRO100` (error)   — unbounded (or zero-capacity) admission
//!   queue: overload would back up instead of shedding.
//! * `NITRO101` (error)   — zero-capacity tenant bucket: a non-positive
//!   or non-finite refill rate, zero burst, or zero slots means the
//!   tenant can never be admitted.
//! * `NITRO102` (error)   — degradation ladder missing its terminal
//!   default variant: the `DefaultOnly` tier (and the guarded cascade
//!   underneath) would have nowhere to land.
//! * `NITRO103` (warning) — deadline budget below the observed p99
//!   dispatch floor: most admitted requests would expire in flight.
//! * `NITRO104` (warning) — more shards than hardware threads: shards
//!   contend for cores instead of parallelizing.
//!
//! The self-healing runtime emits the `NITRO11x` family (collected into
//! the [`ServeSummary`](crate::ServeSummary) rather than refusing
//! startup — they describe what happened, not what was configured):
//!
//! * `NITRO110` (warning) — a shard was restarted by the supervisor.
//! * `NITRO111` (error)   — a shard exhausted its restart budget and
//!   was retired.
//! * `NITRO112` (error)   — a poison-pill request was quarantined.
//! * `NITRO114` (error)   — request-lineage conservation was violated.

use nitro_core::diag::registry::codes;
use nitro_core::Diagnostic;

use crate::front::ServeConfig;
use crate::lineage::LineageAccounting;

/// Audit a serving configuration for `function`.
/// [`ServeFront::start`](crate::ServeFront::start) refuses to start on
/// error-severity findings. `has_default` reports whether the
/// registration being served sets a default variant.
pub fn audit_serve_config(
    function: &str,
    config: &ServeConfig,
    has_default: bool,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    match config.queue_capacity {
        None => diags.push(Diagnostic::error(
            codes::NITRO100,
            function,
            "unbounded admission queue: overload backs up (and blows every latency \
             SLO) instead of shedding; set queue_capacity",
        )),
        Some(0) => diags.push(Diagnostic::error(
            codes::NITRO100,
            function,
            "zero-capacity admission queue: every request is rejected at the door",
        )),
        Some(_) => {}
    }
    if !(config.tenant_rate_per_s > 0.0 && config.tenant_rate_per_s.is_finite())
        || config.tenant_burst == 0
        || config.tenant_slots == 0
    {
        diags.push(Diagnostic::error(
            codes::NITRO101,
            function,
            format!(
                "zero-capacity tenant bucket (rate {}/s, burst {}, slots {}): \
                 no tenant can ever be admitted",
                config.tenant_rate_per_s, config.tenant_burst, config.tenant_slots
            ),
        ));
    }
    if !has_default {
        diags.push(Diagnostic::error(
            codes::NITRO102,
            function,
            "degradation ladder has no terminal default variant: the DefaultOnly \
             tier (and the fallback cascade underneath it) has nowhere to land; \
             call set_default before serving",
        ));
    }
    if let Some(floor) = config.expected_p99_floor_ns {
        if floor.is_finite() && (config.default_budget_ns as f64) < floor {
            diags.push(Diagnostic::warning(
                codes::NITRO103,
                function,
                format!(
                    "deadline budget {} ns is below the observed p99 dispatch floor \
                     {floor:.0} ns: most admitted requests will expire in flight",
                    config.default_budget_ns
                ),
            ));
        }
    }
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if config.shards > hw {
        diags.push(Diagnostic::warning(
            codes::NITRO104,
            function,
            format!(
                "{} shards on {hw} hardware threads: shards will contend for cores \
                 instead of parallelizing",
                config.shards
            ),
        ));
    }
    diags
}

/// `NITRO110`: the supervisor replaced a dead or wedged worker.
pub fn diag_shard_restart(
    function: &str,
    shard: usize,
    generation: u64,
    restarts: u32,
    budget: u32,
) -> Diagnostic {
    Diagnostic::warning(
        codes::NITRO110,
        function,
        format!(
            "shard {shard} restarted (generation {generation}): the supervisor replaced a \
             dead or wedged worker, re-seeded from the current model version \
             ({restarts}/{budget} restarts consumed)"
        ),
    )
}

/// `NITRO111`: a shard's restart budget ran out and it was retired.
pub fn diag_restart_budget(
    function: &str,
    shard: usize,
    restarts: u32,
    detail: &str,
) -> Diagnostic {
    Diagnostic::error(
        codes::NITRO111,
        function,
        format!(
            "shard {shard} retired after {restarts} restart(s): {detail}; serving capacity \
             is permanently reduced"
        ),
    )
}

/// `NITRO112`: a request was quarantined as a poison pill.
pub fn diag_poison_quarantine(function: &str, lineage: u64, tenant: u32, kills: u32) -> Diagnostic {
    Diagnostic::error(
        codes::NITRO112,
        function,
        format!(
            "request lineage {lineage} (tenant {tenant}) quarantined as a poison pill after \
             killing {kills} shard(s); it will not be re-placed again"
        ),
    )
}

/// `NITRO114`: the lineage-conservation invariant failed at shutdown.
pub fn diag_conservation(function: &str, accounting: &LineageAccounting) -> Diagnostic {
    Diagnostic::error(
        codes::NITRO114,
        function,
        format!(
            "request-lineage conservation violated: {}",
            accounting.violations().join("; ")
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_config() -> ServeConfig {
        ServeConfig::default()
    }

    #[test]
    fn healthy_config_is_clean() {
        assert!(audit_serve_config("fn", &ok_config(), true).is_empty());
    }

    #[test]
    fn unbounded_and_zero_queues_are_nitro100_errors() {
        for capacity in [None, Some(0)] {
            let cfg = ServeConfig {
                queue_capacity: capacity,
                ..ok_config()
            };
            let diags = audit_serve_config("fn", &cfg, true);
            assert!(
                diags.iter().any(|d| d.code == "NITRO100"),
                "{capacity:?}: {diags:?}"
            );
            assert!(nitro_audit::has_errors(&diags));
        }
    }

    #[test]
    fn dead_tenant_buckets_are_nitro101_errors() {
        for cfg in [
            ServeConfig {
                tenant_rate_per_s: 0.0,
                ..ok_config()
            },
            ServeConfig {
                tenant_rate_per_s: f64::NAN,
                ..ok_config()
            },
            ServeConfig {
                tenant_burst: 0,
                ..ok_config()
            },
            ServeConfig {
                tenant_slots: 0,
                ..ok_config()
            },
        ] {
            let diags = audit_serve_config("fn", &cfg, true);
            assert!(diags.iter().any(|d| d.code == "NITRO101"), "{cfg:?}");
        }
    }

    #[test]
    fn missing_terminal_default_is_a_nitro102_error() {
        let diags = audit_serve_config("fn", &ok_config(), false);
        assert!(diags.iter().any(|d| d.code == "NITRO102"), "{diags:?}");
        assert!(nitro_audit::has_errors(&diags));
    }

    #[test]
    fn budget_below_p99_floor_is_a_nitro103_warning() {
        let cfg = ServeConfig {
            default_budget_ns: 1_000,
            expected_p99_floor_ns: Some(50_000.0),
            ..ok_config()
        };
        let diags = audit_serve_config("fn", &cfg, true);
        assert!(diags.iter().any(|d| d.code == "NITRO103"), "{diags:?}");
        assert!(!nitro_audit::has_errors(&diags), "warning, not error");
        // A budget above the floor is clean.
        let cfg = ServeConfig {
            default_budget_ns: 100_000,
            expected_p99_floor_ns: Some(50_000.0),
            ..ok_config()
        };
        assert!(audit_serve_config("fn", &cfg, true).is_empty());
    }

    #[test]
    fn self_healing_diagnostics_carry_their_registered_codes() {
        use nitro_core::Severity;

        let d = diag_shard_restart("fn", 2, 3, 1, 4);
        assert_eq!(d.code, "NITRO110");
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("shard 2"), "{}", d.message);

        let d = diag_restart_budget("fn", 1, 4, "still panicking");
        assert_eq!(d.code, "NITRO111");
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("retired"), "{}", d.message);

        let d = diag_poison_quarantine("fn", 42, 7, 2);
        assert_eq!(d.code, "NITRO112");
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("lineage 42"), "{}", d.message);
        assert!(d.message.contains("tenant 7"), "{}", d.message);

        let broken = LineageAccounting {
            admitted: 5,
            served: 3,
            shed_expired: 0,
            shed_hopeless: 0,
            shed_failover: 0,
            failed: 0,
            quarantined: 0,
            lost: 1,
        };
        let d = diag_conservation("fn", &broken);
        assert_eq!(d.code, "NITRO114");
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("dropped without"), "{}", d.message);
        // Every code is registered (lookup panics on unknown codes at
        // the registry layer, so resolving severity is the check).
        for code in ["NITRO110", "NITRO111", "NITRO112", "NITRO114"] {
            assert!(
                nitro_core::diag::registry::lookup(code).is_some(),
                "{code} must be registered"
            );
        }
    }

    #[test]
    fn oversharding_is_a_nitro104_warning() {
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let cfg = ServeConfig {
            shards: hw + 1,
            ..ok_config()
        };
        let diags = audit_serve_config("fn", &cfg, true);
        assert!(diags.iter().any(|d| d.code == "NITRO104"), "{diags:?}");
    }
}
