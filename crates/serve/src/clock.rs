//! The serving clock: wall time in production, a hand-cranked counter
//! under test.
//!
//! Every deadline decision in `nitro-serve` reads one [`ServeClock`],
//! in plain `u64` nanoseconds. The [`ServeClock::manual`] variant makes
//! overload scripts deterministic: the test advances time explicitly,
//! so "this request expired while queued" is a scripted fact rather
//! than a scheduling accident.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Nanosecond clock behind the front door. Cheap to clone; clones of a
/// manual clock share the same hand.
#[derive(Debug, Clone)]
pub enum ServeClock {
    /// Monotonic wall time since the clock was created.
    Wall {
        /// The zero point.
        origin: Instant,
    },
    /// Virtual time: advances only when the owner of the hand says so.
    Manual(Arc<AtomicU64>),
}

impl ServeClock {
    /// A monotonic wall clock starting at zero now.
    pub fn wall() -> Self {
        ServeClock::Wall {
            origin: Instant::now(),
        }
    }

    /// A virtual clock starting at zero, plus the hand that advances it.
    pub fn manual() -> (Self, Arc<AtomicU64>) {
        let hand = Arc::new(AtomicU64::new(0));
        (ServeClock::Manual(hand.clone()), hand)
    }

    /// Current reading in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        match self {
            ServeClock::Wall { origin } => origin.elapsed().as_nanos() as u64,
            ServeClock::Manual(hand) => hand.load(Ordering::SeqCst),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_moves_only_by_hand_and_clones_share_it() {
        let (clock, hand) = ServeClock::manual();
        let clone = clock.clone();
        assert_eq!(clock.now_ns(), 0);
        hand.fetch_add(250, Ordering::SeqCst);
        assert_eq!(clock.now_ns(), 250);
        assert_eq!(clone.now_ns(), 250, "clones read the same hand");
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let clock = ServeClock::wall();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }
}
