//! The serving clock: wall time in production, a hand-cranked counter
//! under test.
//!
//! Every deadline decision in `nitro-serve` reads one [`ServeClock`],
//! in plain `u64` nanoseconds. The [`ServeClock::manual`] variant makes
//! overload scripts deterministic: the test advances time explicitly,
//! so "this request expired while queued" is a scripted fact rather
//! than a scheduling accident.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Nanosecond clock behind the front door. Cheap to clone; clones of a
/// manual clock share the same hand.
#[derive(Debug, Clone)]
pub enum ServeClock {
    /// Monotonic wall time since the clock was created.
    Wall {
        /// The zero point.
        origin: Instant,
    },
    /// Virtual time: advances only when the owner of the hand says so.
    Manual(Arc<AtomicU64>),
    /// Wall time plus an adjustable forward skew — the chaos harness's
    /// "clock jumped" fault. The skew only ever grows, so the reading
    /// stays monotonic; a jump makes queued deadlines expire early, the
    /// way an NTP step would in production.
    Skewed {
        /// The zero point.
        origin: Instant,
        /// Extra nanoseconds added to every reading.
        skew: Arc<AtomicU64>,
    },
}

impl ServeClock {
    /// A monotonic wall clock starting at zero now.
    pub fn wall() -> Self {
        ServeClock::Wall {
            origin: Instant::now(),
        }
    }

    /// A virtual clock starting at zero, plus the hand that advances it.
    pub fn manual() -> (Self, Arc<AtomicU64>) {
        let hand = Arc::new(AtomicU64::new(0));
        (ServeClock::Manual(hand.clone()), hand)
    }

    /// A wall clock with an injectable forward skew, plus the skew knob.
    /// `skew.fetch_add(jump, SeqCst)` models a step adjustment.
    pub fn skewed() -> (Self, Arc<AtomicU64>) {
        let skew = Arc::new(AtomicU64::new(0));
        (
            ServeClock::Skewed {
                origin: Instant::now(),
                skew: skew.clone(),
            },
            skew,
        )
    }

    /// Current reading in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        match self {
            ServeClock::Wall { origin } => origin.elapsed().as_nanos() as u64,
            ServeClock::Manual(hand) => hand.load(Ordering::SeqCst),
            ServeClock::Skewed { origin, skew } => {
                (origin.elapsed().as_nanos() as u64).saturating_add(skew.load(Ordering::SeqCst))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_moves_only_by_hand_and_clones_share_it() {
        let (clock, hand) = ServeClock::manual();
        let clone = clock.clone();
        assert_eq!(clock.now_ns(), 0);
        hand.fetch_add(250, Ordering::SeqCst);
        assert_eq!(clock.now_ns(), 250);
        assert_eq!(clone.now_ns(), 250, "clones read the same hand");
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let clock = ServeClock::wall();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn skewed_clock_jumps_forward_and_stays_monotonic() {
        let (clock, skew) = ServeClock::skewed();
        let before = clock.now_ns();
        skew.fetch_add(1_000_000_000, Ordering::SeqCst);
        let after = clock.now_ns();
        assert!(
            after >= before + 1_000_000_000,
            "skew jump must be visible: {before} → {after}"
        );
        assert!(clock.now_ns() >= after, "still monotonic after the jump");
    }
}
