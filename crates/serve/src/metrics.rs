//! The `serve.*` pulse bundle: one counter per front-door decision,
//! one sketch per latency axis.
//!
//! Registered once at startup (mirroring
//! [`nitro_pulse::GuardPulse`]), recorded lock-free on every decision
//! point. Metric names follow the `serve.<fn>.<event>` convention so
//! [`nitro_pulse::PulseAlert::function`] parses them and SLOs can
//! target them (`serve.<fn>.e2e_latency_ns` p99, shed-rate windows, …).

use std::sync::Arc;

use nitro_pulse::{PulseCounter, PulseGauge, PulseRegistry, PulseSketch};

/// Lock-free handles to every `serve.<fn>.*` metric.
#[derive(Debug)]
pub struct ServePulse {
    /// Requests admitted past both admission gates.
    pub admitted: PulseCounter,
    /// Rejected: tenant token bucket empty.
    pub rejected_tenant: PulseCounter,
    /// Rejected: shard queue over the priority's watermark.
    pub rejected_queue: PulseCounter,
    /// Rejected: deadline already expired at submission.
    pub rejected_expired: PulseCounter,
    /// Shed at dequeue: deadline expired while queued (before dispatch).
    pub shed_expired: PulseCounter,
    /// Shed at dequeue: remaining budget below the service-time estimate.
    pub shed_hopeless: PulseCounter,
    /// Served from the cached-regime tier.
    pub degrade_cached: PulseCounter,
    /// Served from the default-only tier.
    pub degrade_default: PulseCounter,
    /// Admitted requests that finished after their deadline (the bench
    /// gate requires this to stay 0).
    pub deadline_violations: PulseCounter,
    /// Panics that escaped a shard's dispatch (must stay 0; the guard
    /// catches variant panics).
    pub panics: PulseCounter,
    /// Model hot-swap installs performed by workers.
    pub hotswap_installs: PulseCounter,
    /// Worker deaths observed by the supervisor (panic escaped and the
    /// shard went down).
    pub shard_deaths: PulseCounter,
    /// Supervisor restarts (dead-shard revivals plus wedged-worker
    /// replacements).
    pub shard_restarts: PulseCounter,
    /// Shards retired after exhausting their restart budget.
    pub shard_retired: PulseCounter,
    /// Requests quarantined as poison pills.
    pub poison_quarantined: PulseCounter,
    /// Requests shed during failover (drained off a dead shard with no
    /// live shard to take them).
    pub shed_failover: PulseCounter,
    /// Jobs drained off dead or wedged shards for re-placement.
    pub drained: PulseCounter,
    /// Current admission tighten level (0 = wide open).
    pub tightened: PulseGauge,
    /// Dispatch latency (dequeue → completion), ns.
    pub dispatch_latency_ns: PulseSketch,
    /// Queue wait (admission → dequeue), ns.
    pub queue_wait_ns: PulseSketch,
    /// End-to-end latency (admission → completion), ns.
    pub e2e_latency_ns: PulseSketch,
}

impl ServePulse {
    /// Register every `serve.<function>.*` metric.
    pub fn register(registry: &PulseRegistry, function: &str) -> Arc<Self> {
        let c = |event: &str| registry.counter(&format!("serve.{function}.{event}"));
        Arc::new(Self {
            admitted: c("admitted"),
            rejected_tenant: c("rejected_tenant"),
            rejected_queue: c("rejected_queue"),
            rejected_expired: c("rejected_expired"),
            shed_expired: c("shed_expired"),
            shed_hopeless: c("shed_hopeless"),
            degrade_cached: c("degrade_cached"),
            degrade_default: c("degrade_default"),
            deadline_violations: c("deadline_violations"),
            panics: c("panics"),
            hotswap_installs: c("hotswap_installs"),
            shard_deaths: c("shard_deaths"),
            shard_restarts: c("shard_restarts"),
            shard_retired: c("shard_retired"),
            poison_quarantined: c("poison_quarantined"),
            shed_failover: c("shed_failover"),
            drained: c("drained"),
            tightened: registry.gauge(&format!("serve.{function}.tightened")),
            dispatch_latency_ns: registry.sketch(&format!("serve.{function}.dispatch_latency_ns")),
            queue_wait_ns: registry.sketch(&format!("serve.{function}.queue_wait_ns")),
            e2e_latency_ns: registry.sketch(&format!("serve.{function}.e2e_latency_ns")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_names_parse_for_slo_targeting() {
        let registry = PulseRegistry::with_stripes(2);
        let pulse = ServePulse::register(&registry, "spmv");
        pulse.admitted.inc();
        pulse.dispatch_latency_ns.record(1234.0);
        pulse.tightened.set(2.0);
        assert_eq!(registry.counter_value("serve.spmv.admitted"), Some(1));
        assert_eq!(registry.gauge_value("serve.spmv.tightened"), Some(2.0));
        let sketch = registry.fused_sketch("serve.spmv.dispatch_latency_ns");
        assert_eq!(sketch.expect("registered").count(), 1);
        // The alert helper can parse the function back out.
        let alert = nitro_pulse::PulseAlert {
            slo: "serve-p99".into(),
            kind: nitro_pulse::AlertKind::LatencyRegression,
            severity: nitro_pulse::AlertSeverity::Page,
            metric: "serve.spmv.e2e_latency_ns".into(),
            observed: 2.0,
            threshold: 1.0,
            window_ticks: 1,
        };
        assert_eq!(alert.function(), Some("spmv"));
        assert!(alert.is_page_latency_for("spmv"));
    }
}
