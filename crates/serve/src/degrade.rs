//! The three-tier degradation ladder and the per-regime decision cache.
//!
//! As a shard's queue deepens, each request is served with
//! progressively less machinery:
//!
//! | tier | engages at | what runs |
//! |---|---|---|
//! | [`DegradeTier::Full`] | depth < soft watermark | feature eval + model predict + guarded cascade |
//! | [`DegradeTier::CachedRegime`] | soft ≤ depth < hard | feature eval + cached per-regime variant (predict only on cache miss) |
//! | [`DegradeTier::DefaultOnly`] | depth ≥ hard | the terminal default variant, no prediction at all |
//!
//! The ladder always terminates at the default variant — a
//! configuration without one is refused at startup (`NITRO102`).
//!
//! The [`RegimeCache`] behind the middle tier maps *input regimes*
//! (features quantized to order-of-magnitude buckets) to the variant
//! the model last chose for that regime. It is worker-local — one
//! worker per shard — so lookups are plain array reads, and it is
//! cleared on every model hot-swap: a new model's decisions must not be
//! served from the old model's cache.

use nitro_core::Priority;

/// How much prediction machinery a request gets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradeTier {
    /// Full feature evaluation + model predict + guarded cascade.
    Full,
    /// Cached per-regime decision; model consulted only on cache miss.
    CachedRegime,
    /// Terminal default variant, no prediction.
    DefaultOnly,
}

impl DegradeTier {
    /// Short label for metrics and reports.
    pub fn label(self) -> &'static str {
        match self {
            DegradeTier::Full => "full",
            DegradeTier::CachedRegime => "cached_regime",
            DegradeTier::DefaultOnly => "default_only",
        }
    }
}

/// Pick the tier for a shard at `depth` with `capacity` slots, given
/// the soft/hard watermark fractions. `tighten_shift` halves both
/// watermarks per level, so a burning SLO degrades earlier.
pub fn tier_for(
    depth: usize,
    capacity: usize,
    soft_fraction: f64,
    hard_fraction: f64,
    tighten_shift: u32,
) -> DegradeTier {
    let scale = 1.0 / f64::from(1u32 << tighten_shift.min(16));
    let soft = (capacity as f64 * soft_fraction * scale) as usize;
    let hard = (capacity as f64 * hard_fraction * scale) as usize;
    if depth >= hard.max(1) {
        DegradeTier::DefaultOnly
    } else if depth >= soft.max(1) {
        DegradeTier::CachedRegime
    } else {
        DegradeTier::Full
    }
}

/// The admission watermark for one priority class: the fraction of
/// queue capacity this class may fill, halved per tighten level. Always
/// at least 1 so a healthy, empty system admits everyone.
pub fn admission_watermark(capacity: usize, priority: Priority, tighten_shift: u32) -> usize {
    let scaled =
        capacity as f64 * priority.admission_fraction() / f64::from(1u32 << tighten_shift.min(16));
    (scaled as usize).max(1)
}

const CACHE_SLOTS: usize = 64;
const VALID: u64 = 1 << 63;
const FP_BITS: u64 = (1 << 47) - 1;

/// Worker-local map from quantized feature regime → last chosen
/// variant. Fixed-size, direct-mapped: a colliding regime simply
/// overwrites (the cache is an optimization, never a correctness
/// dependency — a miss or eviction falls back to a full predict).
#[derive(Debug)]
pub struct RegimeCache {
    slots: [u64; CACHE_SLOTS],
    hits: u64,
    misses: u64,
}

impl Default for RegimeCache {
    fn default() -> Self {
        Self {
            slots: [0; CACHE_SLOTS],
            hits: 0,
            misses: 0,
        }
    }
}

/// Quantize a feature vector to a regime fingerprint: each feature
/// collapses to its sign + order of magnitude, so inputs of the same
/// scale share a regime while the cache stays insensitive to noise.
pub fn regime_fingerprint(features: &[f64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
    for &f in features {
        let bucket: i64 = if !f.is_finite() {
            i64::MAX
        } else if f == 0.0 {
            0
        } else {
            let mag = f.abs().log2().floor() as i64;
            if f < 0.0 {
                -(mag + 1)
            } else {
                mag + 1
            }
        };
        for byte in bucket.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h & FP_BITS
}

impl RegimeCache {
    /// The cached variant for this regime, if present.
    pub fn lookup(&mut self, fingerprint: u64) -> Option<usize> {
        let word = self.slots[(fingerprint as usize) % CACHE_SLOTS];
        if word & VALID != 0 && (word >> 16) & FP_BITS == fingerprint {
            self.hits += 1;
            Some((word & 0xFFFF) as usize)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Record the model's decision for this regime.
    pub fn insert(&mut self, fingerprint: u64, variant: usize) {
        if variant > 0xFFFF {
            return; // unrepresentable; the cache just won't serve it
        }
        self.slots[(fingerprint as usize) % CACHE_SLOTS] =
            VALID | (fingerprint << 16) | variant as u64;
    }

    /// Drop every cached decision (model hot-swap).
    pub fn clear(&mut self) {
        self.slots = [0; CACHE_SLOTS];
    }

    /// (hits, misses) since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_engages_with_depth_and_tightening_lowers_it() {
        let cap = 100;
        assert_eq!(tier_for(0, cap, 0.5, 0.8, 0), DegradeTier::Full);
        assert_eq!(tier_for(49, cap, 0.5, 0.8, 0), DegradeTier::Full);
        assert_eq!(tier_for(50, cap, 0.5, 0.8, 0), DegradeTier::CachedRegime);
        assert_eq!(tier_for(79, cap, 0.5, 0.8, 0), DegradeTier::CachedRegime);
        assert_eq!(tier_for(80, cap, 0.5, 0.8, 0), DegradeTier::DefaultOnly);
        // One tighten level halves both watermarks.
        assert_eq!(tier_for(25, cap, 0.5, 0.8, 1), DegradeTier::CachedRegime);
        assert_eq!(tier_for(40, cap, 0.5, 0.8, 1), DegradeTier::DefaultOnly);
    }

    #[test]
    fn admission_watermarks_scale_by_priority_and_tightening() {
        assert_eq!(admission_watermark(100, Priority::Interactive, 0), 100);
        assert_eq!(admission_watermark(100, Priority::Standard, 0), 85);
        assert_eq!(admission_watermark(100, Priority::Batch, 0), 70);
        assert_eq!(admission_watermark(100, Priority::Batch, 1), 35);
        assert_eq!(
            admission_watermark(2, Priority::Batch, 4),
            1,
            "never below one"
        );
    }

    #[test]
    fn same_scale_inputs_share_a_regime_different_scales_do_not() {
        let a = regime_fingerprint(&[1025.0, 0.5]);
        let b = regime_fingerprint(&[1400.0, 0.6]);
        let c = regime_fingerprint(&[100_000.0, 0.5]);
        assert_eq!(a, b, "same order of magnitude");
        assert_ne!(a, c, "different order of magnitude");
    }

    #[test]
    fn cache_round_trips_and_clears_on_swap() {
        let mut cache = RegimeCache::default();
        let fp = regime_fingerprint(&[256.0]);
        assert_eq!(cache.lookup(fp), None);
        cache.insert(fp, 3);
        assert_eq!(cache.lookup(fp), Some(3));
        cache.clear();
        assert_eq!(cache.lookup(fp), None, "hot-swap invalidates");
        assert_eq!(cache.stats(), (1, 2));
    }
}
