//! The per-shard bounded queue: three priority lanes behind one lock,
//! with a lock-free depth mirror for admission checks.
//!
//! The mutex guards only enqueue/dequeue pointer shuffling (no work
//! runs under it); admission reads `depth()` — a plain atomic — so the
//! reject-early path never contends with workers. Capacity is enforced
//! at admission (`front.rs`), not here: by the time a request reaches
//! `push` it has been admitted.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use nitro_core::Priority;

struct Lanes<J> {
    lanes: [VecDeque<J>; 3],
    closed: bool,
}

/// A bounded, priority-laned MPSC queue: any thread may push, the
/// shard's worker pops. `Interactive` drains strictly before
/// `Standard`, which drains strictly before `Batch`.
pub struct ShardQueue<J> {
    inner: Mutex<Lanes<J>>,
    available: Condvar,
    depth: AtomicUsize,
}

impl<J> Default for ShardQueue<J> {
    fn default() -> Self {
        Self {
            inner: Mutex::new(Lanes {
                lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                closed: false,
            }),
            available: Condvar::new(),
            depth: AtomicUsize::new(0),
        }
    }
}

impl<J> ShardQueue<J> {
    /// Current queue depth across all lanes (lock-free).
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::SeqCst)
    }

    /// Enqueue into the priority's lane. Returns false after `close`
    /// (the job is handed back to the caller in that case).
    pub fn push(&self, job: J, priority: Priority) -> Result<(), J> {
        let mut inner = self.inner.lock().expect("shard queue lock");
        if inner.closed {
            return Err(job);
        }
        inner.lanes[priority.index()].push_back(job);
        self.depth.fetch_add(1, Ordering::SeqCst);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeue the highest-priority job, blocking while the queue is
    /// open and empty. `None` once closed **and** drained — a close
    /// does not drop queued work.
    pub fn pop(&self) -> Option<J> {
        let mut inner = self.inner.lock().expect("shard queue lock");
        loop {
            for lane in &mut inner.lanes {
                if let Some(job) = lane.pop_front() {
                    self.depth.fetch_sub(1, Ordering::SeqCst);
                    return Some(job);
                }
            }
            if inner.closed {
                return None;
            }
            inner = self.available.wait(inner).expect("shard queue lock");
        }
    }

    /// Stop accepting pushes and wake every blocked popper.
    pub fn close(&self) {
        self.inner.lock().expect("shard queue lock").closed = true;
        self.available.notify_all();
    }

    /// Take every queued job at once, in priority order. Used by the
    /// supervisor to rescue work off a dead shard's queue — the shard
    /// has no worker left to pop, so the jobs must be re-placed or shed
    /// by someone else.
    pub fn drain(&self) -> Vec<J> {
        let mut inner = self.inner.lock().expect("shard queue lock");
        let mut out = Vec::new();
        for lane in &mut inner.lanes {
            out.extend(lane.drain(..));
        }
        self.depth.fetch_sub(out.len(), Ordering::SeqCst);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_in_priority_order_not_arrival_order() {
        let q = ShardQueue::default();
        q.push("batch", Priority::Batch).unwrap();
        q.push("standard", Priority::Standard).unwrap();
        q.push("interactive", Priority::Interactive).unwrap();
        assert_eq!(q.depth(), 3);
        assert_eq!(q.pop(), Some("interactive"));
        assert_eq!(q.pop(), Some("standard"));
        assert_eq!(q.pop(), Some("batch"));
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn close_rejects_new_pushes_but_drains_queued_work() {
        let q = ShardQueue::default();
        q.push(1, Priority::Standard).unwrap();
        q.close();
        assert_eq!(q.push(2, Priority::Standard), Err(2));
        assert_eq!(q.pop(), Some(1), "queued work survives close");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn drain_empties_all_lanes_in_priority_order() {
        let q = ShardQueue::default();
        q.push("batch", Priority::Batch).unwrap();
        q.push("interactive", Priority::Interactive).unwrap();
        q.push("standard", Priority::Standard).unwrap();
        assert_eq!(q.drain(), vec!["interactive", "standard", "batch"]);
        assert_eq!(q.depth(), 0);
        assert!(q.drain().is_empty(), "second drain finds nothing");
        // Draining does not close the queue.
        q.push("late", Priority::Standard).unwrap();
        assert_eq!(q.pop(), Some("late"));
    }

    #[test]
    fn blocked_popper_wakes_on_push() {
        let q = std::sync::Arc::new(ShardQueue::default());
        let popper = {
            let q = q.clone();
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.push(42, Priority::Interactive).unwrap();
        assert_eq!(popper.join().unwrap(), Some(42));
    }
}
