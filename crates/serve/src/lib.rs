//! # nitro-serve — an overload-safe serving front door for tuned functions
//!
//! The rest of the workspace makes one dispatch fast and safe;
//! this crate makes *concurrent traffic* safe. N worker shards — each
//! owning a [`CodeVariant`](nitro_core::CodeVariant) wrapped in a
//! shard-shareable [`GuardedVariant`](nitro_guard::GuardedVariant) —
//! sit behind a bounded-queue front door with real overload semantics:
//!
//! * **Admission control** — per-tenant token buckets plus
//!   priority-scaled queue watermarks reject early (two atomic reads)
//!   instead of queueing forever.
//! * **Deadline budgets** — every request carries a
//!   [`Deadline`](nitro_core::Deadline); expired requests are shed
//!   *before* dispatch, never after work is done, and an EWMA service
//!   estimate sheds requests that can no longer make it.
//! * **Graceful degradation** — a three-tier ladder (full predict →
//!   cached per-regime decision → default variant) engages as shard
//!   pressure rises, so overload costs prediction quality before it
//!   costs availability.
//! * **Epoch hot-swap** — model updates (e.g. from a
//!   [`StagedPromotion`](nitro_store::StagedPromotion)) publish through
//!   a lock-free [`EpochCell`]: readers never block and old epochs
//!   retire only when quiescent.
//! * **SLO feedback** — a burning latency SLO
//!   ([`PulseAlert`](nitro_pulse::PulseAlert) pages) tightens admission
//!   *before* the watchdog has to roll a promotion back.
//!
//! Every decision point emits a `serve.<fn>.*` pulse metric
//! ([`ServePulse`]) and the configuration is audited at startup
//! (`NITRO100`–`NITRO104`, [`audit_serve_config`]). See the repository
//! README's "Serving & overload" section for the architecture diagram
//! and the bench harness (`serve_report`) that load-tests all of it.

#![warn(missing_docs)]

pub mod admission;
pub mod audit;
pub mod clock;
pub mod degrade;
pub mod epoch;
pub mod front;
pub mod lineage;
pub mod metrics;
pub mod queue;
pub mod supervise;

pub use admission::{TenantBuckets, TokenBucket};
pub use audit::{
    audit_serve_config, diag_conservation, diag_poison_quarantine, diag_restart_budget,
    diag_shard_restart,
};
pub use clock::ServeClock;
pub use degrade::{admission_watermark, regime_fingerprint, tier_for, DegradeTier, RegimeCache};
pub use epoch::EpochCell;
pub use front::{
    ModelSlot, Rejection, ServeConfig, ServeFront, ServeOutcome, ServeSummary, ServeTicket,
};
pub use lineage::{ConservationLedger, LineageAccounting};
pub use metrics::ServePulse;
pub use queue::ShardQueue;
pub use supervise::{PanicRecord, ShardSlot, ShardState, SupervisorConfig};
