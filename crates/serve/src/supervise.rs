//! Shard supervision: the state machine behind self-healing serving.
//!
//! ```text
//!          panic escapes dispatch                restart budget left,
//!            (worker exits)                      backoff elapsed
//!   ┌────┐ ───────────────────────► ┌──────┐ ─────────────────────► Up
//!   │ Up │                          │ Dead │
//!   └────┘ ◄─────────────────────── └──────┘ ─────────────────────► ┌─────────┐
//!      │      replacement spawned       │       budget exhausted    │ Retired │
//!      │                                │       (NITRO111)          └─────────┘
//!      │ heartbeat stale while busy     │
//!      └── (wedged: fence generation, ◄─┘
//!           replace on the same queue, NITRO110)
//! ```
//!
//! Each shard owns one [`ShardSlot`]: a tiny bank of atomics the worker
//! updates (heartbeat, busy flag) and the supervisor reads and
//! transitions (state, generation, restart bookkeeping). The
//! *generation* is the fencing token — a replaced worker notices its
//! generation is stale and exits instead of double-serving its queue.
//! Every restart consumes budget and doubles the backoff; an exhausted
//! budget retires the shard permanently (`NITRO111`), permanently
//! reducing capacity rather than crash-looping.
//!
//! Requests that *cause* deaths are tracked per-job: a job whose
//! dispatch has now killed [`SupervisorConfig::poison_kill_threshold`]
//! shards is quarantined (`NITRO112`) instead of being re-placed to
//! kill again.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::Duration;

use serde::Serialize;

/// Supervisor knobs. `ServeConfig::default()` enables supervision with
/// these defaults; set `supervision: None` for the legacy
/// continue-after-panic behavior.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorConfig {
    /// Restarts (death or wedge replacements) each shard may consume
    /// before it is retired.
    pub restart_budget: u32,
    /// Base restart backoff, ns — doubles with every restart already
    /// consumed.
    pub restart_backoff_base_ns: u64,
    /// A busy worker whose heartbeat is older than this is wedged:
    /// fenced out and replaced.
    pub heartbeat_stale_ns: u64,
    /// Shard kills after which a request is quarantined instead of
    /// re-placed (`NITRO112`).
    pub poison_kill_threshold: u32,
    /// Supervisor poll interval (wall time; decisions read the serve
    /// clock).
    pub tick: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            restart_budget: 4,
            restart_backoff_base_ns: 1_000_000,
            heartbeat_stale_ns: 2_000_000_000,
            poison_kill_threshold: 2,
            tick: Duration::from_millis(1),
        }
    }
}

/// A shard's lifecycle state, as the supervisor sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ShardState {
    /// A live worker owns the queue.
    Up,
    /// The worker exited after a panic; queued work is being drained
    /// and a restart (or retirement) is pending.
    Dead,
    /// Restart budget exhausted — permanently out of rotation
    /// (`NITRO111`).
    Retired,
}

const STATE_UP: u32 = 0;
const STATE_DEAD: u32 = 1;
const STATE_RETIRED: u32 = 2;

/// Per-shard supervision cell: written by the shard's worker
/// (heartbeat, busy) and by the supervisor (state, generation, restart
/// bookkeeping), read by admission (state) lock-free.
#[derive(Debug)]
pub struct ShardSlot {
    state: AtomicU32,
    /// Fencing token: a worker whose spawn-time generation no longer
    /// matches has been replaced and must exit.
    pub generation: AtomicU64,
    /// Serve-clock timestamp of the worker's last sign of life.
    pub heartbeat_ns: AtomicU64,
    /// 1 while the worker is inside a dispatch (wedge detection only
    /// applies to busy workers — a worker blocked on an empty queue is
    /// idle, not wedged).
    pub busy: AtomicU32,
    /// Restarts consumed so far.
    pub restarts: AtomicU32,
    /// Serve-clock instant before which a dead shard must not be
    /// restarted (exponential backoff).
    pub next_restart_at_ns: AtomicU64,
}

impl Default for ShardSlot {
    fn default() -> Self {
        Self {
            state: AtomicU32::new(STATE_UP),
            generation: AtomicU64::new(0),
            heartbeat_ns: AtomicU64::new(0),
            busy: AtomicU32::new(0),
            restarts: AtomicU32::new(0),
            next_restart_at_ns: AtomicU64::new(0),
        }
    }
}

impl ShardSlot {
    /// Current lifecycle state.
    pub fn state(&self) -> ShardState {
        match self.state.load(Ordering::SeqCst) {
            STATE_UP => ShardState::Up,
            STATE_DEAD => ShardState::Dead,
            _ => ShardState::Retired,
        }
    }

    /// Transition the lifecycle state.
    pub fn set_state(&self, state: ShardState) {
        let raw = match state {
            ShardState::Up => STATE_UP,
            ShardState::Dead => STATE_DEAD,
            ShardState::Retired => STATE_RETIRED,
        };
        self.state.store(raw, Ordering::SeqCst);
    }
}

/// One escaped panic, attributed to the request that caused it — the
/// accounting the legacy path lacked (a bare counter said *that* a
/// shard panicked, never *which request* did it).
#[derive(Debug, Clone, Serialize)]
pub struct PanicRecord {
    /// The shard whose dispatch panicked.
    pub shard: usize,
    /// That worker's generation (distinguishes repeat kills of a
    /// restarted shard).
    pub generation: u64,
    /// The admitted request's lineage id.
    pub lineage: u64,
    /// Its tenant.
    pub tenant: u32,
    /// Its priority (debug-formatted).
    pub priority: String,
    /// The panic payload, stringified.
    pub detail: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_state_round_trips_and_starts_up() {
        let slot = ShardSlot::default();
        assert_eq!(slot.state(), ShardState::Up);
        slot.set_state(ShardState::Dead);
        assert_eq!(slot.state(), ShardState::Dead);
        slot.set_state(ShardState::Retired);
        assert_eq!(slot.state(), ShardState::Retired);
        slot.set_state(ShardState::Up);
        assert_eq!(slot.state(), ShardState::Up);
    }

    #[test]
    fn defaults_are_sane() {
        let cfg = SupervisorConfig::default();
        assert!(cfg.restart_budget >= 1);
        assert!(cfg.restart_backoff_base_ns > 0);
        assert!(
            cfg.poison_kill_threshold >= 2,
            "one kill must not quarantine"
        );
        assert!(cfg.heartbeat_stale_ns > cfg.restart_backoff_base_ns);
    }
}
