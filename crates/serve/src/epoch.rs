//! Epoch-style lock-free hot-swap cell.
//!
//! [`EpochCell<T>`] holds one `Arc<T>` that readers clone without ever
//! blocking and a writer replaces atomically. It is the publication
//! mechanism for model hot-swap: worker shards `load()` the current
//! model slot on every request, and a promotion `publish()`es a new one
//! mid-traffic with no reader stall.
//!
//! The design is the striped-RCU idiom `nitro-trace` uses for its
//! global tracer slot, instance-scoped and specialized to `Arc`
//! payloads:
//!
//! * the current value lives in an `AtomicPtr` obtained from
//!   `Arc::into_raw`;
//! * readers **pin** one of 8 cache-line-separated stripe counters,
//!   load the pointer, take a strong reference
//!   (`Arc::increment_strong_count`), then unpin — three atomic ops and
//!   no loop, so readers are wait-free with respect to each other and
//!   never block on a writer;
//! * the writer swaps the pointer, then spins until every stripe drains
//!   to zero before dropping its reference to the **old** value.
//!
//! The drain is what makes the increment sound: a reader that loaded
//! the old pointer but has not yet incremented the count still holds
//! its stripe pin, so the writer cannot release the old epoch's
//! reference under it. Once the stripes are empty, every reader that
//! could have seen the old pointer holds its own strong count, and any
//! later reader sees the new pointer (all operations are SeqCst, so the
//! pointer swap is ordered before the drain reads). The old value is
//! freed when the last outstanding `Arc` drops — "old epochs retire
//! only when quiescent".
//!
//! An exhaustive interleaving test (`tests/epoch_interleave.rs`)
//! model-checks this protocol step by step, and a threaded stress test
//! hammers the real implementation with drop-flag payloads.

use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

const READER_STRIPES: usize = 8;

/// One cache line per stripe so reader pins don't false-share.
#[repr(align(128))]
#[derive(Default)]
struct ReaderStripe(AtomicU64);

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static STRIPE: usize =
        NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % READER_STRIPES;
}

/// A lock-free publication cell over `Arc<T>`. Readers never block;
/// the writer waits only for in-flight reader pins (a few instructions
/// each), never for readers to finish *using* their clones.
pub struct EpochCell<T> {
    ptr: AtomicPtr<T>,
    epoch: AtomicU64,
    stripes: [ReaderStripe; READER_STRIPES],
}

impl<T> EpochCell<T> {
    /// A cell holding `initial` as epoch 0.
    pub fn new(initial: Arc<T>) -> Self {
        Self {
            ptr: AtomicPtr::new(Arc::into_raw(initial) as *mut T),
            epoch: AtomicU64::new(0),
            stripes: Default::default(),
        }
    }

    /// How many times [`EpochCell::publish`] has run.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Clone the current value. Wait-free: pin, load, count, unpin.
    pub fn load(&self) -> Arc<T> {
        let stripe = STRIPE.with(|s| *s);
        let pin = &self.stripes[stripe].0;
        pin.fetch_add(1, Ordering::SeqCst);
        let raw = self.ptr.load(Ordering::SeqCst);
        // SAFETY: `raw` came from `Arc::into_raw` and the cell's
        // reference to it cannot be released while our stripe pin is
        // held (`publish` drains every stripe before dropping).
        unsafe { Arc::increment_strong_count(raw) };
        pin.fetch_sub(1, Ordering::SeqCst);
        // SAFETY: we own the strong count taken above.
        unsafe { Arc::from_raw(raw) }
    }

    /// Replace the value. Readers keep whatever epoch they already
    /// cloned; new loads see `next` immediately after the swap. Blocks
    /// only this caller, and only for in-flight reader pins.
    pub fn publish(&self, next: Arc<T>) {
        let old = self
            .ptr
            .swap(Arc::into_raw(next) as *mut T, Ordering::SeqCst);
        self.epoch.fetch_add(1, Ordering::SeqCst);
        for stripe in &self.stripes {
            while stripe.0.load(Ordering::SeqCst) != 0 {
                std::hint::spin_loop();
            }
        }
        // SAFETY: `old` came from `Arc::into_raw` at `new` or an earlier
        // `publish`; the drain above guarantees no reader is between
        // "loaded old" and "incremented old", so releasing the cell's
        // reference cannot race an increment.
        unsafe { drop(Arc::from_raw(old)) };
    }
}

impl<T> Drop for EpochCell<T> {
    fn drop(&mut self) {
        let raw = *self.ptr.get_mut();
        // SAFETY: exclusive access; this releases the cell's reference.
        unsafe { drop(Arc::from_raw(raw)) };
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for EpochCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochCell")
            .field("epoch", &self.epoch())
            .field("value", &self.load())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_returns_the_published_value_and_epoch_advances() {
        let cell = EpochCell::new(Arc::new(1u32));
        assert_eq!(*cell.load(), 1);
        assert_eq!(cell.epoch(), 0);
        cell.publish(Arc::new(2));
        assert_eq!(*cell.load(), 2);
        assert_eq!(cell.epoch(), 1);
    }

    #[test]
    fn old_epoch_survives_until_its_readers_drop() {
        let cell = EpochCell::new(Arc::new(String::from("v0")));
        let held = cell.load();
        cell.publish(Arc::new(String::from("v1")));
        // The old epoch is retired from the cell but our clone is alive.
        assert_eq!(*held, "v0");
        assert_eq!(*cell.load(), "v1");
        drop(held); // last reference: v0 freed here (miri would catch UAF)
    }

    #[test]
    fn dropping_the_cell_releases_the_current_value() {
        let value = Arc::new(7u64);
        let cell = EpochCell::new(value.clone());
        assert_eq!(Arc::strong_count(&value), 2);
        drop(cell);
        assert_eq!(Arc::strong_count(&value), 1);
    }
}
