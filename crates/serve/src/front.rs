//! The serving front door: admission, sharded dispatch, shedding,
//! degradation, model hot-swap and shard supervision.
//!
//! ```text
//!                    ┌──────────── ServeFront ────────────┐
//!  submit(req) ──►  admission                             │
//!   │  ├─ deadline already expired?   → reject (expired)  │
//!   │  ├─ tenant token bucket empty?  → reject (tenant)   │
//!   │  ├─ no live shard?              → reject (no shard) │
//!   │  └─ shard queue over watermark? → reject (queue)    │
//!   │                                                     │
//!   └─► shard queue (bounded, 3 priority lanes)           │
//!          │                                              │
//!       worker: dequeue                                   │
//!          ├─ deadline expired while queued → shed        │
//!          ├─ remaining < service estimate  → shed        │
//!          ├─ model epoch changed → hot-swap install      │
//!          └─ dispatch at the pressure tier:              │
//!               Full → CachedRegime → DefaultOnly         │
//!                      (guarded cascade underneath)       │
//!                                                         │
//!       supervisor: poll shard slots                      │
//!          ├─ dead shard   → drain queue, re-place work,  │
//!          │                 restart within budget/backoff│
//!          ├─ wedged shard → fence generation, replace    │
//!          └─ budget spent → retire (NITRO111)            │
//! ```
//!
//! Work is **never** started on a request whose deadline has passed —
//! expiry is checked at admission and re-checked at dequeue, and the
//! optional hopeless-shed drops requests whose remaining budget is
//! below the shard's smoothed service-time estimate. Every decision
//! increments a [`ServePulse`](crate::ServePulse) counter.
//!
//! With supervision enabled (the default), a panic that escapes the
//! guarded dispatch kills only its shard: the worker records the
//! offending request ([`PanicRecord`]), parks it for re-placement (or
//! quarantines it once it has killed
//! [`SupervisorConfig::poison_kill_threshold`] shards, `NITRO112`),
//! marks its slot dead and exits. The supervisor drains the dead
//! shard's queue back through placement — every queued request ends in
//! exactly one accounted outcome ([`ConservationLedger`]) — and
//! restarts the shard re-seeded from the current model epoch, under an
//! exponential backoff and a restart budget (`NITRO110`/`NITRO111`).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use nitro_core::{CodeVariant, Diagnostic, ModelArtifact, NitroError, RequestMeta, Result};
use nitro_guard::{GuardPolicy, GuardShared, GuardedVariant};
use nitro_pulse::{PulseAlert, PulseRegistry};
use nitro_store::StagedPromotion;

use crate::admission::TenantBuckets;
use crate::audit::{
    audit_serve_config, diag_conservation, diag_poison_quarantine, diag_restart_budget,
    diag_shard_restart,
};
use crate::clock::ServeClock;
use crate::degrade::{admission_watermark, regime_fingerprint, tier_for, DegradeTier, RegimeCache};
use crate::epoch::EpochCell;
use crate::lineage::{ConservationLedger, LineageAccounting};
use crate::metrics::ServePulse;
use crate::queue::ShardQueue;
use crate::supervise::{PanicRecord, ShardSlot, ShardState, SupervisorConfig};

/// Front-door configuration. Audited at startup
/// ([`audit_serve_config`]); error-severity findings (`NITRO100`–`102`)
/// refuse to start.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Worker shards (each owns a `CodeVariant` + its compiled model).
    pub shards: usize,
    /// Per-shard queue bound. `None` is an unbounded queue — refused at
    /// startup (`NITRO100`): overload must shed, not back up.
    pub queue_capacity: Option<usize>,
    /// Tenant bucket slots (tenants hash onto them).
    pub tenant_slots: usize,
    /// Tenant refill rate, tokens per second.
    pub tenant_rate_per_s: f64,
    /// Tenant burst size, tokens.
    pub tenant_burst: u32,
    /// Queue fraction where the cached-regime tier engages.
    pub soft_degrade: f64,
    /// Queue fraction where the default-only tier engages.
    pub hard_degrade: f64,
    /// Cap on SLO-driven admission tightening (each level halves rates
    /// and watermarks).
    pub max_tighten: u32,
    /// Deadline budget the audit compares against the expected service
    /// floor (`NITRO103`), ns.
    pub default_budget_ns: u64,
    /// Observed p99 dispatch floor from a calibration run, if any (ns).
    pub expected_p99_floor_ns: Option<f64>,
    /// Shed queued requests whose remaining budget is below the shard's
    /// smoothed service-time estimate.
    pub hopeless_shedding: bool,
    /// Shard supervision and self-healing. `Some` (the default) runs
    /// the supervisor; `None` keeps the legacy behavior where a worker
    /// survives an escaped panic by failing the request in place.
    pub supervision: Option<SupervisorConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            // One shard per hardware thread, so the default never trips
            // the NITRO104 oversharding warning.
            shards: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            queue_capacity: Some(64),
            tenant_slots: 64,
            tenant_rate_per_s: 10_000.0,
            tenant_burst: 64,
            soft_degrade: 0.5,
            hard_degrade: 0.8,
            max_tighten: 3,
            default_budget_ns: 5_000_000,
            expected_p99_floor_ns: None,
            hopeless_shedding: true,
            supervision: Some(SupervisorConfig::default()),
        }
    }
}

/// Why `submit` turned a request away (synchronously, before it cost a
/// queue slot).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejection {
    /// The deadline had already passed at submission.
    DeadlineExpired,
    /// The tenant's token bucket was empty.
    TenantThrottled,
    /// Every candidate shard was over this priority's watermark.
    QueueFull {
        /// The shallowest shard considered.
        shard: usize,
        /// Its depth at rejection time.
        depth: usize,
    },
    /// Every shard is dead or retired — nothing can run the request.
    NoLiveShards,
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::DeadlineExpired => write!(f, "deadline expired before admission"),
            Rejection::TenantThrottled => write!(f, "tenant token bucket empty"),
            Rejection::QueueFull { shard, depth } => {
                write!(f, "queue full (shard {shard} at depth {depth})")
            }
            Rejection::NoLiveShards => write!(f, "no live shards (all dead or retired)"),
        }
    }
}

/// What happened to an admitted request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeOutcome {
    /// Dispatched and completed.
    Served {
        /// The variant that ran.
        variant: usize,
        /// Its name.
        variant_name: String,
        /// Objective it returned.
        objective: f64,
        /// The degradation tier it was served at.
        tier: DegradeTier,
        /// Admission → dequeue, ns.
        queue_wait_ns: u64,
        /// Dequeue → completion, ns.
        dispatch_ns: u64,
        /// Whether completion beat the deadline (the bench gate
        /// requires this to always be true).
        deadline_met: bool,
        /// Whether the guarded cascade fell back past its first choice.
        fell_back: bool,
    },
    /// Shed at dequeue: the deadline passed while queued. No work was
    /// started.
    ShedExpired {
        /// How long it sat queued, ns.
        queued_ns: u64,
    },
    /// Shed at dequeue: remaining budget below the service estimate.
    /// No work was started.
    ShedHopeless {
        /// Budget left at dequeue, ns.
        remaining_ns: u64,
        /// The shard's smoothed service estimate, ns.
        estimate_ns: u64,
    },
    /// Shed during failover: the request was drained off a dead shard
    /// and no live shard could take it (or the front was shutting
    /// down).
    ShedFailover {
        /// The shard it was rescued from.
        from_shard: usize,
    },
    /// Quarantined as a poison pill (`NITRO112`): its dispatch killed
    /// enough shards that re-placing it again would be sabotage.
    Quarantined {
        /// Shard kills attributed to this request.
        kills: u32,
    },
    /// Dispatch failed (cascade exhausted) — the error, stringified.
    Failed {
        /// What went wrong.
        error: String,
    },
}

/// The requester's handle on an admitted request.
#[derive(Debug)]
pub struct ServeTicket {
    rx: Receiver<ServeOutcome>,
    lineage: u64,
}

impl ServeTicket {
    /// Block until this request resolves to its one accounted outcome.
    pub fn wait(self) -> ServeOutcome {
        self.rx.recv().unwrap_or(ServeOutcome::Failed {
            error: "shard dropped the request (worker exited)".into(),
        })
    }

    /// The request's lineage id (unique per admission, matches
    /// [`PanicRecord::lineage`]).
    pub fn lineage(&self) -> u64 {
        self.lineage
    }
}

/// The model slot workers read per request and promotions publish into.
#[derive(Debug)]
pub struct ModelSlot {
    /// Monotonic publication number (0 = the initial, possibly empty
    /// slot).
    pub version: u64,
    /// The artifact to serve with; `None` leaves shards degraded.
    pub artifact: Option<ModelArtifact>,
}

/// The write half of a ticket, wrapped so that *dropping it without
/// resolving* is observable: the drop counts a loss in the
/// [`ConservationLedger`] (a `NITRO114` at shutdown) and still unblocks
/// the waiter. Resolution is exactly-once by construction — `resolve`
/// consumes the slot.
struct ReplySlot {
    tx: Option<SyncSender<ServeOutcome>>,
    ledger: Arc<ConservationLedger>,
}

impl ReplySlot {
    fn resolve(mut self, outcome: ServeOutcome) {
        let counter = match &outcome {
            ServeOutcome::Served { .. } => &self.ledger.served,
            ServeOutcome::ShedExpired { .. } => &self.ledger.shed_expired,
            ServeOutcome::ShedHopeless { .. } => &self.ledger.shed_hopeless,
            ServeOutcome::ShedFailover { .. } => &self.ledger.shed_failover,
            ServeOutcome::Quarantined { .. } => &self.ledger.quarantined,
            ServeOutcome::Failed { .. } => &self.ledger.failed,
        };
        counter.fetch_add(1, Ordering::SeqCst);
        if let Some(tx) = self.tx.take() {
            let _ = tx.send(outcome);
        }
    }

    /// Disarm without accounting — only for jobs that were never
    /// admitted (push refused at a closing queue).
    fn defuse(mut self) {
        self.tx = None;
    }
}

impl Drop for ReplySlot {
    fn drop(&mut self) {
        if let Some(tx) = self.tx.take() {
            self.ledger.lost.fetch_add(1, Ordering::SeqCst);
            let _ = tx.send(ServeOutcome::Failed {
                error: "request lost: reply slot dropped without an accounted outcome".into(),
            });
        }
    }
}

struct Job<I> {
    input: I,
    meta: RequestMeta,
    enqueued_ns: u64,
    /// Unique per admission; ties tickets, panic records and
    /// quarantine diagnostics to one request.
    lineage: u64,
    /// Shards this request's dispatch has killed so far.
    kills: u32,
    reply: ReplySlot,
}

/// Everything needed to rebuild a shard's worker: the caller's
/// registration factory plus the guard policy and the shared
/// breaker/health bank every shard participates in.
struct WorkerFactory<I> {
    make_cv: Arc<dyn Fn(usize) -> CodeVariant<I> + Send + Sync>,
    policy: GuardPolicy,
    shared: Arc<GuardShared>,
}

struct FrontInner<I> {
    config: ServeConfig,
    function: String,
    clock: ServeClock,
    queues: Vec<ShardQueue<Job<I>>>,
    tenants: TenantBuckets,
    tighten: AtomicU32,
    rr: AtomicU64,
    model: EpochCell<ModelSlot>,
    publish_seq: AtomicU64,
    pulse: Option<Arc<ServePulse>>,
    escaped_panics: AtomicU64,
    ledger: Arc<ConservationLedger>,
    lineage_seq: AtomicU64,
    slots: Vec<ShardSlot>,
    /// Jobs rescued off dying workers, awaiting re-placement:
    /// `(shard they died on, job)`.
    parked: Mutex<Vec<(usize, Job<I>)>>,
    panic_records: Mutex<Vec<PanicRecord>>,
    diagnostics: Mutex<Vec<Diagnostic>>,
    shard_deaths: AtomicU64,
    shard_restarts: AtomicU64,
    shards_retired: AtomicU64,
    poison_quarantined: AtomicU64,
    shutting_down: AtomicBool,
    worker_handles: Mutex<Vec<Option<JoinHandle<()>>>>,
    /// Handles of fenced-out (wedged) or retired workers; joined at
    /// shutdown if they finished, detached otherwise.
    zombie_handles: Mutex<Vec<JoinHandle<()>>>,
    factory: Option<WorkerFactory<I>>,
}

/// Aggregate outcome of a front door's lifetime, from
/// [`ServeFront::shutdown`].
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// Panics that escaped the guarded dispatch into a worker's
    /// backstop (0 in a healthy system; the guard absorbs variant
    /// panics). Each one has a matching [`PanicRecord`].
    pub escaped_panics: u64,
    /// Worker threads that exited cleanly.
    pub workers_joined: usize,
    /// Worker threads whose join failed — a panic got past even the
    /// backstop. Must be 0.
    pub workers_failed: usize,
    /// Shard deaths observed (panic escaped dispatch, supervised mode).
    pub shard_deaths: u64,
    /// Supervisor restarts performed (`NITRO110`s).
    pub shard_restarts: u64,
    /// Shards retired on an exhausted restart budget (`NITRO111`s).
    pub shards_retired: u64,
    /// Requests quarantined as poison pills (`NITRO112`s).
    pub poison_quarantined: u64,
    /// Final conservation accounting; `accounting.is_conserved()` must
    /// hold (otherwise `diagnostics` carries a `NITRO114`).
    pub accounting: LineageAccounting,
    /// Every escaped panic, attributed to the request that caused it.
    pub panic_records: Vec<PanicRecord>,
    /// Startup warnings plus every `NITRO11x` the runtime emitted.
    pub diagnostics: Vec<Diagnostic>,
}

/// An overload-safe, sharded serving front door over one tuned
/// function. See the module docs for the pipeline.
pub struct ServeFront<I: Send + Sync + 'static> {
    inner: Arc<FrontInner<I>>,
    supervisor: Option<JoinHandle<()>>,
}

impl<I: Send + Sync + 'static> ServeFront<I> {
    /// Build and start the front door.
    ///
    /// `make_cv` constructs one registration per shard (shard index
    /// passed in); every shard must register the same function. Guards
    /// share one breaker/health/stats bank
    /// ([`GuardedVariant::new_sharing`]), so a variant quarantined on
    /// one shard is quarantined on all. The configuration audit
    /// (`NITRO100`–`NITRO104`) runs first and error findings refuse
    /// startup; attach a `PulseRegistry` to get the `serve.*` metrics.
    /// With supervision enabled the factory is retained and re-invoked
    /// to rebuild dead shards, so it must be `Send + Sync + 'static`.
    pub fn start(
        config: ServeConfig,
        policy: GuardPolicy,
        clock: ServeClock,
        registry: Option<&PulseRegistry>,
        make_cv: impl Fn(usize) -> CodeVariant<I> + Send + Sync + 'static,
    ) -> Result<Self> {
        let cv0 = make_cv(0);
        let function = cv0.name().to_string();
        let diagnostics = audit_serve_config(&function, &config, cv0.default_variant().is_some());
        if nitro_audit::has_errors(&diagnostics) {
            return Err(NitroError::Audit { diagnostics });
        }
        let capacity = config.queue_capacity.expect("audited Some");
        debug_assert!(capacity > 0, "audited nonzero");

        let mut guards = Vec::with_capacity(config.shards);
        let mut first = GuardedVariant::new(cv0, policy.clone())?;
        first.set_backoff_salt(0);
        let shared = first.shared();
        guards.push(first);
        for shard in 1..config.shards.max(1) {
            let cv = make_cv(shard);
            if cv.name() != function {
                return Err(NitroError::ModelMismatch {
                    detail: format!(
                        "shard {shard} registered '{}' but shard 0 registered '{function}'",
                        cv.name()
                    ),
                });
            }
            let mut guard = GuardedVariant::new_sharing(cv, policy.clone(), shared.clone())?;
            // Decorrelated retry backoff per shard (same seed, different
            // salt): shards that trip the same breaker don't thunder in
            // phase.
            guard.set_backoff_salt(shard as u64);
            guards.push(guard);
        }

        let supervision = config.supervision.clone();
        let factory = supervision.is_some().then(|| WorkerFactory {
            make_cv: Arc::new(make_cv),
            policy: policy.clone(),
            shared: shared.clone(),
        });

        let pulse = registry.map(|r| ServePulse::register(r, &function));
        let shard_count = guards.len();
        let inner = Arc::new(FrontInner {
            queues: (0..shard_count).map(|_| ShardQueue::default()).collect(),
            tenants: TenantBuckets::new(
                config.tenant_slots,
                config.tenant_rate_per_s,
                config.tenant_burst,
            ),
            tighten: AtomicU32::new(0),
            rr: AtomicU64::new(0),
            model: EpochCell::new(Arc::new(ModelSlot {
                version: 0,
                artifact: None,
            })),
            publish_seq: AtomicU64::new(0),
            pulse,
            escaped_panics: AtomicU64::new(0),
            ledger: Arc::new(ConservationLedger::new()),
            lineage_seq: AtomicU64::new(0),
            slots: (0..shard_count).map(|_| ShardSlot::default()).collect(),
            parked: Mutex::new(Vec::new()),
            panic_records: Mutex::new(Vec::new()),
            // Keep the startup warnings (NITRO103/104): they belong in
            // the shutdown summary next to the runtime NITRO11x family.
            diagnostics: Mutex::new(diagnostics),
            shard_deaths: AtomicU64::new(0),
            shard_restarts: AtomicU64::new(0),
            shards_retired: AtomicU64::new(0),
            poison_quarantined: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            worker_handles: Mutex::new(Vec::new()),
            zombie_handles: Mutex::new(Vec::new()),
            factory,
            config,
            function,
            clock,
        });

        let handles: Vec<Option<JoinHandle<()>>> = guards
            .into_iter()
            .enumerate()
            .map(|(shard, guard)| {
                let inner = inner.clone();
                Some(
                    std::thread::Builder::new()
                        .name(format!("nitro-serve-{shard}"))
                        .spawn(move || worker_loop(shard, 0, 0, guard, inner))
                        .expect("spawn serve worker"),
                )
            })
            .collect();
        *inner.worker_handles.lock().expect("worker handles") = handles;

        let supervisor = supervision.map(|sup| {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("nitro-serve-supervisor".into())
                .spawn(move || supervisor_loop(inner, sup))
                .expect("spawn serve supervisor")
        });

        Ok(Self { inner, supervisor })
    }

    /// The function this front door serves.
    pub fn function(&self) -> &str {
        &self.inner.function
    }

    /// Submit a request. Admission is synchronous and lock-free: the
    /// result is either a ticket (admitted — a worker will resolve it)
    /// or the reason it was turned away.
    pub fn submit(
        &self,
        input: I,
        meta: RequestMeta,
    ) -> std::result::Result<ServeTicket, Rejection> {
        let inner = &*self.inner;
        let now = inner.clock.now_ns();
        if meta.deadline.is_expired(now) {
            if let Some(p) = &inner.pulse {
                p.rejected_expired.inc();
            }
            return Err(Rejection::DeadlineExpired);
        }
        let shift = inner.tighten.load(Ordering::SeqCst);
        if !inner.tenants.try_take(meta.tenant, now, shift) {
            if let Some(p) = &inner.pulse {
                p.rejected_tenant.inc();
            }
            return Err(Rejection::TenantThrottled);
        }
        // Power of two choices on queue depth, over live shards only —
        // dead and retired shards are out of the placement set.
        let live: Vec<usize> = inner
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.state() == ShardState::Up)
            .map(|(i, _)| i)
            .collect();
        if live.is_empty() {
            if let Some(p) = &inner.pulse {
                p.rejected_queue.inc();
            }
            return Err(Rejection::NoLiveShards);
        }
        let n = live.len();
        let pa = (inner.rr.fetch_add(1, Ordering::Relaxed) as usize) % n;
        let pb = (pa + 1 + (meta.tenant.0 as usize)) % n;
        let (a, b) = (live[pa], live[pb]);
        let (da, db) = (inner.queues[a].depth(), inner.queues[b].depth());
        let (shard, depth) = if da <= db { (a, da) } else { (b, db) };

        let capacity = inner.config.queue_capacity.expect("audited Some");
        if depth >= admission_watermark(capacity, meta.priority, shift) {
            if let Some(p) = &inner.pulse {
                p.rejected_queue.inc();
            }
            return Err(Rejection::QueueFull { shard, depth });
        }

        let lineage = inner.lineage_seq.fetch_add(1, Ordering::SeqCst) + 1;
        let (tx, rx) = sync_channel(1);
        let job = Job {
            input,
            meta,
            enqueued_ns: now,
            lineage,
            kills: 0,
            reply: ReplySlot {
                tx: Some(tx),
                ledger: inner.ledger.clone(),
            },
        };
        match inner.queues[shard].push(job, meta.priority) {
            Ok(()) => {
                inner.ledger.admitted.fetch_add(1, Ordering::SeqCst);
                if let Some(p) = &inner.pulse {
                    p.admitted.inc();
                }
                Ok(ServeTicket { rx, lineage })
            }
            // Shutting down (or the shard retired between the state
            // read and the push): never admitted, so don't account it.
            Err(job) => {
                job.reply.defuse();
                Err(Rejection::QueueFull { shard, depth })
            }
        }
    }

    /// Publish a model artifact to every shard via the epoch cell.
    /// Lock-free for readers: workers pick it up on their next request.
    /// Returns the publication version.
    pub fn publish_artifact(&self, artifact: ModelArtifact) -> u64 {
        let version = self.inner.publish_seq.fetch_add(1, Ordering::SeqCst) + 1;
        self.inner.model.publish(Arc::new(ModelSlot {
            version,
            artifact: Some(artifact),
        }));
        version
    }

    /// Swap-on-promote glue: publish a [`StagedPromotion`]'s current
    /// incumbent. Call it after `promote_now` / `observe` report a
    /// promotion (or rollback — this republishes whatever is current).
    pub fn publish_promotion(&self, promotion: &StagedPromotion) -> u64 {
        self.publish_artifact(promotion.current().clone())
    }

    /// The current model publication version (0 = none published).
    pub fn model_version(&self) -> u64 {
        self.inner.publish_seq.load(Ordering::SeqCst)
    }

    /// Feed a pulse alert into admission: a Page-severity latency
    /// regression on this function tightens admission one level
    /// (halving tenant rates and queue watermarks), up to
    /// `max_tighten`. Returns true when the alert applied.
    pub fn ingest_alert(&self, alert: &PulseAlert) -> bool {
        if !alert.is_page_latency_for(&self.inner.function) {
            return false;
        }
        let max = self.inner.config.max_tighten;
        let _ = self
            .inner
            .tighten
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |t| {
                (t < max).then_some(t + 1)
            });
        if let Some(p) = &self.inner.pulse {
            p.tightened
                .set(f64::from(self.inner.tighten.load(Ordering::SeqCst)));
        }
        true
    }

    /// Relax admission one tighten level (the SLO stopped burning).
    pub fn relax(&self) {
        let _ = self
            .inner
            .tighten
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |t| t.checked_sub(1));
        if let Some(p) = &self.inner.pulse {
            p.tightened
                .set(f64::from(self.inner.tighten.load(Ordering::SeqCst)));
        }
    }

    /// Current tighten level (0 = wide open).
    pub fn tighten_level(&self) -> u32 {
        self.inner.tighten.load(Ordering::SeqCst)
    }

    /// Current depth of every shard queue.
    pub fn queue_depths(&self) -> Vec<usize> {
        self.inner.queues.iter().map(|q| q.depth()).collect()
    }

    /// Lifecycle state of every shard, as the supervisor sees it.
    pub fn shard_states(&self) -> Vec<ShardState> {
        self.inner.slots.iter().map(|s| s.state()).collect()
    }

    /// Mid-flight snapshot of the conservation ledger. While requests
    /// are in queues, `admitted` legitimately exceeds the terminal sum;
    /// only the post-shutdown snapshot (in [`ServeSummary`]) is a
    /// conservation check.
    pub fn accounting(&self) -> LineageAccounting {
        self.inner.ledger.snapshot()
    }

    /// Close the queues, drain remaining work, join every worker, then
    /// sweep anything left on dead shards so every admitted request has
    /// resolved before the summary's conservation check runs.
    pub fn shutdown(self) -> ServeSummary {
        self.inner.shutting_down.store(true, Ordering::SeqCst);
        for q in &self.inner.queues {
            q.close();
        }
        if let Some(supervisor) = self.supervisor {
            let _ = supervisor.join();
        }
        let handles: Vec<JoinHandle<()>> = self
            .inner
            .worker_handles
            .lock()
            .expect("worker handles")
            .drain(..)
            .flatten()
            .collect();
        let mut joined = 0;
        let mut failed = 0;
        for handle in handles {
            if handle.join().is_ok() {
                joined += 1;
            } else {
                failed += 1;
            }
        }
        let zombies: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.inner.zombie_handles.lock().expect("zombie handles"));
        for zombie in zombies {
            // A still-wedged zombie can never be joined without hanging
            // shutdown; detach it. Its in-flight job (if any) resolves
            // whenever it unwedges.
            if zombie.is_finished() {
                if zombie.join().is_ok() {
                    joined += 1;
                } else {
                    failed += 1;
                }
            }
        }
        // Final sweep: dead/retired shards have no worker to drain
        // their queues, and parked jobs may still await re-placement.
        // Queues are closed, so every rescue resolves (re-push fails →
        // failover shed) — nothing can be admitted or lost after this.
        for shard in 0..self.inner.queues.len() {
            drain_shard(&self.inner, shard);
        }
        replace_parked(&self.inner);

        let accounting = self.inner.ledger.snapshot();
        let mut diagnostics =
            std::mem::take(&mut *self.inner.diagnostics.lock().expect("diagnostics"));
        if !accounting.is_conserved() {
            diagnostics.push(diag_conservation(&self.inner.function, &accounting));
        }
        ServeSummary {
            escaped_panics: self.inner.escaped_panics.load(Ordering::SeqCst),
            workers_joined: joined,
            workers_failed: failed,
            shard_deaths: self.inner.shard_deaths.load(Ordering::SeqCst),
            shard_restarts: self.inner.shard_restarts.load(Ordering::SeqCst),
            shards_retired: self.inner.shards_retired.load(Ordering::SeqCst),
            poison_quarantined: self.inner.poison_quarantined.load(Ordering::SeqCst),
            accounting,
            panic_records: std::mem::take(
                &mut *self.inner.panic_records.lock().expect("panic records"),
            ),
            diagnostics,
        }
    }
}

/// What one dispatch produced (worker-internal).
struct Dispatched {
    variant: usize,
    variant_name: String,
    objective: f64,
    tier: DegradeTier,
    fell_back: bool,
}

fn worker_loop<I: Send + Sync + 'static>(
    shard: usize,
    generation: u64,
    initial_version: u64,
    mut guard: GuardedVariant<I>,
    inner: Arc<FrontInner<I>>,
) {
    let mut cache = RegimeCache::default();
    let mut local_version = initial_version;
    // Smoothed service-time estimate (EWMA, α = 1/8), ns. Zero until
    // the first completion; hopeless-shedding stays off until then.
    let mut ewma_ns = 0.0f64;
    let capacity = inner.config.queue_capacity.expect("audited Some");

    loop {
        {
            let slot = &inner.slots[shard];
            if slot.generation.load(Ordering::SeqCst) != generation {
                break; // fenced out: a replacement owns this queue now
            }
            slot.heartbeat_ns
                .store(inner.clock.now_ns(), Ordering::SeqCst);
        }
        let Some(job) = inner.queues[shard].pop() else {
            break; // closed and drained
        };
        let now = inner.clock.now_ns();

        // Shed *before* dispatch — work is never started for a request
        // that can no longer meet its deadline.
        if job.meta.deadline.is_expired(now) {
            if let Some(p) = &inner.pulse {
                p.shed_expired.inc();
            }
            job.reply.resolve(ServeOutcome::ShedExpired {
                queued_ns: now.saturating_sub(job.enqueued_ns),
            });
            continue;
        }
        let remaining = job.meta.deadline.remaining_ns(now);
        if inner.config.hopeless_shedding && ewma_ns > 0.0 && (remaining as f64) < ewma_ns {
            if let Some(p) = &inner.pulse {
                p.shed_hopeless.inc();
            }
            job.reply.resolve(ServeOutcome::ShedHopeless {
                remaining_ns: remaining,
                estimate_ns: ewma_ns as u64,
            });
            continue;
        }

        // Model hot-swap: pick up a newer epoch before dispatching.
        let slot = inner.model.load();
        if slot.version != local_version {
            if let Some(artifact) = &slot.artifact {
                guard.install_artifact_or_degrade(artifact.clone());
            }
            cache.clear();
            local_version = slot.version;
            if let Some(p) = &inner.pulse {
                p.hotswap_installs.inc();
            }
        }
        drop(slot);

        let shift = inner.tighten.load(Ordering::SeqCst);
        let tier = tier_for(
            inner.queues[shard].depth(),
            capacity,
            inner.config.soft_degrade,
            inner.config.hard_degrade,
            shift,
        );

        let started = inner.clock.now_ns();
        {
            // Busy + fresh heartbeat while inside the dispatch, so the
            // supervisor can tell "wedged mid-dispatch" from "idle".
            // Guarded by generation so a fenced-out zombie doesn't
            // clobber its replacement's liveness signals.
            let slot = &inner.slots[shard];
            if slot.generation.load(Ordering::SeqCst) == generation {
                slot.heartbeat_ns.store(started, Ordering::SeqCst);
                slot.busy.store(1, Ordering::SeqCst);
            }
        }
        // The guard already isolates variant panics; this is the
        // backstop for panics from feature evaluation or the dispatch
        // plumbing itself.
        let result = catch_unwind(AssertUnwindSafe(|| {
            dispatch_at_tier(&guard, &mut cache, tier, &job.input)
        }));
        {
            let slot = &inner.slots[shard];
            if slot.generation.load(Ordering::SeqCst) == generation {
                slot.busy.store(0, Ordering::SeqCst);
            }
        }
        let finished = inner.clock.now_ns();
        let dispatch_ns = finished.saturating_sub(started);
        let queue_wait_ns = started.saturating_sub(job.enqueued_ns);

        match result {
            Ok(Ok(d)) => {
                ewma_ns = if ewma_ns == 0.0 {
                    dispatch_ns as f64
                } else {
                    ewma_ns + (dispatch_ns as f64 - ewma_ns) / 8.0
                };
                let deadline_met = !job.meta.deadline.is_expired(finished);
                if let Some(p) = &inner.pulse {
                    p.dispatch_latency_ns.record(dispatch_ns as f64);
                    p.queue_wait_ns.record(queue_wait_ns as f64);
                    p.e2e_latency_ns
                        .record(finished.saturating_sub(job.meta.deadline.issued_ns) as f64);
                    match d.tier {
                        DegradeTier::Full => {}
                        DegradeTier::CachedRegime => p.degrade_cached.inc(),
                        DegradeTier::DefaultOnly => p.degrade_default.inc(),
                    }
                    if !deadline_met {
                        p.deadline_violations.inc();
                    }
                }
                job.reply.resolve(ServeOutcome::Served {
                    variant: d.variant,
                    variant_name: d.variant_name,
                    objective: d.objective,
                    tier: d.tier,
                    queue_wait_ns,
                    dispatch_ns,
                    deadline_met,
                    fell_back: d.fell_back,
                });
            }
            Ok(Err(e)) => {
                job.reply.resolve(ServeOutcome::Failed {
                    error: e.to_string(),
                });
            }
            Err(panic) => {
                let detail = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                if handle_escaped_panic(shard, generation, job, detail, &inner) {
                    break; // the shard is dead; the supervisor takes over
                }
            }
        }
    }
}

/// Account an escaped panic against the request that caused it. In
/// supervised mode the job is parked for re-placement (or quarantined
/// as a poison pill), the shard slot is marked dead with its restart
/// backoff armed, and the worker must exit (returns `true`). In legacy
/// mode the request fails in place and the worker lives on (`false`).
fn handle_escaped_panic<I: Send + Sync + 'static>(
    shard: usize,
    generation: u64,
    mut job: Job<I>,
    detail: String,
    inner: &Arc<FrontInner<I>>,
) -> bool {
    inner.escaped_panics.fetch_add(1, Ordering::SeqCst);
    if let Some(p) = &inner.pulse {
        p.panics.inc();
    }
    inner
        .panic_records
        .lock()
        .expect("panic records")
        .push(PanicRecord {
            shard,
            generation,
            lineage: job.lineage,
            tenant: job.meta.tenant.0,
            priority: format!("{:?}", job.meta.priority),
            detail: detail.clone(),
        });

    let Some(sup) = inner.config.supervision.clone() else {
        job.reply.resolve(ServeOutcome::Failed {
            error: format!(
                "panic escaped the guarded dispatch (request lineage {}, tenant {}): {detail}",
                job.lineage, job.meta.tenant.0
            ),
        });
        return false;
    };

    job.kills += 1;
    if job.kills >= sup.poison_kill_threshold {
        inner.poison_quarantined.fetch_add(1, Ordering::SeqCst);
        if let Some(p) = &inner.pulse {
            p.poison_quarantined.inc();
        }
        inner
            .diagnostics
            .lock()
            .expect("diagnostics")
            .push(diag_poison_quarantine(
                &inner.function,
                job.lineage,
                job.meta.tenant.0,
                job.kills,
            ));
        let kills = job.kills;
        job.reply.resolve(ServeOutcome::Quarantined { kills });
    } else {
        inner.parked.lock().expect("parked").push((shard, job));
    }

    let slot = &inner.slots[shard];
    let restarts = slot.restarts.load(Ordering::SeqCst);
    let backoff = sup
        .restart_backoff_base_ns
        .saturating_mul(1u64 << restarts.min(20));
    slot.next_restart_at_ns.store(
        inner.clock.now_ns().saturating_add(backoff),
        Ordering::SeqCst,
    );
    slot.set_state(ShardState::Dead);
    inner.shard_deaths.fetch_add(1, Ordering::SeqCst);
    if let Some(p) = &inner.pulse {
        p.shard_deaths.inc();
    }
    true
}

/// The supervisor: polls every shard slot, drains and restarts dead
/// shards (within budget and backoff), fences and replaces wedged
/// workers, retires shards that keep dying, and re-places parked work.
fn supervisor_loop<I: Send + Sync + 'static>(inner: Arc<FrontInner<I>>, sup: SupervisorConfig) {
    loop {
        let shutting_down = inner.shutting_down.load(Ordering::SeqCst);
        let now = inner.clock.now_ns();
        for shard in 0..inner.slots.len() {
            let slot = &inner.slots[shard];
            match slot.state() {
                ShardState::Up => {
                    if !shutting_down
                        && slot.busy.load(Ordering::SeqCst) == 1
                        && now.saturating_sub(slot.heartbeat_ns.load(Ordering::SeqCst))
                            > sup.heartbeat_stale_ns
                    {
                        replace_wedged(&inner, &sup, shard, now);
                    }
                }
                ShardState::Dead => {
                    // Rescue queued work first — the restart may still
                    // be in backoff and those requests have deadlines.
                    drain_shard(&inner, shard);
                    let restarts = slot.restarts.load(Ordering::SeqCst);
                    if shutting_down {
                        // No restarts mid-shutdown; the final sweep
                        // rescues anything left.
                    } else if restarts >= sup.restart_budget {
                        retire_shard(&inner, shard, restarts, "restart budget exhausted");
                    } else if now >= slot.next_restart_at_ns.load(Ordering::SeqCst) {
                        restart_shard(&inner, &sup, shard, restarts);
                    }
                }
                ShardState::Retired => {}
            }
        }
        replace_parked(&inner);
        if shutting_down {
            break;
        }
        std::thread::sleep(sup.tick);
    }
}

/// Restart a dead shard: join the exited worker, bump the generation
/// and spawn a replacement re-seeded from the current model epoch.
fn restart_shard<I: Send + Sync + 'static>(
    inner: &Arc<FrontInner<I>>,
    sup: &SupervisorConfig,
    shard: usize,
    restarts: u32,
) {
    if let Some(handle) = inner.worker_handles.lock().expect("worker handles")[shard].take() {
        let _ = handle.join(); // the dead worker already exited
    }
    let slot = &inner.slots[shard];
    let generation = slot.generation.fetch_add(1, Ordering::SeqCst) + 1;
    match spawn_worker(inner, shard, generation) {
        Ok(handle) => {
            inner.worker_handles.lock().expect("worker handles")[shard] = Some(handle);
            slot.restarts.store(restarts + 1, Ordering::SeqCst);
            slot.heartbeat_ns
                .store(inner.clock.now_ns(), Ordering::SeqCst);
            slot.busy.store(0, Ordering::SeqCst);
            slot.set_state(ShardState::Up);
            note_restart(inner, sup, shard, generation, restarts + 1);
        }
        Err(e) => retire_shard(
            inner,
            shard,
            restarts,
            &format!("replacement worker failed to build: {e}"),
        ),
    }
}

/// Fence out a wedged (busy, heartbeat-stale) worker and spawn a
/// replacement on the same queue. The zombie exits on its own the next
/// time it reaches a generation check.
fn replace_wedged<I: Send + Sync + 'static>(
    inner: &Arc<FrontInner<I>>,
    sup: &SupervisorConfig,
    shard: usize,
    now: u64,
) {
    let slot = &inner.slots[shard];
    let restarts = slot.restarts.load(Ordering::SeqCst);
    if restarts >= sup.restart_budget {
        slot.generation.fetch_add(1, Ordering::SeqCst); // fence the zombie
        slot.busy.store(0, Ordering::SeqCst);
        retire_shard(inner, shard, restarts, "wedged with no restart budget left");
        return;
    }
    let generation = slot.generation.fetch_add(1, Ordering::SeqCst) + 1;
    slot.busy.store(0, Ordering::SeqCst);
    slot.heartbeat_ns.store(now, Ordering::SeqCst);
    if let Some(handle) = inner.worker_handles.lock().expect("worker handles")[shard].take() {
        inner
            .zombie_handles
            .lock()
            .expect("zombie handles")
            .push(handle);
    }
    match spawn_worker(inner, shard, generation) {
        Ok(handle) => {
            inner.worker_handles.lock().expect("worker handles")[shard] = Some(handle);
            slot.restarts.store(restarts + 1, Ordering::SeqCst);
            note_restart(inner, sup, shard, generation, restarts + 1);
        }
        Err(e) => retire_shard(
            inner,
            shard,
            restarts,
            &format!("replacement worker failed to build: {e}"),
        ),
    }
}

/// Permanently take a shard out of rotation (`NITRO111`): close and
/// drain its queue, fold its worker handle into the zombie list.
fn retire_shard<I: Send + Sync + 'static>(
    inner: &Arc<FrontInner<I>>,
    shard: usize,
    restarts: u32,
    detail: &str,
) {
    let slot = &inner.slots[shard];
    slot.set_state(ShardState::Retired);
    inner.queues[shard].close();
    drain_shard(inner, shard); // rescue anything that raced in before the close
    inner.shards_retired.fetch_add(1, Ordering::SeqCst);
    if let Some(p) = &inner.pulse {
        p.shard_retired.inc();
    }
    inner
        .diagnostics
        .lock()
        .expect("diagnostics")
        .push(diag_restart_budget(
            &inner.function,
            shard,
            restarts,
            detail,
        ));
    if let Some(handle) = inner.worker_handles.lock().expect("worker handles")[shard].take() {
        inner
            .zombie_handles
            .lock()
            .expect("zombie handles")
            .push(handle);
    }
}

fn note_restart<I: Send + Sync + 'static>(
    inner: &Arc<FrontInner<I>>,
    sup: &SupervisorConfig,
    shard: usize,
    generation: u64,
    restarts: u32,
) {
    inner.shard_restarts.fetch_add(1, Ordering::SeqCst);
    if let Some(p) = &inner.pulse {
        p.shard_restarts.inc();
    }
    inner
        .diagnostics
        .lock()
        .expect("diagnostics")
        .push(diag_shard_restart(
            &inner.function,
            shard,
            generation,
            restarts,
            sup.restart_budget,
        ));
}

/// Build and spawn a replacement worker for `shard`, re-seeded from the
/// current model epoch so it comes up serving the same version its
/// predecessor did.
fn spawn_worker<I: Send + Sync + 'static>(
    inner: &Arc<FrontInner<I>>,
    shard: usize,
    generation: u64,
) -> Result<JoinHandle<()>> {
    let factory = inner
        .factory
        .as_ref()
        .expect("supervised front keeps its factory");
    let cv = catch_unwind(AssertUnwindSafe(|| (factory.make_cv)(shard))).map_err(|_| {
        NitroError::ModelMismatch {
            detail: format!("shard {shard} registration factory panicked while rebuilding"),
        }
    })?;
    if cv.name() != inner.function {
        return Err(NitroError::ModelMismatch {
            detail: format!(
                "shard {shard} rebuilt '{}' but the front serves '{}'",
                cv.name(),
                inner.function
            ),
        });
    }
    let mut guard =
        GuardedVariant::new_sharing(cv, factory.policy.clone(), factory.shared.clone())?;
    // A fresh backoff salt per incarnation keeps restarted shards
    // decorrelated from both their peers and their predecessors.
    guard.set_backoff_salt((shard as u64) ^ (generation << 32));
    let slot = inner.model.load();
    let initial_version = slot.version;
    if let Some(artifact) = &slot.artifact {
        guard.install_artifact_or_degrade(artifact.clone());
    }
    drop(slot);
    let inner = inner.clone();
    std::thread::Builder::new()
        .name(format!("nitro-serve-{shard}-g{generation}"))
        .spawn(move || worker_loop(shard, generation, initial_version, guard, inner))
        .map_err(NitroError::Io)
}

/// Drain every job off a shard's queue and route each back through
/// placement (used for dead and retiring shards, and the shutdown
/// sweep).
fn drain_shard<I: Send + Sync + 'static>(inner: &Arc<FrontInner<I>>, shard: usize) {
    let jobs = inner.queues[shard].drain();
    if jobs.is_empty() {
        return;
    }
    if let Some(p) = &inner.pulse {
        p.drained.add(jobs.len() as u64);
    }
    for job in jobs {
        replace_job(inner, shard, job);
    }
}

/// Re-place every parked job (rescued from dying workers).
fn replace_parked<I: Send + Sync + 'static>(inner: &Arc<FrontInner<I>>) {
    let parked: Vec<(usize, Job<I>)> =
        std::mem::take(&mut *inner.parked.lock().expect("parked jobs"));
    for (shard, job) in parked {
        replace_job(inner, shard, job);
    }
}

/// Route one rescued job back through admission: shed if expired,
/// re-place onto the shallowest live shard under its watermark,
/// otherwise shed as failover. Exactly one outcome, always.
fn replace_job<I: Send + Sync + 'static>(
    inner: &Arc<FrontInner<I>>,
    from_shard: usize,
    job: Job<I>,
) {
    let now = inner.clock.now_ns();
    if job.meta.deadline.is_expired(now) {
        if let Some(p) = &inner.pulse {
            p.shed_expired.inc();
        }
        job.reply.resolve(ServeOutcome::ShedExpired {
            queued_ns: now.saturating_sub(job.enqueued_ns),
        });
        return;
    }
    let capacity = inner.config.queue_capacity.expect("audited Some");
    let shift = inner.tighten.load(Ordering::SeqCst);
    let mut best: Option<(usize, usize)> = None;
    for (i, slot) in inner.slots.iter().enumerate() {
        if slot.state() == ShardState::Up {
            let depth = inner.queues[i].depth();
            if best.is_none_or(|(_, d)| depth < d) {
                best = Some((i, depth));
            }
        }
    }
    if let Some((target, depth)) = best {
        if depth < admission_watermark(capacity, job.meta.priority, shift) {
            let priority = job.meta.priority;
            match inner.queues[target].push(job, priority) {
                Ok(()) => return, // re-placed; it resolves on the new shard
                Err(returned) => return shed_failover(inner, from_shard, returned),
            }
        }
    }
    shed_failover(inner, from_shard, job);
}

fn shed_failover<I: Send + Sync + 'static>(
    inner: &Arc<FrontInner<I>>,
    from_shard: usize,
    job: Job<I>,
) {
    if let Some(p) = &inner.pulse {
        p.shed_failover.inc();
    }
    job.reply.resolve(ServeOutcome::ShedFailover { from_shard });
}

fn dispatch_at_tier<I: Sync>(
    guard: &GuardedVariant<I>,
    cache: &mut RegimeCache,
    tier: DegradeTier,
    input: &I,
) -> Result<Dispatched> {
    match tier {
        DegradeTier::Full => full_dispatch(guard, tier, input),
        DegradeTier::CachedRegime => {
            let (features, _) = guard.inner().evaluate_features(input);
            let fp = regime_fingerprint(&features);
            if let Some(variant) = cache.lookup(fp) {
                // Quarantine still applies in the degraded tiers.
                if !guard.is_quarantined(variant) {
                    if let Ok(objective) = guard.inner().try_run_variant(variant, input) {
                        return Ok(Dispatched {
                            variant,
                            variant_name: guard
                                .inner()
                                .variant(variant)
                                .map(|v| v.name().to_string())
                                .unwrap_or_default(),
                            objective,
                            tier,
                            fell_back: false,
                        });
                    }
                }
            }
            // Miss (or the cached variant failed): one full predict,
            // then remember the regime's winner.
            let d = full_dispatch(guard, tier, input)?;
            cache.insert(fp, d.variant);
            Ok(d)
        }
        DegradeTier::DefaultOnly => {
            let default = guard.inner().default_variant();
            if let Some(v) = default.filter(|&v| !guard.is_quarantined(v)) {
                if let Ok(objective) = guard.inner().try_run_variant(v, input) {
                    return Ok(Dispatched {
                        variant: v,
                        variant_name: guard
                            .inner()
                            .variant(v)
                            .map(|va| va.name().to_string())
                            .unwrap_or_default(),
                        objective,
                        tier,
                        fell_back: false,
                    });
                }
            }
            // Default quarantined or failed: fall back to the guarded
            // cascade rather than failing the request.
            full_dispatch(guard, tier, input)
        }
    }
}

fn full_dispatch<I: Sync>(
    guard: &GuardedVariant<I>,
    tier: DegradeTier,
    input: &I,
) -> Result<Dispatched> {
    let inv = guard.call(input)?;
    Ok(Dispatched {
        variant: inv.variant,
        variant_name: inv.variant_name,
        objective: inv.objective,
        tier,
        fell_back: inv.fell_back,
    })
}
