//! The serving front door: admission, sharded dispatch, shedding,
//! degradation and model hot-swap.
//!
//! ```text
//!                    ┌──────────── ServeFront ────────────┐
//!  submit(req) ──►  admission                             │
//!   │  ├─ deadline already expired?   → reject (expired)  │
//!   │  ├─ tenant token bucket empty?  → reject (tenant)   │
//!   │  └─ shard queue over watermark? → reject (queue)    │
//!   │                                                     │
//!   └─► shard queue (bounded, 3 priority lanes)           │
//!          │                                              │
//!       worker: dequeue                                   │
//!          ├─ deadline expired while queued → shed        │
//!          ├─ remaining < service estimate  → shed        │
//!          ├─ model epoch changed → hot-swap install      │
//!          └─ dispatch at the pressure tier:              │
//!               Full → CachedRegime → DefaultOnly         │
//!                      (guarded cascade underneath)       │
//! ```
//!
//! Work is **never** started on a request whose deadline has passed —
//! expiry is checked at admission and re-checked at dequeue, and the
//! optional hopeless-shed drops requests whose remaining budget is
//! below the shard's smoothed service-time estimate. Every decision
//! increments a [`ServePulse`](crate::ServePulse) counter.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use nitro_core::{CodeVariant, ModelArtifact, NitroError, RequestMeta, Result};
use nitro_guard::{GuardPolicy, GuardedVariant};
use nitro_pulse::{PulseAlert, PulseRegistry};
use nitro_store::StagedPromotion;

use crate::admission::TenantBuckets;
use crate::audit::audit_serve_config;
use crate::clock::ServeClock;
use crate::degrade::{admission_watermark, regime_fingerprint, tier_for, DegradeTier, RegimeCache};
use crate::epoch::EpochCell;
use crate::metrics::ServePulse;
use crate::queue::ShardQueue;

/// Front-door configuration. Audited at startup
/// ([`audit_serve_config`]); error-severity findings (`NITRO100`–`102`)
/// refuse to start.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Worker shards (each owns a `CodeVariant` + its compiled model).
    pub shards: usize,
    /// Per-shard queue bound. `None` is an unbounded queue — refused at
    /// startup (`NITRO100`): overload must shed, not back up.
    pub queue_capacity: Option<usize>,
    /// Tenant bucket slots (tenants hash onto them).
    pub tenant_slots: usize,
    /// Tenant refill rate, tokens per second.
    pub tenant_rate_per_s: f64,
    /// Tenant burst size, tokens.
    pub tenant_burst: u32,
    /// Queue fraction where the cached-regime tier engages.
    pub soft_degrade: f64,
    /// Queue fraction where the default-only tier engages.
    pub hard_degrade: f64,
    /// Cap on SLO-driven admission tightening (each level halves rates
    /// and watermarks).
    pub max_tighten: u32,
    /// Deadline budget the audit compares against the expected service
    /// floor (`NITRO103`), ns.
    pub default_budget_ns: u64,
    /// Observed p99 dispatch floor from a calibration run, if any (ns).
    pub expected_p99_floor_ns: Option<f64>,
    /// Shed queued requests whose remaining budget is below the shard's
    /// smoothed service-time estimate.
    pub hopeless_shedding: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            // One shard per hardware thread, so the default never trips
            // the NITRO104 oversharding warning.
            shards: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            queue_capacity: Some(64),
            tenant_slots: 64,
            tenant_rate_per_s: 10_000.0,
            tenant_burst: 64,
            soft_degrade: 0.5,
            hard_degrade: 0.8,
            max_tighten: 3,
            default_budget_ns: 5_000_000,
            expected_p99_floor_ns: None,
            hopeless_shedding: true,
        }
    }
}

/// Why `submit` turned a request away (synchronously, before it cost a
/// queue slot).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejection {
    /// The deadline had already passed at submission.
    DeadlineExpired,
    /// The tenant's token bucket was empty.
    TenantThrottled,
    /// Every candidate shard was over this priority's watermark.
    QueueFull {
        /// The shallowest shard considered.
        shard: usize,
        /// Its depth at rejection time.
        depth: usize,
    },
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::DeadlineExpired => write!(f, "deadline expired before admission"),
            Rejection::TenantThrottled => write!(f, "tenant token bucket empty"),
            Rejection::QueueFull { shard, depth } => {
                write!(f, "queue full (shard {shard} at depth {depth})")
            }
        }
    }
}

/// What happened to an admitted request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeOutcome {
    /// Dispatched and completed.
    Served {
        /// The variant that ran.
        variant: usize,
        /// Its name.
        variant_name: String,
        /// Objective it returned.
        objective: f64,
        /// The degradation tier it was served at.
        tier: DegradeTier,
        /// Admission → dequeue, ns.
        queue_wait_ns: u64,
        /// Dequeue → completion, ns.
        dispatch_ns: u64,
        /// Whether completion beat the deadline (the bench gate
        /// requires this to always be true).
        deadline_met: bool,
        /// Whether the guarded cascade fell back past its first choice.
        fell_back: bool,
    },
    /// Shed at dequeue: the deadline passed while queued. No work was
    /// started.
    ShedExpired {
        /// How long it sat queued, ns.
        queued_ns: u64,
    },
    /// Shed at dequeue: remaining budget below the service estimate.
    /// No work was started.
    ShedHopeless {
        /// Budget left at dequeue, ns.
        remaining_ns: u64,
        /// The shard's smoothed service estimate, ns.
        estimate_ns: u64,
    },
    /// Dispatch failed (cascade exhausted) — the error, stringified.
    Failed {
        /// What went wrong.
        error: String,
    },
}

/// The requester's handle on an admitted request.
#[derive(Debug)]
pub struct ServeTicket {
    rx: Receiver<ServeOutcome>,
}

impl ServeTicket {
    /// Block until the shard resolves this request.
    pub fn wait(self) -> ServeOutcome {
        self.rx.recv().unwrap_or(ServeOutcome::Failed {
            error: "shard dropped the request (worker exited)".into(),
        })
    }
}

/// The model slot workers read per request and promotions publish into.
#[derive(Debug)]
pub struct ModelSlot {
    /// Monotonic publication number (0 = the initial, possibly empty
    /// slot).
    pub version: u64,
    /// The artifact to serve with; `None` leaves shards degraded.
    pub artifact: Option<ModelArtifact>,
}

struct Job<I> {
    input: I,
    meta: RequestMeta,
    enqueued_ns: u64,
    reply: SyncSender<ServeOutcome>,
}

struct FrontInner<I> {
    config: ServeConfig,
    function: String,
    clock: ServeClock,
    queues: Vec<ShardQueue<Job<I>>>,
    tenants: TenantBuckets,
    tighten: AtomicU32,
    rr: AtomicU64,
    model: EpochCell<ModelSlot>,
    publish_seq: AtomicU64,
    pulse: Option<Arc<ServePulse>>,
    escaped_panics: AtomicU64,
}

/// Aggregate outcome of a front door's lifetime, from
/// [`ServeFront::shutdown`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSummary {
    /// Panics that escaped the guarded dispatch into a worker (0 in a
    /// healthy system; the guard absorbs variant panics).
    pub escaped_panics: u64,
    /// Worker threads that exited cleanly.
    pub workers_joined: usize,
}

/// An overload-safe, sharded serving front door over one tuned
/// function. See the module docs for the pipeline.
pub struct ServeFront<I: Send + Sync + 'static> {
    inner: Arc<FrontInner<I>>,
    workers: Vec<JoinHandle<()>>,
}

impl<I: Send + Sync + 'static> ServeFront<I> {
    /// Build and start the front door.
    ///
    /// `make_cv` constructs one registration per shard (shard index
    /// passed in); every shard must register the same function. Guards
    /// share one breaker/health/stats bank
    /// ([`GuardedVariant::new_sharing`]), so a variant quarantined on
    /// one shard is quarantined on all. The configuration audit
    /// (`NITRO100`–`NITRO104`) runs first and error findings refuse
    /// startup; attach a `PulseRegistry` to get the `serve.*` metrics.
    pub fn start(
        config: ServeConfig,
        policy: GuardPolicy,
        clock: ServeClock,
        registry: Option<&PulseRegistry>,
        make_cv: impl Fn(usize) -> CodeVariant<I>,
    ) -> Result<Self> {
        let cv0 = make_cv(0);
        let function = cv0.name().to_string();
        let diagnostics = audit_serve_config(&function, &config, cv0.default_variant().is_some());
        if nitro_audit::has_errors(&diagnostics) {
            return Err(NitroError::Audit { diagnostics });
        }
        let capacity = config.queue_capacity.expect("audited Some");
        debug_assert!(capacity > 0, "audited nonzero");

        let mut guards = Vec::with_capacity(config.shards);
        let first = GuardedVariant::new(cv0, policy.clone())?;
        let shared = first.shared();
        guards.push(first);
        for shard in 1..config.shards.max(1) {
            let cv = make_cv(shard);
            if cv.name() != function {
                return Err(NitroError::ModelMismatch {
                    detail: format!(
                        "shard {shard} registered '{}' but shard 0 registered '{function}'",
                        cv.name()
                    ),
                });
            }
            guards.push(GuardedVariant::new_sharing(
                cv,
                policy.clone(),
                shared.clone(),
            )?);
        }

        let pulse = registry.map(|r| ServePulse::register(r, &function));
        let inner = Arc::new(FrontInner {
            queues: (0..guards.len()).map(|_| ShardQueue::default()).collect(),
            tenants: TenantBuckets::new(
                config.tenant_slots,
                config.tenant_rate_per_s,
                config.tenant_burst,
            ),
            tighten: AtomicU32::new(0),
            rr: AtomicU64::new(0),
            model: EpochCell::new(Arc::new(ModelSlot {
                version: 0,
                artifact: None,
            })),
            publish_seq: AtomicU64::new(0),
            pulse,
            escaped_panics: AtomicU64::new(0),
            config,
            function,
            clock,
        });

        let workers = guards
            .into_iter()
            .enumerate()
            .map(|(shard, guard)| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("nitro-serve-{shard}"))
                    .spawn(move || worker_loop(shard, guard, inner))
                    .expect("spawn serve worker")
            })
            .collect();

        Ok(Self { inner, workers })
    }

    /// The function this front door serves.
    pub fn function(&self) -> &str {
        &self.inner.function
    }

    /// Submit a request. Admission is synchronous and lock-free: the
    /// result is either a ticket (admitted — a worker will resolve it)
    /// or the reason it was turned away.
    pub fn submit(
        &self,
        input: I,
        meta: RequestMeta,
    ) -> std::result::Result<ServeTicket, Rejection> {
        let inner = &*self.inner;
        let now = inner.clock.now_ns();
        if meta.deadline.is_expired(now) {
            if let Some(p) = &inner.pulse {
                p.rejected_expired.inc();
            }
            return Err(Rejection::DeadlineExpired);
        }
        let shift = inner.tighten.load(Ordering::SeqCst);
        if !inner.tenants.try_take(meta.tenant, now, shift) {
            if let Some(p) = &inner.pulse {
                p.rejected_tenant.inc();
            }
            return Err(Rejection::TenantThrottled);
        }
        // Power of two choices on queue depth.
        let n = inner.queues.len();
        let a = (inner.rr.fetch_add(1, Ordering::Relaxed) as usize) % n;
        let b = (a + 1 + (meta.tenant.0 as usize)) % n;
        let (da, db) = (inner.queues[a].depth(), inner.queues[b].depth());
        let (shard, depth) = if da <= db { (a, da) } else { (b, db) };

        let capacity = inner.config.queue_capacity.expect("audited Some");
        if depth >= admission_watermark(capacity, meta.priority, shift) {
            if let Some(p) = &inner.pulse {
                p.rejected_queue.inc();
            }
            return Err(Rejection::QueueFull { shard, depth });
        }

        let (reply, rx) = sync_channel(1);
        let job = Job {
            input,
            meta,
            enqueued_ns: now,
            reply,
        };
        match inner.queues[shard].push(job, meta.priority) {
            Ok(()) => {
                if let Some(p) = &inner.pulse {
                    p.admitted.inc();
                }
                Ok(ServeTicket { rx })
            }
            // Shutting down: the queue is closed.
            Err(_) => Err(Rejection::QueueFull { shard, depth }),
        }
    }

    /// Publish a model artifact to every shard via the epoch cell.
    /// Lock-free for readers: workers pick it up on their next request.
    /// Returns the publication version.
    pub fn publish_artifact(&self, artifact: ModelArtifact) -> u64 {
        let version = self.inner.publish_seq.fetch_add(1, Ordering::SeqCst) + 1;
        self.inner.model.publish(Arc::new(ModelSlot {
            version,
            artifact: Some(artifact),
        }));
        version
    }

    /// Swap-on-promote glue: publish a [`StagedPromotion`]'s current
    /// incumbent. Call it after `promote_now` / `observe` report a
    /// promotion (or rollback — this republishes whatever is current).
    pub fn publish_promotion(&self, promotion: &StagedPromotion) -> u64 {
        self.publish_artifact(promotion.current().clone())
    }

    /// The current model publication version (0 = none published).
    pub fn model_version(&self) -> u64 {
        self.inner.publish_seq.load(Ordering::SeqCst)
    }

    /// Feed a pulse alert into admission: a Page-severity latency
    /// regression on this function tightens admission one level
    /// (halving tenant rates and queue watermarks), up to
    /// `max_tighten`. Returns true when the alert applied.
    pub fn ingest_alert(&self, alert: &PulseAlert) -> bool {
        if !alert.is_page_latency_for(&self.inner.function) {
            return false;
        }
        let max = self.inner.config.max_tighten;
        let _ = self
            .inner
            .tighten
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |t| {
                (t < max).then_some(t + 1)
            });
        if let Some(p) = &self.inner.pulse {
            p.tightened
                .set(f64::from(self.inner.tighten.load(Ordering::SeqCst)));
        }
        true
    }

    /// Relax admission one tighten level (the SLO stopped burning).
    pub fn relax(&self) {
        let _ = self
            .inner
            .tighten
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |t| t.checked_sub(1));
        if let Some(p) = &self.inner.pulse {
            p.tightened
                .set(f64::from(self.inner.tighten.load(Ordering::SeqCst)));
        }
    }

    /// Current tighten level (0 = wide open).
    pub fn tighten_level(&self) -> u32 {
        self.inner.tighten.load(Ordering::SeqCst)
    }

    /// Current depth of every shard queue.
    pub fn queue_depths(&self) -> Vec<usize> {
        self.inner.queues.iter().map(|q| q.depth()).collect()
    }

    /// Close the queues, drain remaining work, join every worker.
    pub fn shutdown(self) -> ServeSummary {
        for q in &self.inner.queues {
            q.close();
        }
        let mut joined = 0;
        for w in self.workers {
            if w.join().is_ok() {
                joined += 1;
            }
        }
        ServeSummary {
            escaped_panics: self.inner.escaped_panics.load(Ordering::SeqCst),
            workers_joined: joined,
        }
    }
}

/// What one dispatch produced (worker-internal).
struct Dispatched {
    variant: usize,
    variant_name: String,
    objective: f64,
    tier: DegradeTier,
    fell_back: bool,
}

fn worker_loop<I: Send + Sync + 'static>(
    shard: usize,
    mut guard: GuardedVariant<I>,
    inner: Arc<FrontInner<I>>,
) {
    let mut cache = RegimeCache::default();
    let mut local_version = 0u64;
    // Smoothed service-time estimate (EWMA, α = 1/8), ns. Zero until
    // the first completion; hopeless-shedding stays off until then.
    let mut ewma_ns = 0.0f64;
    let capacity = inner.config.queue_capacity.expect("audited Some");

    while let Some(job) = inner.queues[shard].pop() {
        let now = inner.clock.now_ns();

        // Shed *before* dispatch — work is never started for a request
        // that can no longer meet its deadline.
        if job.meta.deadline.is_expired(now) {
            if let Some(p) = &inner.pulse {
                p.shed_expired.inc();
            }
            let _ = job.reply.send(ServeOutcome::ShedExpired {
                queued_ns: now.saturating_sub(job.enqueued_ns),
            });
            continue;
        }
        let remaining = job.meta.deadline.remaining_ns(now);
        if inner.config.hopeless_shedding && ewma_ns > 0.0 && (remaining as f64) < ewma_ns {
            if let Some(p) = &inner.pulse {
                p.shed_hopeless.inc();
            }
            let _ = job.reply.send(ServeOutcome::ShedHopeless {
                remaining_ns: remaining,
                estimate_ns: ewma_ns as u64,
            });
            continue;
        }

        // Model hot-swap: pick up a newer epoch before dispatching.
        let slot = inner.model.load();
        if slot.version != local_version {
            if let Some(artifact) = &slot.artifact {
                guard.install_artifact_or_degrade(artifact.clone());
            }
            cache.clear();
            local_version = slot.version;
            if let Some(p) = &inner.pulse {
                p.hotswap_installs.inc();
            }
        }
        drop(slot);

        let shift = inner.tighten.load(Ordering::SeqCst);
        let tier = tier_for(
            inner.queues[shard].depth(),
            capacity,
            inner.config.soft_degrade,
            inner.config.hard_degrade,
            shift,
        );

        let started = inner.clock.now_ns();
        // The guard already isolates variant panics; this is the
        // backstop that keeps a shard alive if one escapes anyway.
        let result = catch_unwind(AssertUnwindSafe(|| {
            dispatch_at_tier(&guard, &mut cache, tier, &job.input)
        }));
        let finished = inner.clock.now_ns();
        let dispatch_ns = finished.saturating_sub(started);
        let queue_wait_ns = started.saturating_sub(job.enqueued_ns);

        match result {
            Ok(Ok(d)) => {
                ewma_ns = if ewma_ns == 0.0 {
                    dispatch_ns as f64
                } else {
                    ewma_ns + (dispatch_ns as f64 - ewma_ns) / 8.0
                };
                let deadline_met = !job.meta.deadline.is_expired(finished);
                if let Some(p) = &inner.pulse {
                    p.dispatch_latency_ns.record(dispatch_ns as f64);
                    p.queue_wait_ns.record(queue_wait_ns as f64);
                    p.e2e_latency_ns
                        .record(finished.saturating_sub(job.meta.deadline.issued_ns) as f64);
                    match d.tier {
                        DegradeTier::Full => {}
                        DegradeTier::CachedRegime => p.degrade_cached.inc(),
                        DegradeTier::DefaultOnly => p.degrade_default.inc(),
                    }
                    if !deadline_met {
                        p.deadline_violations.inc();
                    }
                }
                let _ = job.reply.send(ServeOutcome::Served {
                    variant: d.variant,
                    variant_name: d.variant_name,
                    objective: d.objective,
                    tier: d.tier,
                    queue_wait_ns,
                    dispatch_ns,
                    deadline_met,
                    fell_back: d.fell_back,
                });
            }
            Ok(Err(e)) => {
                let _ = job.reply.send(ServeOutcome::Failed {
                    error: e.to_string(),
                });
            }
            Err(panic) => {
                inner.escaped_panics.fetch_add(1, Ordering::SeqCst);
                if let Some(p) = &inner.pulse {
                    p.panics.inc();
                }
                let detail = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                let _ = job.reply.send(ServeOutcome::Failed {
                    error: format!("panic escaped the guarded dispatch: {detail}"),
                });
            }
        }
    }
}

fn dispatch_at_tier<I: Sync>(
    guard: &GuardedVariant<I>,
    cache: &mut RegimeCache,
    tier: DegradeTier,
    input: &I,
) -> Result<Dispatched> {
    match tier {
        DegradeTier::Full => full_dispatch(guard, tier, input),
        DegradeTier::CachedRegime => {
            let (features, _) = guard.inner().evaluate_features(input);
            let fp = regime_fingerprint(&features);
            if let Some(variant) = cache.lookup(fp) {
                // Quarantine still applies in the degraded tiers.
                if !guard.is_quarantined(variant) {
                    if let Ok(objective) = guard.inner().try_run_variant(variant, input) {
                        return Ok(Dispatched {
                            variant,
                            variant_name: guard
                                .inner()
                                .variant(variant)
                                .map(|v| v.name().to_string())
                                .unwrap_or_default(),
                            objective,
                            tier,
                            fell_back: false,
                        });
                    }
                }
            }
            // Miss (or the cached variant failed): one full predict,
            // then remember the regime's winner.
            let d = full_dispatch(guard, tier, input)?;
            cache.insert(fp, d.variant);
            Ok(d)
        }
        DegradeTier::DefaultOnly => {
            let default = guard.inner().default_variant();
            if let Some(v) = default.filter(|&v| !guard.is_quarantined(v)) {
                if let Ok(objective) = guard.inner().try_run_variant(v, input) {
                    return Ok(Dispatched {
                        variant: v,
                        variant_name: guard
                            .inner()
                            .variant(v)
                            .map(|va| va.name().to_string())
                            .unwrap_or_default(),
                        objective,
                        tier,
                        fell_back: false,
                    });
                }
            }
            // Default quarantined or failed: fall back to the guarded
            // cascade rather than failing the request.
            full_dispatch(guard, tier, input)
        }
    }
}

fn full_dispatch<I: Sync>(
    guard: &GuardedVariant<I>,
    tier: DegradeTier,
    input: &I,
) -> Result<Dispatched> {
    let inv = guard.call(input)?;
    Ok(Dispatched {
        variant: inv.variant,
        variant_name: inv.variant_name,
        objective: inv.objective,
        tier,
        fell_back: inv.fell_back,
    })
}
