//! Admission control: per-tenant token buckets and SLO-driven
//! tightening.
//!
//! The front door admits a request only when (a) the tenant's token
//! bucket has a token and (b) the chosen shard's queue is below the
//! priority-scaled watermark (checked in `front.rs`). Both checks are
//! lock-free; a rejected request costs two atomic reads and never
//! touches a queue.
//!
//! Tightening: when a latency SLO burns (a Page-severity
//! [`nitro_pulse::PulseAlert`] on this function), the front door raises
//! a global *tighten shift* that halves every tenant's effective refill
//! rate and every admission watermark per level — shedding load before
//! the watchdog has to roll a promotion back.

use std::sync::atomic::{AtomicU64, Ordering};

use nitro_core::TenantId;

/// Micro-tokens per token: bucket arithmetic is integer, in millionths.
const MICRO: u64 = 1_000_000;

/// A lock-free token bucket. Refill is lazy: the taker who observes
/// elapsed time claims it with a CAS on `last_refill_ns` and credits
/// the bucket; takers race on a saturating `fetch_update` for the
/// token itself.
#[derive(Debug)]
pub struct TokenBucket {
    micro_tokens: AtomicU64,
    last_refill_ns: AtomicU64,
    rate_micro_per_ns: f64,
    burst_micro: u64,
}

impl TokenBucket {
    /// A full bucket: `rate_per_s` tokens per second, holding at most
    /// `burst` tokens.
    pub fn new(rate_per_s: f64, burst: u32) -> Self {
        Self {
            micro_tokens: AtomicU64::new(u64::from(burst) * MICRO),
            last_refill_ns: AtomicU64::new(0),
            rate_micro_per_ns: rate_per_s.max(0.0) * MICRO as f64 / 1e9,
            burst_micro: u64::from(burst) * MICRO,
        }
    }

    /// Take one token (or `2^tighten_shift` tokens while tightened) at
    /// clock reading `now_ns`. Lock-free; false when the bucket lacks
    /// the tokens.
    pub fn try_take(&self, now_ns: u64, tighten_shift: u32) -> bool {
        self.refill(now_ns);
        let cost = MICRO << tighten_shift.min(32);
        self.micro_tokens
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |have| {
                have.checked_sub(cost)
            })
            .is_ok()
    }

    /// Tokens currently available (floor).
    pub fn available(&self, now_ns: u64) -> u64 {
        self.refill(now_ns);
        self.micro_tokens.load(Ordering::SeqCst) / MICRO
    }

    fn refill(&self, now_ns: u64) {
        let last = self.last_refill_ns.load(Ordering::SeqCst);
        if now_ns <= last {
            return;
        }
        // Claim the elapsed window; the winner credits it, losers have
        // nothing left to credit.
        if self
            .last_refill_ns
            .compare_exchange(last, now_ns, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return;
        }
        let credit = ((now_ns - last) as f64 * self.rate_micro_per_ns) as u64;
        let burst = self.burst_micro;
        let _ = self
            .micro_tokens
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |have| {
                Some(have.saturating_add(credit).min(burst))
            });
    }
}

/// Fixed-size bank of tenant buckets. Tenants hash onto slots, so
/// memory is bounded however many tenant ids traffic carries; colliding
/// tenants share a bucket (coarse but safe — collisions throttle
/// early, never admit extra).
#[derive(Debug)]
pub struct TenantBuckets {
    slots: Vec<TokenBucket>,
}

impl TenantBuckets {
    /// `slots` buckets, each `rate_per_s`/`burst`.
    pub fn new(slots: usize, rate_per_s: f64, burst: u32) -> Self {
        Self {
            slots: (0..slots.max(1))
                .map(|_| TokenBucket::new(rate_per_s, burst))
                .collect(),
        }
    }

    /// The bucket serving this tenant.
    pub fn bucket(&self, tenant: TenantId) -> &TokenBucket {
        // Fibonacci hash spreads dense tenant ids across slots.
        let h = (u64::from(tenant.0)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.slots[(h >> 32) as usize % self.slots.len()]
    }

    /// Take a token for this tenant at `now_ns`.
    pub fn try_take(&self, tenant: TenantId, now_ns: u64, tighten_shift: u32) -> bool {
        self.bucket(tenant).try_take(now_ns, tighten_shift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_starts_full_and_drains_to_empty() {
        let b = TokenBucket::new(10.0, 3);
        assert!(b.try_take(0, 0));
        assert!(b.try_take(0, 0));
        assert!(b.try_take(0, 0));
        assert!(!b.try_take(0, 0), "burst of 3 exhausted");
    }

    #[test]
    fn bucket_refills_at_rate_and_caps_at_burst() {
        let b = TokenBucket::new(10.0, 3); // one token per 100ms
        for _ in 0..3 {
            assert!(b.try_take(0, 0));
        }
        assert!(!b.try_take(50_000_000, 0), "50ms: half a token");
        assert!(b.try_take(100_000_000, 0), "100ms: one token refilled");
        // A long quiet period refills to burst, not beyond.
        assert_eq!(b.available(100_000_000_000), 3);
    }

    #[test]
    fn tighten_shift_doubles_the_cost_per_level() {
        let b = TokenBucket::new(1000.0, 4);
        assert!(b.try_take(0, 2), "cost 4 from a burst of 4");
        assert!(!b.try_take(0, 2), "empty now");
        assert!(!b.try_take(0, 0), "no single token left either");
    }

    #[test]
    fn tenants_hash_to_stable_buckets() {
        let bank = TenantBuckets::new(8, 1000.0, 2);
        let a = bank.bucket(TenantId(1)) as *const _;
        assert_eq!(a, bank.bucket(TenantId(1)) as *const _, "stable mapping");
        // Draining tenant 1 must not starve every other tenant: at
        // least one other tenant id maps to a different slot.
        assert!(bank.try_take(TenantId(1), 0, 0));
        assert!(bank.try_take(TenantId(1), 0, 0));
        assert!(!bank.try_take(TenantId(1), 0, 0));
        assert!((2..20).any(|t| bank.try_take(TenantId(t), 0, 0)));
    }
}
