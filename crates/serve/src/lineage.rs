//! Request-lineage conservation: every admitted request terminates in
//! exactly one accounted outcome.
//!
//! The front door promises that admission is the only place a request
//! can silently not-happen — once `submit` returns a ticket, the
//! request *will* resolve, even if the shard holding it panics, is
//! fenced out as wedged, or is retired. The [`ConservationLedger`]
//! makes that promise checkable: `submit` counts an admission, every
//! resolution path counts exactly one terminal, and a reply slot that
//! is dropped without resolving counts a **loss** (which is a bug, and
//! surfaces as `NITRO114` at shutdown). The chaos harness
//! (`chaos_serve_report`) gates on [`LineageAccounting::is_conserved`]
//! after every campaign.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::Serialize;

/// Lock-free terminal-outcome counters for one front door. Updated on
/// the admission and resolution paths; snapshot once the workers have
/// drained (a mid-flight snapshot legitimately shows
/// `admitted > terminals` for requests still in queues).
#[derive(Debug, Default)]
pub struct ConservationLedger {
    /// Requests admitted past both admission gates.
    pub admitted: AtomicU64,
    /// Resolved: dispatched and completed.
    pub served: AtomicU64,
    /// Resolved: shed because the deadline expired while queued.
    pub shed_expired: AtomicU64,
    /// Resolved: shed because the remaining budget could not beat the
    /// service estimate.
    pub shed_hopeless: AtomicU64,
    /// Resolved: drained off a dead shard with nowhere live to go.
    pub shed_failover: AtomicU64,
    /// Resolved: dispatch failed (cascade exhausted or panic in legacy
    /// mode).
    pub failed: AtomicU64,
    /// Resolved: quarantined as a poison pill after killing shards.
    pub quarantined: AtomicU64,
    /// Reply slots dropped without resolving — always a bug
    /// (`NITRO114`).
    pub lost: AtomicU64,
}

impl ConservationLedger {
    /// A fresh ledger with every counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot the counters. Meaningful as a conservation check only
    /// once no request is in flight (after shutdown's final sweep).
    pub fn snapshot(&self) -> LineageAccounting {
        LineageAccounting {
            admitted: self.admitted.load(Ordering::SeqCst),
            served: self.served.load(Ordering::SeqCst),
            shed_expired: self.shed_expired.load(Ordering::SeqCst),
            shed_hopeless: self.shed_hopeless.load(Ordering::SeqCst),
            shed_failover: self.shed_failover.load(Ordering::SeqCst),
            failed: self.failed.load(Ordering::SeqCst),
            quarantined: self.quarantined.load(Ordering::SeqCst),
            lost: self.lost.load(Ordering::SeqCst),
        }
    }
}

/// A point-in-time copy of a [`ConservationLedger`], carried in the
/// [`ServeSummary`](crate::ServeSummary) and serialized by the chaos
/// harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct LineageAccounting {
    /// Requests admitted past both admission gates.
    pub admitted: u64,
    /// Dispatched and completed.
    pub served: u64,
    /// Shed at dequeue: deadline expired while queued.
    pub shed_expired: u64,
    /// Shed at dequeue: remaining budget below the service estimate.
    pub shed_hopeless: u64,
    /// Shed during failover off a dead shard.
    pub shed_failover: u64,
    /// Dispatch failed.
    pub failed: u64,
    /// Quarantined as a poison pill.
    pub quarantined: u64,
    /// Dropped without an accounted outcome (must be 0).
    pub lost: u64,
}

impl LineageAccounting {
    /// Sum of every terminal outcome.
    pub fn terminals(&self) -> u64 {
        self.served
            + self.shed_expired
            + self.shed_hopeless
            + self.shed_failover
            + self.failed
            + self.quarantined
    }

    /// The conservation invariant: nothing lost, and every admitted
    /// request resolved in exactly one terminal.
    pub fn is_conserved(&self) -> bool {
        self.lost == 0 && self.admitted == self.terminals()
    }

    /// Human-readable violations (empty when conserved).
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if self.lost > 0 {
            v.push(format!(
                "{} request(s) dropped without an accounted outcome",
                self.lost
            ));
        }
        let terminals = self.terminals();
        if self.admitted != terminals {
            v.push(format!(
                "admitted {} != terminal outcomes {} (served {} + shed_expired {} + \
                 shed_hopeless {} + shed_failover {} + failed {} + quarantined {})",
                self.admitted,
                terminals,
                self.served,
                self.shed_expired,
                self.shed_hopeless,
                self.shed_failover,
                self.failed,
                self.quarantined
            ));
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conservation_requires_exactly_one_terminal_per_admission() {
        let ledger = ConservationLedger::new();
        ledger.admitted.fetch_add(3, Ordering::SeqCst);
        ledger.served.fetch_add(2, Ordering::SeqCst);
        let mid = ledger.snapshot();
        assert!(!mid.is_conserved(), "one request still unresolved");
        assert_eq!(mid.violations().len(), 1);

        ledger.shed_failover.fetch_add(1, Ordering::SeqCst);
        let done = ledger.snapshot();
        assert!(done.is_conserved(), "{:?}", done.violations());
        assert!(done.violations().is_empty());
    }

    #[test]
    fn a_lost_request_is_a_violation_even_when_counts_balance() {
        let ledger = ConservationLedger::new();
        ledger.admitted.fetch_add(1, Ordering::SeqCst);
        ledger.served.fetch_add(1, Ordering::SeqCst);
        ledger.lost.fetch_add(1, Ordering::SeqCst);
        let snap = ledger.snapshot();
        assert!(!snap.is_conserved());
        assert!(snap.violations()[0].contains("dropped without"));
    }
}
