//! # nitro-bench — experiment harnesses for every table and figure
//!
//! Each binary regenerates one piece of the paper's evaluation:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig4_inventory` | Figure 4 — benchmark/variant/feature inventory |
//! | `fig5_variants` | Figure 5 — per-variant average % of best + Nitro |
//! | `fig6_nitro` | Figure 6 — Nitro vs exhaustive search (+ solver convergence stats, §V-A) |
//! | `fig7_incremental` | Figure 7 — incremental-tuning performance vs iterations |
//! | `fig8_features` | Figure 8 — feature subsets: performance and evaluation overhead |
//! | `bfs_hybrid` | §V-A — Nitro-tuned BFS vs the dynamic Hybrid variant |
//! | `ablation_classifiers` | extension — SVM vs kNN vs decision tree across benchmarks |
//! | `ablation_devices` | extension — retuning for a different simulated device |
//!
//! Run them with, e.g.:
//!
//! ```text
//! cargo run -p nitro-bench --release --bin fig6_nitro
//! NITRO_SCALE=small cargo run -p nitro-bench --bin fig6_nitro   # quick pass
//! ```
//!
//! The Criterion benches under `benches/` measure framework overheads
//! (feature evaluation, model prediction, dispatch) and per-kernel
//! simulator throughput.

pub mod error;
pub mod harness;
pub mod load;

pub use error::{BenchError, BenchResult};
pub use harness::*;
pub use load::{LoadPhase, ZipfSampler};
