//! Shared experiment-harness machinery: suite construction, profile
//! caching and evaluation plumbing used by every figure binary.

use std::path::PathBuf;

use nitro_core::{CodeVariant, Context, StoppingCriterion, TrainedModel};
use nitro_simt::DeviceConfig;
use nitro_tuner::{
    evaluate_fixed_variant, evaluate_model, Autotuner, EvalSummary, ProfileTable, TuneReport,
};

use crate::error::BenchResult;

/// Seed every collection in the harness derives from — change it and all
/// generated "UFL matrices", graphs and key sequences change together.
pub const COLLECTION_SEED: u64 = 0x0417_2014;

/// Harness configuration, read from the environment.
#[derive(Debug, Clone, Copy)]
pub struct SuiteSpec {
    /// Use miniature collections (CI-sized) instead of paper-sized ones.
    pub small: bool,
    /// Collection seed.
    pub seed: u64,
    /// Cache profile tables under `target/nitro-cache`.
    pub cache: bool,
}

impl SuiteSpec {
    /// Read `NITRO_SCALE` (`small` | `full`, default `full`) and
    /// `NITRO_NO_CACHE`.
    pub fn from_env() -> Self {
        let small = std::env::var("NITRO_SCALE")
            .map(|v| v == "small")
            .unwrap_or(false);
        let cache = std::env::var("NITRO_NO_CACHE").is_err();
        Self {
            small,
            seed: COLLECTION_SEED,
            cache,
        }
    }

    /// Miniature configuration for tests.
    pub fn small() -> Self {
        Self {
            small: true,
            seed: COLLECTION_SEED,
            cache: false,
        }
    }
}

/// Everything the figure binaries need from one tuned benchmark.
pub struct SuiteOutcome {
    /// Benchmark name ("spmv", "solvers", "bfs", "histogram", "sort").
    pub name: String,
    /// Variant names in label order.
    pub variant_names: Vec<String>,
    /// "Always run variant v" evaluation, per variant (Figure 5 bars).
    pub fixed: Vec<EvalSummary>,
    /// The Nitro-tuned selector's evaluation (Figures 5–6).
    pub nitro: EvalSummary,
    /// Tuning metadata.
    pub tune: TuneReport,
    /// The profiled test set (reused by follow-up analyses).
    pub test_table: ProfileTable,
    /// The trained model.
    pub model: TrainedModel,
    /// Default variant index (constraint fallback target).
    pub default_variant: Option<usize>,
    /// Training-set profile table (full feature set), for retraining
    /// studies.
    pub train_table: ProfileTable,
}

/// Directory used for cached profile tables.
pub fn cache_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/nitro-cache");
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Build (or load from cache) a profile table for `inputs`.
pub fn cached_table<I: Send + Sync>(
    tag: &str,
    cv: &CodeVariant<I>,
    inputs: &[I],
    cache: bool,
) -> ProfileTable {
    let path = cache_dir().join(format!("{tag}.table.json"));
    if cache {
        if let Ok(text) = std::fs::read_to_string(&path) {
            if let Ok(table) = ProfileTable::from_json(&text) {
                if table.len() == inputs.len() && table.variant_names == cv.variant_names() {
                    return table;
                }
            }
        }
    }
    let table = ProfileTable::build(cv, inputs);
    if cache {
        if let Ok(json) = table.to_json() {
            std::fs::write(&path, json).ok();
        }
    }
    table
}

/// Generic suite driver: profile train + test, tune on the training
/// profile, evaluate the model and every fixed variant on the test set.
pub fn run_suite<I: Send + Sync>(
    name: &str,
    cv: &mut CodeVariant<I>,
    train: &[I],
    test: &[I],
    spec: SuiteSpec,
) -> BenchResult<SuiteOutcome> {
    let scale = if spec.small { "small" } else { "full" };
    let train_table = cached_table(&format!("{name}-{scale}-train"), cv, train, spec.cache);
    let test_table = cached_table(&format!("{name}-{scale}-test"), cv, test, spec.cache);

    let tune = Autotuner::new().tune_from_table(cv, &train_table)?;
    let model = cv.export_artifact()?.model;
    let nitro = evaluate_model(&test_table, &model, cv.default_variant());
    let fixed = (0..cv.n_variants())
        .map(|v| evaluate_fixed_variant(&test_table, v))
        .collect();

    Ok(SuiteOutcome {
        name: name.to_string(),
        variant_names: cv.variant_names(),
        fixed,
        nitro,
        tune,
        test_table,
        model,
        default_variant: cv.default_variant(),
        train_table,
    })
}

/// The simulated device all harnesses use (the paper's Tesla C2050).
pub fn device() -> DeviceConfig {
    DeviceConfig::fermi_c2050()
}

// ---------------------------------------------------------------------
// Per-benchmark suite constructors
// ---------------------------------------------------------------------

/// SpMV suite (paper benchmark 1).
pub fn run_spmv(spec: SuiteSpec) -> BenchResult<SuiteOutcome> {
    run_spmv_on(spec, &device())
}

/// SpMV suite on an explicit device (used by the device ablation).
pub fn run_spmv_on(spec: SuiteSpec, cfg: &DeviceConfig) -> BenchResult<SuiteOutcome> {
    let ctx = Context::new();
    let mut cv = nitro_sparse::spmv::build_code_variant(&ctx, cfg);
    let (train, test) = if spec.small {
        nitro_sparse::collection::spmv_small_sets(spec.seed)
    } else {
        (
            nitro_sparse::collection::spmv_training_set(spec.seed),
            nitro_sparse::collection::spmv_test_set(spec.seed),
        )
    };
    let tag = if cfg.name.contains("Fermi") {
        "spmv"
    } else {
        "spmv-alt"
    };
    run_suite(tag, &mut cv, &train, &test, spec)
}

/// Solvers suite (paper benchmark 2).
pub fn run_solvers(spec: SuiteSpec) -> BenchResult<SuiteOutcome> {
    let ctx = Context::new();
    let mut cv = nitro_solvers::variants::build_code_variant(&ctx, &device());
    let (train, test) = if spec.small {
        nitro_solvers::collection::solver_small_sets(spec.seed)
    } else {
        (
            nitro_solvers::collection::solver_training_set(spec.seed),
            nitro_solvers::collection::solver_test_set(spec.seed),
        )
    };
    run_suite("solvers", &mut cv, &train, &test, spec)
}

/// BFS suite (paper benchmark 3).
pub fn run_bfs(spec: SuiteSpec) -> BenchResult<SuiteOutcome> {
    let ctx = Context::new();
    let mut cv = nitro_graph::bfs::build_code_variant(&ctx, &device());
    let (train, test) = bfs_sets(spec);
    run_suite("bfs", &mut cv, &train, &test, spec)
}

/// The BFS train/test inputs (exposed for the Hybrid comparison, which
/// needs the raw graphs as well as the profile table).
pub fn bfs_sets(spec: SuiteSpec) -> (Vec<nitro_graph::BfsInput>, Vec<nitro_graph::BfsInput>) {
    if spec.small {
        nitro_graph::collection::bfs_small_sets(spec.seed)
    } else {
        (
            nitro_graph::collection::bfs_training_set(spec.seed),
            nitro_graph::collection::bfs_test_set(spec.seed),
        )
    }
}

/// Histogram suite (paper benchmark 4).
pub fn run_histogram(spec: SuiteSpec) -> BenchResult<SuiteOutcome> {
    let ctx = Context::new();
    let mut cv = nitro_histogram::variants::build_code_variant(&ctx, &device());
    let (train, test) = if spec.small {
        nitro_histogram::data::hist_small_sets(spec.seed)
    } else {
        (
            nitro_histogram::data::hist_training_set(spec.seed),
            nitro_histogram::data::hist_test_set(spec.seed),
        )
    };
    run_suite("histogram", &mut cv, &train, &test, spec)
}

/// Sort suite (paper benchmark 5).
pub fn run_sort(spec: SuiteSpec) -> BenchResult<SuiteOutcome> {
    let ctx = Context::new();
    let mut cv = nitro_sort::variants::build_code_variant(&ctx, &device());
    let (train, test) = if spec.small {
        nitro_sort::keys::sort_small_sets(spec.seed)
    } else {
        (
            nitro_sort::keys::sort_training_set(spec.seed),
            nitro_sort::keys::sort_test_set(spec.seed),
        )
    };
    run_suite("sort", &mut cv, &train, &test, spec)
}

/// All five suites, in the paper's order.
pub fn run_all(spec: SuiteSpec) -> BenchResult<Vec<SuiteOutcome>> {
    Ok(vec![
        run_spmv(spec)?,
        run_solvers(spec)?,
        run_bfs(spec)?,
        run_histogram(spec)?,
        run_sort(spec)?,
    ])
}

// ---------------------------------------------------------------------
// Incremental-tuning and feature-subset analyses
// ---------------------------------------------------------------------

/// Performance-vs-iterations curve (Figure 7): run incremental tuning for
/// `max_iterations` BvSB queries and evaluate every intermediate model on
/// the test table. Returns `(iteration, % of exhaustive best)` pairs,
/// where iteration 0 is the seed-only model.
pub fn incremental_curve<I: Send + Sync>(
    cv: &mut CodeVariant<I>,
    train: &[I],
    test_table: &ProfileTable,
    max_iterations: usize,
) -> BenchResult<Vec<(usize, f64)>> {
    Ok(incremental_curve_with_report(cv, train, test_table, max_iterations)?.0)
}

/// Like [`incremental_curve`], but also returns the tune report so
/// callers can inspect phase timings and accuracy history.
pub fn incremental_curve_with_report<I: Send + Sync>(
    cv: &mut CodeVariant<I>,
    train: &[I],
    test_table: &ProfileTable,
    max_iterations: usize,
) -> BenchResult<(Vec<(usize, f64)>, TuneReport)> {
    cv.policy_mut().incremental = Some(StoppingCriterion::Iterations(max_iterations));
    let report = Autotuner::new().tune_with_test(cv, train, test_table)?;
    let curve = report
        .model_history
        .iter()
        .enumerate()
        .map(|(i, model)| {
            let summary = evaluate_model(test_table, model, cv.default_variant());
            (i, summary.mean_relative_perf)
        })
        .collect();
    Ok((curve, report))
}

/// Render a [`TuneReport`]'s phase-timing breakdown as indented lines
/// (empty string when no timings were recorded).
pub fn phase_breakdown(report: &TuneReport, indent: &str) -> String {
    let total: f64 = report.phase_timings.iter().map(|p| p.wall_ns).sum();
    if total <= 0.0 {
        return String::new();
    }
    report
        .phase_timings
        .iter()
        .map(|p| {
            format!(
                "{indent}{:<12} {:>10.3} ms  {}",
                p.phase,
                p.wall_ns / 1e6,
                pct(p.wall_ns / total)
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// One row of the Figure-8 study: the features used, the achieved
/// performance and the feature-evaluation overhead relative to the mean
/// best-variant time.
#[derive(Debug, Clone)]
pub struct FeatureSubsetRow {
    /// How many (cheapest-first) features were used.
    pub k: usize,
    /// Names of the features in the subset.
    pub features: Vec<String>,
    /// Mean relative performance on the test set.
    pub perf: f64,
    /// Mean feature-evaluation cost as a fraction of the mean
    /// best-variant execution time.
    pub overhead_frac: f64,
}

/// The Figure-8 sweep: order features by measured evaluation cost, then
/// retrain on the cheapest `k` for every `k`, reusing the existing
/// profile tables (costs don't change, only feature columns do).
pub fn feature_subset_sweep<I: Send + Sync>(
    cv: &CodeVariant<I>,
    sample_inputs: &[I],
    train_table: &ProfileTable,
    test_table: &ProfileTable,
) -> Vec<FeatureSubsetRow> {
    let n_features = cv.n_features();
    // Average per-feature cost over a sample of inputs.
    let mut avg_cost = vec![0.0f64; n_features];
    let sample: Vec<&I> = sample_inputs.iter().take(40).collect();
    for input in &sample {
        for (j, c) in cv.feature_costs(input).into_iter().enumerate() {
            avg_cost[j] += c;
        }
    }
    for c in avg_cost.iter_mut() {
        *c /= sample.len().max(1) as f64;
    }
    let mut order: Vec<usize> = (0..n_features).collect();
    order.sort_by(|&a, &b| avg_cost[a].partial_cmp(&avg_cost[b]).unwrap());

    // Mean best-variant time on the test set, as the overhead denominator.
    let mean_best: f64 = {
        let bests: Vec<f64> = (0..test_table.len())
            .filter_map(|i| test_table.best_cost(i))
            .map(|c| c.abs())
            .collect();
        bests.iter().sum::<f64>() / bests.len().max(1) as f64
    };

    let classifier = cv.policy().classifier.clone();
    (1..=n_features)
        .map(|k| {
            let subset: Vec<usize> = order[..k].to_vec();
            let train_sub = train_table.with_feature_subset(&subset);
            let test_sub = test_table.with_feature_subset(&subset);
            let model = TrainedModel::train(&classifier, &train_sub.dataset());
            let summary = evaluate_model(&test_sub, &model, cv.default_variant());
            let cost: f64 = subset.iter().map(|&j| avg_cost[j]).sum();
            FeatureSubsetRow {
                k,
                features: subset
                    .iter()
                    .map(|&j| cv.feature_names()[j].clone())
                    .collect(),
                perf: summary.mean_relative_perf,
                overhead_frac: if mean_best > 0.0 {
                    cost / mean_best
                } else {
                    0.0
                },
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Solver convergence analysis (§V-A)
// ---------------------------------------------------------------------

/// Convergence statistics for the Solvers benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceStats {
    /// Test systems no variant solved (paper: 6).
    pub unsolvable: usize,
    /// Solvable systems where at least one variant failed (paper: 35).
    pub partially_failing: usize,
    /// Of those, how many times Nitro picked a converging variant
    /// (paper: 33 of 35).
    pub nitro_picked_converging: usize,
}

/// Compute the paper's convergence-selection statistics from a solver
/// test table and a trained model.
pub fn convergence_stats(
    table: &ProfileTable,
    model: &TrainedModel,
    default_variant: Option<usize>,
) -> ConvergenceStats {
    let mut unsolvable = 0;
    let mut partially_failing = 0;
    let mut picked_converging = 0;
    let worst = table.objective.worst();
    for i in 0..table.len() {
        let failing = table.costs[i].iter().filter(|&&c| c == worst).count();
        if failing == table.n_variants() {
            unsolvable += 1;
            continue;
        }
        if failing > 0 {
            partially_failing += 1;
            let mut chosen = model
                .predict(&table.features[i])
                .min(table.n_variants() - 1);
            if !table.allowed[i][chosen] {
                chosen = default_variant.unwrap_or(0);
            }
            if table.costs[i][chosen] != worst {
                picked_converging += 1;
            }
        }
    }
    ConvergenceStats {
        unsolvable,
        partially_failing,
        nitro_picked_converging: picked_converging,
    }
}

/// Pretty percent formatting used across binaries.
pub fn pct(x: f64) -> String {
    format!("{:6.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_spmv_suite_runs_end_to_end() {
        let out = run_spmv(SuiteSpec::small()).unwrap();
        assert_eq!(out.variant_names.len(), 6);
        assert!(out.nitro.mean_relative_perf > 0.7, "nitro {:?}", out.nitro);
        assert_eq!(out.fixed.len(), 6);
    }

    #[test]
    fn incremental_curve_is_reasonable() {
        let ctx = Context::new();
        let mut cv = nitro_sort::variants::build_code_variant(&ctx, &device());
        let (train, test) = nitro_sort::keys::sort_small_sets(COLLECTION_SEED);
        let test_table = ProfileTable::build(&cv, &test);
        let curve = incremental_curve(&mut cv, &train, &test_table, 8).unwrap();
        assert!(curve.len() >= 2);
        assert!(curve.last().unwrap().1 > 0.6, "{curve:?}");
    }

    #[test]
    fn feature_subset_sweep_covers_all_ks() {
        let ctx = Context::new();
        let cv = nitro_sort::variants::build_code_variant(&ctx, &device());
        let (train, test) = nitro_sort::keys::sort_small_sets(COLLECTION_SEED);
        let train_table = ProfileTable::build(&cv, &train);
        let test_table = ProfileTable::build(&cv, &test);
        let rows = feature_subset_sweep(&cv, &test, &train_table, &test_table);
        assert_eq!(rows.len(), 3);
        assert!(rows[0].overhead_frac <= rows[2].overhead_frac);
        assert!(rows.iter().all(|r| (0.0..=1.0).contains(&r.perf)));
    }

    #[test]
    fn convergence_stats_count_failures() {
        let out = run_solvers(SuiteSpec::small()).unwrap();
        let stats = convergence_stats(&out.test_table, &out.model, out.default_variant);
        // The small solver sets include weak-diagonal systems where some
        // variants fail.
        assert!(stats.partially_failing > 0);
        assert!(stats.nitro_picked_converging <= stats.partially_failing);
    }
}
