//! §V-A BFS vs Hybrid: the paper's comparison against Back40's dynamic
//! Hybrid kernel.
//!
//! Paper: "The Nitro-tuned version was able to beat the performance of
//! the Hybrid version by 11% on average … [Hybrid's] average performance
//! was 88.14% of the best variant."

use nitro_bench::error::{exit_on_error, BenchResult};
use nitro_bench::{bfs_sets, cached_table, device, pct, SuiteSpec};
use nitro_core::Context;
use nitro_tuner::{evaluate_model, Autotuner};

fn main() {
    exit_on_error(run());
}

fn run() -> BenchResult<()> {
    let spec = SuiteSpec::from_env();
    let cfg = device();
    println!("== BFS: Nitro-tuned vs the dynamic Hybrid variant (paper §V-A) ==");
    if spec.small {
        println!("(NITRO_SCALE=small — miniature collections)");
    }
    let scale = if spec.small { "small" } else { "full" };

    let ctx = Context::new();
    let mut cv = nitro_graph::bfs::build_code_variant(&ctx, &cfg);
    let (train, test) = bfs_sets(spec);
    let test_table = cached_table(&format!("bfs-{scale}-test"), &cv, &test, spec.cache);
    let train_table = cached_table(&format!("bfs-{scale}-train"), &cv, &train, spec.cache);
    Autotuner::new().tune_from_table(&mut cv, &train_table)?;
    let model = cv.export_artifact()?.model;
    let nitro = evaluate_model(&test_table, &model, cv.default_variant());

    // Hybrid relative performance per input: hybrid TEPS / best TEPS.
    let mut hybrid_rel = Vec::with_capacity(test.len());
    for (i, input) in test.iter().enumerate() {
        let Some(best) = test_table.best_cost(i) else {
            continue;
        };
        let teps = input.hybrid_teps(&cfg);
        hybrid_rel.push((teps / best).clamp(0.0, 1.0));
    }
    let hybrid_mean = hybrid_rel.iter().sum::<f64>() / hybrid_rel.len().max(1) as f64;

    println!("\n  graphs evaluated: {}", hybrid_rel.len());
    println!(
        "  Nitro-tuned : {} of best   (paper: 97.92%)",
        pct(nitro.mean_relative_perf)
    );
    println!(
        "  Hybrid      : {} of best   (paper: 88.14%)",
        pct(hybrid_mean)
    );
    let advantage = nitro.mean_relative_perf / hybrid_mean - 1.0;
    println!(
        "  Nitro beats Hybrid by {:.1}% on average (paper: ~11%)",
        advantage * 100.0
    );

    // Breakdown by group: which variant wins where.
    println!("\n  selected-variant breakdown:");
    let mut selection_counts = vec![0usize; test_table.n_variants()];
    for i in 0..test_table.len() {
        let pred = model
            .predict(&test_table.features[i])
            .min(test_table.n_variants() - 1);
        selection_counts[pred] += 1;
    }
    for (name, count) in test_table.variant_names.iter().zip(&selection_counts) {
        if *count > 0 {
            println!("    {:<14} selected for {:>4} graphs", name, count);
        }
    }
    println!("  (paper: \"one of CE-Fused or 2-Phase-Fused was almost always selected\")");
    Ok(())
}
