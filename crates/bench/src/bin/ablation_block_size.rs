//! Extension (paper §VII): folding optimization-parameter tuning into
//! variant selection.
//!
//! The Block Jacobi preconditioner has a tunable block size. Instead of
//! fixing it (the main benchmark uses 8), this harness registers a
//! *variant family* — `CG-BJacobi@{2,4,8,16,32}` — via
//! `CodeVariant::add_variant_family` and lets the learned model pick the
//! block size per input, exactly the "parameterized templates generate
//! variants" integration the paper describes (§VI).

use nitro_bench::error::{exit_on_error, BenchResult};
use nitro_bench::{pct, SuiteSpec};
use nitro_core::{ClassifierConfig, CodeVariant, Context, FnFeature};
use nitro_solvers::{run_with_preconditioner, BlockJacobi, Method, SolverInput};
use nitro_sparse::features;
use nitro_tuner::{evaluate_fixed_variant, evaluate_model, Autotuner, ProfileTable};

fn build(ctx: &Context, cfg: &nitro_simt::DeviceConfig) -> CodeVariant<SolverInput> {
    let mut cv = CodeVariant::new("solvers-blocksize", ctx);
    let cfg = cfg.clone();
    cv.add_variant_family(
        "CG-BJacobi",
        vec![2usize, 4, 8, 16, 32],
        move |&block, inp: &SolverInput| {
            let p = BlockJacobi::new(&inp.a, block);
            run_with_preconditioner(Method::Cg, &p, inp, &cfg, 0x5100 + block as u64).1
        },
    );
    cv.set_default(2); // block size 8, the main benchmark's fixed choice

    cv.add_input_feature(FnFeature::new("Nrows", |i: &SolverInput| i.a.n_rows as f64));
    cv.add_input_feature(FnFeature::new("AvgNZ", |i: &SolverInput| {
        features::avg_nz_per_row(&i.a)
    }));
    cv.add_input_feature(FnFeature::new("DiagDominance", |i: &SolverInput| {
        features::diag_dominance(&i.a)
    }));
    // Block-structure signal: how much mass sits near the diagonal.
    cv.add_input_feature(FnFeature::new("LBw", |i: &SolverInput| {
        features::left_bandwidth(&i.a)
    }));
    cv
}

/// SPD systems with varying block structure, so different block sizes win.
fn systems(tag: &str, base: usize, count_per: usize, seed: u64) -> Vec<SolverInput> {
    let mut out = Vec::new();
    for (g, block) in [(0usize, 4usize), (1, 8), (2, 16), (3, 32)] {
        for i in 0..count_per {
            let idx = base + g * 100 + i;
            let inner =
                nitro_sparse::gen::block_diag(600 + (idx % 5) * 150, block, 0.7, seed ^ idx as u64);
            let a = nitro_sparse::gen::make_spd(&inner, 1.05);
            out.push(SolverInput::new(
                format!("{tag}/b{block}/{i}"),
                format!("b{block}"),
                a,
            ));
        }
    }
    out
}

fn main() {
    exit_on_error(run());
}

fn run() -> BenchResult<()> {
    let spec = SuiteSpec::from_env();
    let cfg = nitro_bench::device();
    println!("== Extension: block-size tuning as a variant family ==");

    let ctx = Context::new();
    let mut cv = build(&ctx, &cfg);
    cv.policy_mut().classifier = ClassifierConfig::Svm {
        c: None,
        gamma: None,
        grid_search: true,
        cache_bytes: None,
    };

    let per = if spec.small { 3 } else { 8 };
    let train = systems("train", 0, per, spec.seed);
    let test = systems("test", 1000, per + 4, spec.seed);

    let test_table = ProfileTable::build(&cv, &test);
    Autotuner::new().tune(&mut cv, &train)?;
    let model = cv.export_artifact()?.model;
    let nitro = evaluate_model(&test_table, &model, cv.default_variant());

    println!("\nvariant family: {}", cv.variant_names().join(", "));
    println!("\n{:<16} {:>10}", "strategy", "% of best");
    for v in 0..cv.n_variants() {
        let s = evaluate_fixed_variant(&test_table, v);
        println!(
            "{:<16} {:>10}",
            cv.variant_names()[v],
            pct(s.mean_relative_perf)
        );
    }
    println!(
        "{:<16} {:>10}   <- learned block size",
        "Nitro",
        pct(nitro.mean_relative_perf)
    );

    // Which block size the model picks per structural group.
    println!("\nper-group selections:");
    for group in ["b4", "b8", "b16", "b32"] {
        let mut counts = vec![0usize; cv.n_variants()];
        for (i, inp) in test.iter().enumerate() {
            if inp.group == group {
                counts[model
                    .predict(&test_table.features[i])
                    .min(cv.n_variants() - 1)] += 1;
            }
        }
        let best = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(v, _)| v)
            .unwrap();
        println!(
            "  matrices with {}-blocks -> mostly {} ({:?})",
            &group[1..],
            cv.variant_names()[best],
            counts
        );
    }
    Ok(())
}
