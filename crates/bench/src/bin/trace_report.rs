//! Trace report: run every benchmark suite under a tracer and turn the
//! emitted telemetry into artifacts plus a human-readable summary.
//!
//! ```text
//! NITRO_SCALE=small cargo run -p nitro-bench --bin trace_report
//! ```
//!
//! Per suite, writes under `target/nitro-trace/`:
//!
//! * `<suite>.trace.json` — a Chrome `trace_event` document (open in
//!   `chrome://tracing` or <https://ui.perfetto.dev>),
//! * `<suite>.trace.jsonl` — the same events as streaming JSONL,
//! * `<suite>.metrics.json` — the metrics snapshot (counters, gauges,
//!   histograms).
//!
//! The binary validates its own output — the Chrome document must pass
//! the strict-nesting validator and the metrics JSON must round-trip
//! through [`nitro_trace::MetricsSnapshot`] — then runs the runtime
//! metrics audit (`NITRO040`+) and prints, per suite: the tuning phase
//! breakdown, the dispatch win/veto/fallback counts, the mispredict
//! confusion pairs and the top regret contributors. Exits non-zero if
//! any artifact fails validation.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use nitro_audit::{analyze_metrics_json, render_text, MetricsAuditConfig};
use nitro_bench::error::{exit_on_error, BenchResult};
use nitro_bench::{device, pct, SuiteSpec};
use nitro_core::{CodeVariant, Context};
use nitro_trace::{
    validate_chrome_trace, ChromeSink, JsonlSink, MetricsSnapshot, MultiSink, RegretLedger,
    RingSink, Tracer,
};
use nitro_tuner::{Autotuner, ProfileTable, TuneReport};

/// Everything the summary needs from one traced suite.
struct SuiteTrace {
    name: String,
    tune: TuneReport,
    ledger: RegretLedger,
    /// `(best, chosen) -> count` over mispredicted test dispatches.
    confusion: BTreeMap<(String, String), u64>,
    metrics: MetricsSnapshot,
    /// Validation failures (empty means all artifacts are well-formed).
    failures: Vec<String>,
    /// Chrome-trace shape: (events, spans, instants, lanes).
    trace_shape: (usize, usize, usize, usize),
}

/// Output directory for trace artifacts.
fn out_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/nitro-trace");
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Run one suite under a fresh tracer: tune, profile the test set,
/// dispatch every test input, then export + validate the artifacts.
fn trace_suite<I: Send + Sync>(
    name: &str,
    cv: &mut CodeVariant<I>,
    train: &[I],
    test: &[I],
    dir: &Path,
) -> BenchResult<SuiteTrace> {
    let mut failures = Vec::new();

    let chrome = Arc::new(ChromeSink::new());
    let jsonl_path = dir.join(format!("{name}.trace.jsonl"));
    // A bounded ring rides along, as production deployments run it:
    // its drop count surfaces in the metrics snapshot as
    // `trace.dropped_events`, and the summary warns when it truncated.
    let ring = Arc::new(RingSink::new(4096));
    let mut sinks: Vec<Arc<dyn nitro_trace::TraceSink>> = vec![chrome.clone(), ring];
    match JsonlSink::to_file(&jsonl_path) {
        Ok(s) => sinks.push(Arc::new(s)),
        Err(e) => failures.push(format!("could not open {}: {e}", jsonl_path.display())),
    }
    let tracer = Tracer::new(Arc::new(MultiSink::new(sinks)));

    cv.context().install_tracer(tracer.clone());
    cv.declare_tracer_metrics(&tracer);
    // The simulator layer reads the process-global slot (substrates
    // build their GPUs internally, without a Context in scope).
    nitro_trace::install_global(tracer.clone());

    // Tune without the profile cache so the profiling phase is traced.
    let tune = Autotuner::new().tune(cv, train)?;

    // Ground truth for the test set (also traced, as profile instants).
    let test_table = ProfileTable::build(cv, test);

    // Dispatch every test input through the tuned selector, accounting
    // regret against the exhaustive-search ground truth.
    let mut ledger = RegretLedger::new(5);
    let mut confusion: BTreeMap<(String, String), u64> = BTreeMap::new();
    for (i, input) in test.iter().enumerate() {
        let inv = match cv.call(input) {
            Ok(inv) => inv,
            Err(e) => {
                failures.push(format!("dispatch failed on {name}[{i}]: {e}"));
                continue;
            }
        };
        let costs = &test_table.costs[i];
        ledger.record(&format!("{name}[{i}]"), inv.variant, costs);
        if let Some(best) = test_table.best_variant(i) {
            if best != inv.variant {
                *confusion
                    .entry((
                        test_table.variant_names[best].clone(),
                        inv.variant_name.clone(),
                    ))
                    .or_insert(0) += 1;
            }
            let regret = costs[inv.variant] - costs[best];
            if regret.is_finite() && regret >= 0.0 {
                tracer
                    .metrics()
                    .observe(&format!("regret.{name}.ns"), regret);
            }
        }
    }

    tracer.flush();
    nitro_trace::uninstall_global();
    cv.context().clear_tracer();

    // Export + validate the Chrome trace.
    let chrome_json = chrome.to_chrome_json();
    let trace_path = dir.join(format!("{name}.trace.json"));
    if let Err(e) = std::fs::write(&trace_path, &chrome_json) {
        failures.push(format!("could not write {}: {e}", trace_path.display()));
    }
    let trace_shape = match validate_chrome_trace(&chrome_json) {
        Ok(stats) => (stats.events, stats.spans, stats.instants, stats.lanes),
        Err(e) => {
            failures.push(format!("{name}.trace.json failed validation: {e}"));
            (0, 0, 0, 0)
        }
    };

    // Export + round-trip-validate the metrics snapshot (with the
    // sink drop count injected as `trace.dropped_events`).
    let metrics = tracer.metrics_snapshot();
    let metrics_json = metrics.to_json();
    let metrics_path = dir.join(format!("{name}.metrics.json"));
    if let Err(e) = std::fs::write(&metrics_path, &metrics_json) {
        failures.push(format!("could not write {}: {e}", metrics_path.display()));
    }
    match MetricsSnapshot::from_json(&metrics_json) {
        Ok(back) if back.counters == metrics.counters => {}
        Ok(_) => failures.push(format!("{name}.metrics.json round-trip altered counters")),
        Err(e) => failures.push(format!("{name}.metrics.json does not round-trip: {e}")),
    }

    Ok(SuiteTrace {
        name: name.to_string(),
        tune,
        ledger,
        confusion,
        metrics,
        failures,
        trace_shape,
    })
}

fn summarize(s: &SuiteTrace) {
    println!("\n== {} ==", s.name);
    let (events, spans, instants, lanes) = s.trace_shape;
    println!(
        "  trace: {events} events ({spans} spans, {instants} instants) across {lanes} lane(s)"
    );

    // Tuning phase breakdown, measured by the tuner's phase spans.
    let breakdown = nitro_bench::phase_breakdown(&s.tune, "    ");
    if !breakdown.is_empty() {
        println!("  tuning phases:\n{breakdown}");
    }

    // Dispatch counters straight from the exported snapshot.
    let calls = s
        .metrics
        .counter(&format!("dispatch.{}.calls", s.name))
        .unwrap_or(0);
    let fallbacks = s
        .metrics
        .counter(&format!("dispatch.{}.fallback", s.name))
        .unwrap_or(0);
    println!("  dispatch: {calls} call(s), {fallbacks} fallback(s)");
    let dropped = s.metrics.counter("trace.dropped_events").unwrap_or(0);
    if dropped > 0 {
        println!(
            "  WARNING: bounded ring sink dropped {dropped} event(s) — \
             the in-memory trace tail is truncated (the exported \
             .trace.json/.jsonl files are lossless)"
        );
    }
    let win_prefix = format!("dispatch.{}.win.", s.name);
    for (counter, value) in &s.metrics.counters {
        if let Some(variant) = counter.strip_prefix(&win_prefix) {
            println!("    win {variant:<24} {value}");
        }
    }

    // Regret accounting against exhaustive search.
    println!(
        "  regret: {} / {} mispredicted, oracle fraction {}, mean regret {:.1} ns, max {:.1} ns",
        s.ledger.mispredicts,
        s.ledger.count,
        pct(s.ledger.oracle_fraction()),
        s.ledger.mean_regret(),
        s.ledger.max_regret
    );
    if !s.confusion.is_empty() {
        println!("  mispredict confusion (best -> chosen):");
        let mut pairs: Vec<_> = s.confusion.iter().collect();
        pairs.sort_by_key(|(_, &n)| std::cmp::Reverse(n));
        for ((best, chosen), n) in pairs.into_iter().take(5) {
            println!("    {best} -> {chosen}: {n}");
        }
    }
    if !s.ledger.top().is_empty() {
        println!("  top regret contributors:");
        for e in s.ledger.top() {
            println!(
                "    {:<16} chose {} over {} (+{:.1} ns)",
                e.label, e.chosen, e.best, e.regret
            );
        }
    }
}

fn main() {
    exit_on_error(run());
}

fn run() -> BenchResult<()> {
    let spec = SuiteSpec::from_env();
    let cfg = device();
    let dir = out_dir();
    println!("== nitro-trace report ==");
    if spec.small {
        println!("(NITRO_SCALE=small — miniature collections)");
    }
    println!("artifacts under {}", dir.display());

    let mut suites = Vec::new();
    {
        let ctx = Context::new();
        let mut cv = nitro_sparse::spmv::build_code_variant(&ctx, &cfg);
        let (train, test) = if spec.small {
            nitro_sparse::collection::spmv_small_sets(spec.seed)
        } else {
            (
                nitro_sparse::collection::spmv_training_set(spec.seed),
                nitro_sparse::collection::spmv_test_set(spec.seed),
            )
        };
        suites.push(trace_suite("spmv", &mut cv, &train, &test, &dir)?);
    }
    {
        let ctx = Context::new();
        let mut cv = nitro_solvers::variants::build_code_variant(&ctx, &cfg);
        let (train, test) = if spec.small {
            nitro_solvers::collection::solver_small_sets(spec.seed)
        } else {
            (
                nitro_solvers::collection::solver_training_set(spec.seed),
                nitro_solvers::collection::solver_test_set(spec.seed),
            )
        };
        suites.push(trace_suite("solvers", &mut cv, &train, &test, &dir)?);
    }
    {
        let ctx = Context::new();
        let mut cv = nitro_graph::bfs::build_code_variant(&ctx, &cfg);
        let (train, test) = nitro_bench::bfs_sets(spec);
        suites.push(trace_suite("bfs", &mut cv, &train, &test, &dir)?);
    }
    {
        let ctx = Context::new();
        let mut cv = nitro_histogram::variants::build_code_variant(&ctx, &cfg);
        let (train, test) = if spec.small {
            nitro_histogram::data::hist_small_sets(spec.seed)
        } else {
            (
                nitro_histogram::data::hist_training_set(spec.seed),
                nitro_histogram::data::hist_test_set(spec.seed),
            )
        };
        suites.push(trace_suite("histogram", &mut cv, &train, &test, &dir)?);
    }
    {
        let ctx = Context::new();
        let mut cv = nitro_sort::variants::build_code_variant(&ctx, &cfg);
        let (train, test) = if spec.small {
            nitro_sort::keys::sort_small_sets(spec.seed)
        } else {
            (
                nitro_sort::keys::sort_training_set(spec.seed),
                nitro_sort::keys::sort_test_set(spec.seed),
            )
        };
        suites.push(trace_suite("sort", &mut cv, &train, &test, &dir)?);
    }

    for s in &suites {
        summarize(s);
    }

    // Runtime-metrics audit over the exported snapshots.
    println!("\n== runtime metrics audit ==");
    let audit_config = MetricsAuditConfig::default();
    for s in &suites {
        let path = dir.join(format!("{}.metrics.json", s.name));
        let json = std::fs::read_to_string(&path).unwrap_or_default();
        let diags = analyze_metrics_json(&json, &s.name, &audit_config);
        println!("  {}: {}", s.name, render_text(&diags));
    }

    let mut failed = false;
    for s in &suites {
        for f in &s.failures {
            eprintln!("FAIL [{}]: {f}", s.name);
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("\nall trace artifacts validated");
    Ok(())
}
