//! Figure 6: average performance of Nitro-selected variants relative to
//! exhaustive search, per benchmark — plus the §V-A side results: the
//! SpMV ≥70%/≥90% input fractions and the solver convergence-selection
//! statistics.

use nitro_bench::error::{exit_on_error, BenchResult};
use nitro_bench::{convergence_stats, pct, run_all, SuiteSpec};

/// The paper's Figure-6 numbers, for side-by-side comparison.
const PAPER: [(&str, f64); 5] = [
    ("spmv", 0.9374),
    ("solvers", 0.9323),
    ("bfs", 0.9792),
    ("histogram", 0.9416),
    ("sort", 0.9925),
];

fn main() {
    exit_on_error(run());
}

fn run() -> BenchResult<()> {
    let spec = SuiteSpec::from_env();
    println!("== Figure 6: Nitro vs exhaustive search ==");
    if spec.small {
        println!("(NITRO_SCALE=small — miniature collections)");
    }
    println!(
        "\n{:<10} {:>10} {:>10} {:>8} {:>8} {:>8}",
        "benchmark", "nitro", "paper", ">=70%", ">=90%", "mispred"
    );
    for suite in run_all(spec)? {
        let paper = PAPER
            .iter()
            .find(|(n, _)| *n == suite.name)
            .map(|(_, p)| *p);
        println!(
            "{:<10} {:>10} {:>10} {:>8} {:>8} {:>7}",
            suite.name,
            pct(suite.nitro.mean_relative_perf),
            paper.map(pct).unwrap_or_default(),
            pct(suite.nitro.frac_ge_70),
            pct(suite.nitro.frac_ge_90),
            suite.nitro.mispredictions,
        );

        if suite.name == "solvers" {
            let stats = convergence_stats(&suite.test_table, &suite.model, suite.default_variant);
            println!(
                "           convergence: {} unsolvable systems (paper: 6); {} systems with a failing variant (paper: 35); Nitro picked a converging variant {}/{} times (paper: 33/35)",
                stats.unsolvable,
                stats.partially_failing,
                stats.nitro_picked_converging,
                stats.partially_failing
            );
        }
        if suite.name == "spmv" {
            println!(
                "           paper: >90% of matrices reach >=70% and ~80% reach >=90% of exhaustive-search performance"
            );
        }
    }
    Ok(())
}
