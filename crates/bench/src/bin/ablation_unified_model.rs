//! Extension (paper §VII): implicit architectural features.
//!
//! "The features we use in this paper are expressed by an expert
//! programmer, but the framework could easily support additional features
//! that are added implicitly by the system, such as architectural
//! features." This harness quantifies that idea: one SpMV model trained
//! across BOTH simulated devices, with device descriptors (SM count,
//! bandwidth, atomic cost, texture cache size) appended to every feature
//! vector. Compare against per-device models (upper bound) and stale
//! cross-device models (lower bound, from `ablation_devices`).

use nitro_bench::{cached_table, pct, SuiteSpec};
use nitro_core::{ClassifierConfig, Context, TrainedModel};
use nitro_ml::Dataset;
use nitro_simt::DeviceConfig;
use nitro_tuner::{evaluate_model, ProfileTable};

/// The implicit architectural features appended to each input's vector.
fn device_features(cfg: &DeviceConfig) -> Vec<f64> {
    vec![
        cfg.num_sms as f64,
        cfg.dram_bw_gbps,
        cfg.global_atomic_cycles,
        cfg.tex_cache_bytes as f64,
        cfg.launch_overhead_ns,
    ]
}

/// Append device features to every row of a profile table.
fn augment(table: &ProfileTable, cfg: &DeviceConfig) -> ProfileTable {
    let extra = device_features(cfg);
    let mut out = table.clone();
    out.feature_names
        .extend(["dev_sms", "dev_bw", "dev_atomic", "dev_tex", "dev_launch"].map(String::from));
    for row in out.features.iter_mut() {
        row.extend_from_slice(&extra);
    }
    out
}

fn main() {
    let spec = SuiteSpec::from_env();
    println!("== Extension: one model across devices via implicit architectural features ==");
    let scale = if spec.small { "small" } else { "full" };

    let (train, test) = if spec.small {
        nitro_sparse::collection::spmv_small_sets(spec.seed)
    } else {
        (
            nitro_sparse::collection::spmv_training_set(spec.seed),
            nitro_sparse::collection::spmv_test_set(spec.seed),
        )
    };
    let devices = [DeviceConfig::fermi_c2050(), DeviceConfig::kepler_k20()];

    // Per-device profile tables (shared with ablation_devices via cache).
    let mut train_tables = Vec::new();
    let mut test_tables = Vec::new();
    for (d, cfg) in devices.iter().enumerate() {
        let ctx = Context::new();
        let cv = nitro_sparse::spmv::build_code_variant(&ctx, cfg);
        train_tables.push(cached_table(
            &format!("spmv-dev{d}-{scale}-train"),
            &cv,
            &train,
            spec.cache,
        ));
        test_tables.push(cached_table(
            &format!("spmv-dev{d}-{scale}-test"),
            &cv,
            &test,
            spec.cache,
        ));
    }

    // Unified training set: both devices' labeled examples, each row
    // augmented with its device's descriptors.
    let mut unified = Dataset::new(train_tables[0].n_variants());
    for (table, cfg) in train_tables.iter().zip(&devices) {
        let aug = augment(table, cfg);
        for (i, label) in aug.labels() {
            unified.push(aug.features[i].clone(), label);
        }
    }
    let config = ClassifierConfig::Svm {
        c: None,
        gamma: None,
        grid_search: true,
        cache_bytes: None,
    };
    let unified_model = TrainedModel::train(&config, &unified);

    // Per-device baselines.
    let per_device: Vec<TrainedModel> = train_tables
        .iter()
        .map(|t| TrainedModel::train(&config, &t.dataset()))
        .collect();

    println!(
        "\n{:<34} {:>12} {:>12}",
        "model",
        devices[0].name.split(" (").next().unwrap(),
        devices[1].name.split(" (").next().unwrap()
    );
    // Unified model evaluated on each device's augmented test table.
    let mut row = String::new();
    for (table, cfg) in test_tables.iter().zip(&devices) {
        let aug = augment(table, cfg);
        let s = evaluate_model(&aug, &unified_model, Some(0));
        row.push_str(&format!(" {:>12}", pct(s.mean_relative_perf)));
    }
    println!("{:<34}{}", "unified (+device features)", row);

    let mut row = String::new();
    for (d, table) in test_tables.iter().enumerate() {
        let s = evaluate_model(table, &per_device[d], Some(0));
        row.push_str(&format!(" {:>12}", pct(s.mean_relative_perf)));
    }
    println!("{:<34}{}", "per-device (paper's workflow)", row);

    let mut row = String::new();
    for (d, table) in test_tables.iter().enumerate() {
        let stale = &per_device[1 - d];
        let s = evaluate_model(table, stale, Some(0));
        row.push_str(&format!(" {:>12}", pct(s.mean_relative_perf)));
    }
    println!("{:<34}{}", "stale (other device's model)", row);

    println!("\nOne model serves both devices once the architecture is a feature —");
    println!("recovering most of the per-device performance and beating stale models.");
}
