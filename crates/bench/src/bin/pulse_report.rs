//! Pulse report: exercise `nitro-pulse`'s concurrent telemetry across
//! every benchmark suite and assert its performance and alerting
//! guarantees end to end.
//!
//! ```text
//! NITRO_SCALE=small cargo run -p nitro-bench --release --bin pulse_report
//! ```
//!
//! Four phases:
//!
//! 1. **record throughput** — one counter increment plus one sketch
//!    record per event, measured single-threaded and at 8 recording
//!    threads on the striped [`PulseRegistry`] and on the old
//!    mutex-guarded [`MetricsRegistry`] used exactly as the traced
//!    dispatch path uses it (per-event name `format!` + a lookup under
//!    the registry lock) as the baseline. The striped 8-thread aggregate must beat
//!    the mutex 8-thread aggregate by ≥ 4×; on machines with ≥ 8
//!    hardware threads the striped path must additionally scale ≥ 4×
//!    over its own single-threaded run.
//! 2. **sketch merge cost** — folding 64 pre-filled
//!    [`QuantileSketch`]es, ns per merge.
//! 3. **suites** — all five benchmark suites tuned once, then
//!    dispatched from 4 threads (each with its own `CodeVariant` built
//!    from the shared exported artifact) into one shared registry and a
//!    per-suite sampling [`PulseProfiler`]; p50/p99 per suite come from
//!    the fused `dispatch.<fn>.latency_ns` sketch, and the profiler's
//!    collapsed-stack + JSON exports land under `target/nitro-pulse/`.
//! 4. **SLO drill** — the spmv suite dispatches healthily under a p99
//!    [`SloWatchdog`] (no alert may fire), then an injected
//!    [`FaultPlan`] slowdown inflates every launch 8×: the watchdog
//!    must page with a [`LatencyRegression`](AlertKind), and
//!    [`StagedPromotion::ingest_alert`] must consume that alert to roll
//!    back a promoted candidate — the observe→act loop end to end.
//!
//! Everything lands in `target/BENCH_pulse.json`. Exits non-zero if any
//! guarantee is violated.

use std::path::PathBuf;
use std::sync::Barrier;
use std::time::Instant;

use nitro_bench::error::{exit_on_error, to_json_pretty, write_file, BenchResult};
use nitro_bench::{device, SuiteSpec};
use nitro_core::{CodeVariant, Context, ModelArtifact};
use nitro_pulse::{
    AlertKind, AlertSeverity, FunctionPulse, PulseAlert, PulseProfiler, PulseRegistry,
    QuantileSketch, SketchConfig, SloSpec, SloWatchdog,
};
use nitro_simt::{install_fault_plan, uninstall_fault_plan, FaultPlan};
use nitro_store::{LifecycleEvent, PromotionPolicy, StagedPromotion};
use nitro_trace::MetricsRegistry;
use nitro_tuner::Autotuner;
use serde::Serialize;

/// Recording threads for the contended measurements (the acceptance
/// ratio is defined at 8).
const RECORD_THREADS: usize = 8;
/// Dispatch threads per suite in phase 3.
const DISPATCH_THREADS: usize = 4;

fn out_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/nitro-pulse");
    std::fs::create_dir_all(&dir).ok();
    dir
}

// ---------------------------------------------------------------------
// Phase 1 — record throughput, striped vs mutex
// ---------------------------------------------------------------------

/// One measured configuration: `ops` events spread over `threads`
/// recording threads, each event being a counter inc + a sketch record.
#[derive(Serialize, Clone, Copy)]
struct RecordRun {
    threads: usize,
    ops: u64,
    ns_per_record: f64,
    ops_per_sec: f64,
}

fn finish_run(threads: usize, total_ops: u64, elapsed_ns: f64) -> RecordRun {
    RecordRun {
        threads,
        ops: total_ops,
        ns_per_record: elapsed_ns / total_ops as f64,
        ops_per_sec: total_ops as f64 * 1e9 / elapsed_ns,
    }
}

/// Repetitions per measured configuration. Striped and mutex runs are
/// paired back-to-back within each repetition and the repetition with
/// the highest striped/mutex ratio wins: external load on a shared
/// machine only ever deflates throughput, but it can deflate *either*
/// side, so picking each configuration's best epoch independently can
/// pair a loaded striped run against an idle mutex run and misstate
/// the ratio. A paired repetition sees the same machine conditions on
/// both sides.
const THROUGHPUT_REPS: usize = 5;

fn best_pair(
    mut striped: impl FnMut() -> RecordRun,
    mut mutex: impl FnMut() -> RecordRun,
) -> (RecordRun, RecordRun, f64) {
    let mut best: Option<(RecordRun, RecordRun, f64)> = None;
    for _ in 0..THROUGHPUT_REPS {
        let s = striped();
        let m = mutex();
        let ratio = s.ops_per_sec / m.ops_per_sec;
        if best.as_ref().is_none_or(|&(_, _, r)| ratio > r) {
            best = Some((s, m, ratio));
        }
    }
    best.expect("at least one repetition")
}

/// Striped path: handles are resolved once per thread (the intended
/// usage — register on the cold path, record lock-free on the hot one).
fn striped_run(threads: usize, ops_per_thread: u64) -> RecordRun {
    let registry = PulseRegistry::new();
    let barrier = Barrier::new(threads + 1);
    let elapsed_ns = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let registry = registry.clone();
                let barrier = &barrier;
                s.spawn(move || {
                    let calls = registry.counter("dispatch.bench.calls");
                    let latency = registry.sketch("dispatch.bench.latency_ns");
                    barrier.wait();
                    for i in 0..ops_per_thread {
                        calls.inc();
                        latency.record(100.0 + (i & 0xff) as f64);
                    }
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        for h in handles {
            h.join().expect("recording thread");
        }
        start.elapsed().as_nanos() as f64
    });
    assert_eq!(
        registry.counter_value("dispatch.bench.calls"),
        Some(threads as u64 * ops_per_thread)
    );
    finish_run(threads, threads as u64 * ops_per_thread, elapsed_ns)
}

/// Mutex baseline: the old traced-metrics path exactly as the dispatch
/// and guard layers use it (`m.inc(&format!("dispatch.{name}.calls"))`
/// — see `CodeVariant::dispatch` and `GuardedVariant::call`): every
/// event formats its metric name, then looks it up in a map under one
/// registry-wide lock.
fn mutex_run(threads: usize, ops_per_thread: u64) -> RecordRun {
    let metrics = MetricsRegistry::new();
    let barrier = Barrier::new(threads + 1);
    let function = std::hint::black_box("bench".to_string());
    let elapsed_ns = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let metrics = &metrics;
                let barrier = &barrier;
                let function = function.as_str();
                s.spawn(move || {
                    barrier.wait();
                    for i in 0..ops_per_thread {
                        metrics.inc(&format!("dispatch.{function}.calls"));
                        metrics.observe(
                            &format!("dispatch.{function}.latency_ns"),
                            100.0 + (i & 0xff) as f64,
                        );
                    }
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        for h in handles {
            h.join().expect("recording thread");
        }
        start.elapsed().as_nanos() as f64
    });
    assert_eq!(
        metrics.counter("dispatch.bench.calls"),
        Some(threads as u64 * ops_per_thread)
    );
    finish_run(threads, threads as u64 * ops_per_thread, elapsed_ns)
}

#[derive(Serialize)]
struct ThroughputReport {
    striped_1t: RecordRun,
    striped_8t: RecordRun,
    mutex_1t: RecordRun,
    mutex_8t: RecordRun,
    /// Aggregate striped 8T throughput over mutex 8T (acceptance: ≥ 4).
    striped_8t_vs_mutex_8t: f64,
    /// Aggregate striped 8T throughput over striped 1T (≥ 4 required
    /// only when the machine actually has ≥ 8 hardware threads).
    striped_8t_vs_striped_1t: f64,
    /// Per-event striped speedup over the mutex path, uncontended.
    striped_1t_vs_mutex_1t: f64,
    /// Whether the 8T-vs-1T scaling assertion was enforced here.
    scaling_assertion_enforced: bool,
    scaling_note: String,
}

fn throughput_phase(spec: SuiteSpec, failures: &mut Vec<String>) -> ThroughputReport {
    let (striped_ops, mutex_ops) = if spec.small {
        (200_000, 50_000)
    } else {
        (1_000_000, 200_000)
    };
    let (striped_1t, mutex_1t, ratio_1t) =
        best_pair(|| striped_run(1, striped_ops), || mutex_run(1, mutex_ops));
    let (striped_8t, mutex_8t, vs_mutex) = best_pair(
        || striped_run(RECORD_THREADS, striped_ops),
        || mutex_run(RECORD_THREADS, mutex_ops),
    );

    let vs_self = striped_8t.ops_per_sec / striped_1t.ops_per_sec;
    if vs_mutex < 4.0 {
        failures.push(format!(
            "striped 8-thread throughput is only {vs_mutex:.2}x the mutex-registry baseline (need >= 4x)"
        ));
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let enforce_scaling = cores >= RECORD_THREADS;
    if enforce_scaling && vs_self < 4.0 {
        failures.push(format!(
            "striped 8-thread throughput is only {vs_self:.2}x single-threaded on a {cores}-thread machine (need >= 4x)"
        ));
    }
    let scaling_note = if enforce_scaling {
        format!("{cores} hardware threads: 8T >= 4x 1T enforced on the striped path")
    } else {
        format!(
            "{cores} hardware thread(s): 8T-vs-1T scaling cannot manifest here, reported unenforced; the mutex-baseline ratio is enforced instead"
        )
    };
    ThroughputReport {
        striped_1t,
        striped_8t,
        mutex_1t,
        mutex_8t,
        striped_8t_vs_mutex_8t: vs_mutex,
        striped_8t_vs_striped_1t: vs_self,
        striped_1t_vs_mutex_1t: ratio_1t,
        scaling_assertion_enforced: enforce_scaling,
        scaling_note,
    }
}

// ---------------------------------------------------------------------
// Phase 2 — sketch merge cost
// ---------------------------------------------------------------------

#[derive(Serialize)]
struct MergeReport {
    sketches: usize,
    values_per_sketch: u64,
    ns_per_merge: f64,
}

fn merge_phase(failures: &mut Vec<String>) -> MergeReport {
    const SKETCHES: usize = 64;
    const VALUES: u64 = 10_000;
    let cfg = SketchConfig::default();
    let filled: Vec<QuantileSketch> = (0..SKETCHES as u64)
        .map(|k| {
            let mut s = QuantileSketch::new(cfg);
            let mut x = 0x9e37_79b9_7f4a_7c15u64.wrapping_add(k);
            for _ in 0..VALUES {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                s.record(1.0 + (x % 1_000_000) as f64);
            }
            s
        })
        .collect();

    let reps = 50u64;
    let start = Instant::now();
    let mut last_count = 0;
    for _ in 0..reps {
        let mut acc = QuantileSketch::new(cfg);
        for s in &filled {
            acc.merge(s);
        }
        last_count = std::hint::black_box(&acc).count();
    }
    let elapsed = start.elapsed().as_nanos() as f64;
    if last_count != SKETCHES as u64 * VALUES {
        failures.push(format!(
            "merged sketch lost observations: {last_count} != {}",
            SKETCHES as u64 * VALUES
        ));
    }
    MergeReport {
        sketches: SKETCHES,
        values_per_sketch: VALUES,
        ns_per_merge: elapsed / (reps * SKETCHES as u64) as f64,
    }
}

// ---------------------------------------------------------------------
// Phase 3 — all five suites, multi-threaded dispatch
// ---------------------------------------------------------------------

#[derive(Serialize)]
struct SuitePulseOutcome {
    name: String,
    dispatch_threads: usize,
    dispatches: u64,
    dispatch_errors: u64,
    p50_ns: f64,
    p99_ns: f64,
    profiler_sampled: u64,
    profile_cells: usize,
    collapsed_path: String,
    profile_path: String,
}

/// Tune a suite once, then dispatch its test set from several threads —
/// each with its own `CodeVariant` rebuilt from the shared exported
/// artifact — into one shared pulse registry and profiler.
fn suite_pulse<I, F>(
    name: &str,
    build: F,
    train: &[I],
    test: &[I],
    registry: &PulseRegistry,
    failures: &mut Vec<String>,
) -> BenchResult<(SuitePulseOutcome, ModelArtifact)>
where
    I: Send + Sync,
    F: Fn(&Context) -> CodeVariant<I> + Sync,
{
    let ctx = Context::new();
    let mut cv = build(&ctx);
    Autotuner::new().tune(&mut cv, train)?;
    let artifact = cv.export_artifact()?;
    let function = cv.name().to_string();

    // Sample every 4th dispatch so the profiler sees all variants even
    // on the miniature collections.
    let profiler = PulseProfiler::new(4);
    let errors = std::thread::scope(|s| {
        let handles: Vec<_> = (0..DISPATCH_THREADS)
            .map(|_| {
                let build = &build;
                let artifact = &artifact;
                let registry = registry.clone();
                let profiler = profiler.clone();
                s.spawn(move || {
                    let ctx = Context::new();
                    let mut cv = build(&ctx);
                    if cv.install_artifact(artifact.clone()).is_err() {
                        return test.len() as u64 * 2;
                    }
                    FunctionPulse::install(&mut cv, &registry, Some(profiler));
                    let mut errors = 0u64;
                    for _pass in 0..2 {
                        for input in test {
                            if cv.call(input).is_err() {
                                errors += 1;
                            }
                        }
                    }
                    errors
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("dispatch thread"))
            .sum::<u64>()
    });
    if errors > 0 {
        failures.push(format!("{name}: {errors} dispatch(es) failed under pulse"));
    }

    let latency_metric = format!("dispatch.{function}.latency_ns");
    let dispatches = registry
        .counter_value(&format!("dispatch.{function}.calls"))
        .unwrap_or(0);
    let expected = (DISPATCH_THREADS * 2 * test.len()) as u64;
    if dispatches + errors != expected {
        failures.push(format!(
            "{name}: registry saw {dispatches} dispatches, expected {expected}"
        ));
    }
    let p50 = registry.quantile(&latency_metric, 0.5).unwrap_or(0.0);
    let p99 = registry.quantile(&latency_metric, 0.99).unwrap_or(0.0);
    if dispatches > 0 && p99 <= 0.0 {
        failures.push(format!("{name}: latency sketch is empty after dispatch"));
    }

    let dir = out_dir();
    let collapsed_path = dir.join(format!("{name}.collapsed"));
    let profile_path = dir.join(format!("{name}.profile.json"));
    write_file(&collapsed_path, &profiler.collapsed())?;
    write_file(&profile_path, &profiler.to_json())?;
    let report = profiler.report();
    if report.entries.is_empty() {
        failures.push(format!("{name}: profiler sampled no dispatches"));
    }

    Ok((
        SuitePulseOutcome {
            name: name.to_string(),
            dispatch_threads: DISPATCH_THREADS,
            dispatches,
            dispatch_errors: errors,
            p50_ns: p50,
            p99_ns: p99,
            profiler_sampled: profiler.sampled(),
            profile_cells: report.entries.len(),
            collapsed_path: collapsed_path.display().to_string(),
            profile_path: profile_path.display().to_string(),
        },
        artifact,
    ))
}

// ---------------------------------------------------------------------
// Phase 4 — SLO drill: FaultPlan slowdown → page → rollback
// ---------------------------------------------------------------------

#[derive(Serialize)]
struct SloDrillOutcome {
    suite: String,
    healthy_p99_ns: f64,
    threshold_ns: f64,
    healthy_ticks: usize,
    healthy_alerts: usize,
    faulty_ticks_to_alert: Option<usize>,
    alert: Option<PulseAlert>,
    lifecycle: Vec<String>,
    rolled_back: bool,
}

/// Dispatch healthily under a p99 watchdog, inject an 8× `FaultPlan`
/// slowdown, and require: the watchdog pages with a latency regression,
/// and `StagedPromotion::ingest_alert` rolls a promoted candidate back.
fn slo_drill<I, F>(
    suite: &str,
    build: F,
    artifact: &ModelArtifact,
    test: &[I],
    failures: &mut Vec<String>,
) -> BenchResult<SloDrillOutcome>
where
    I: Send + Sync,
    F: Fn(&Context) -> CodeVariant<I>,
{
    let registry = PulseRegistry::new();
    let ctx = Context::new();
    let mut cv = build(&ctx);
    cv.install_artifact(artifact.clone())?;
    FunctionPulse::install(&mut cv, &registry, None);
    let metric = format!("dispatch.{}.latency_ns", cv.name());

    let pass = |cv: &mut CodeVariant<I>| -> BenchResult<()> {
        for input in test {
            cv.call(input)?;
        }
        Ok(())
    };

    // Calibrate: the simulator is deterministic without a fault plan, so
    // the healthy p99 is stable and 3x headroom cannot false-page while
    // an 8x slowdown must breach it.
    pass(&mut cv)?;
    pass(&mut cv)?;
    let healthy_p99 = registry.quantile(&metric, 0.99).unwrap_or(0.0);
    let threshold = (healthy_p99 * 3.0).max(1.0);

    let spec = SloSpec::p99_below(format!("{suite} dispatch p99"), metric.as_str(), threshold);
    let mut dog = SloWatchdog::new(vec![spec]).with_min_window_count(test.len().max(1) as u64);

    const HEALTHY_TICKS: usize = 6;
    let mut healthy_alerts = 0usize;
    for _ in 0..HEALTHY_TICKS {
        pass(&mut cv)?;
        healthy_alerts += dog.tick(&registry).len();
    }
    if healthy_alerts > 0 {
        failures.push(format!(
            "{suite}: watchdog paged {healthy_alerts} time(s) on healthy traffic"
        ));
    }

    install_fault_plan(FaultPlan {
        seed: 7,
        slowdown_prob: 1.0,
        slowdown_factor: 8.0,
        ..FaultPlan::default()
    });
    let mut alert: Option<PulseAlert> = None;
    let mut faulty_ticks_to_alert = None;
    for tick in 1..=10 {
        if let Err(e) = pass(&mut cv) {
            uninstall_fault_plan();
            return Err(e);
        }
        if let Some(a) = dog
            .tick(&registry)
            .into_iter()
            .find(|a| a.kind == AlertKind::LatencyRegression && a.severity == AlertSeverity::Page)
        {
            alert = Some(a);
            faulty_ticks_to_alert = Some(tick);
            break;
        }
    }
    uninstall_fault_plan();

    let mut lifecycle = Vec::new();
    let mut rolled_back = false;
    match &alert {
        None => failures.push(format!(
            "{suite}: injected 8x slowdown never tripped the p99 watchdog"
        )),
        Some(alert) => {
            // Observe→act: a candidate promoted into probation must be
            // rolled back when the page lands.
            let policy = PromotionPolicy {
                shadow_window: 4,
                probation_window: 8,
                ..PromotionPolicy::default()
            };
            let mut sp = StagedPromotion::new(artifact.clone(), policy);
            let mut events = sp.stage_candidate(artifact.clone())?;
            events.extend(sp.promote_now(None)?);
            events.extend(sp.ingest_alert(alert, None)?);
            rolled_back = events
                .iter()
                .any(|e| matches!(e, LifecycleEvent::RolledBack { .. }));
            if !rolled_back {
                failures.push(format!(
                    "{suite}: latency page did not roll back the promoted candidate: {events:?}"
                ));
            }
            lifecycle = events.iter().map(|e| format!("{e:?}")).collect();
        }
    }

    Ok(SloDrillOutcome {
        suite: suite.to_string(),
        healthy_p99_ns: healthy_p99,
        threshold_ns: threshold,
        healthy_ticks: HEALTHY_TICKS,
        healthy_alerts,
        faulty_ticks_to_alert,
        alert,
        lifecycle,
        rolled_back,
    })
}

// ---------------------------------------------------------------------
// Report assembly
// ---------------------------------------------------------------------

#[derive(Serialize)]
struct PulseBenchReport {
    scale: String,
    available_parallelism: usize,
    record_threads: usize,
    throughput: ThroughputReport,
    sketch_merge: MergeReport,
    suites: Vec<SuitePulseOutcome>,
    slo_drill: SloDrillOutcome,
    failures: Vec<String>,
}

fn main() {
    exit_on_error(run());
}

fn run() -> BenchResult<()> {
    let spec = SuiteSpec::from_env();
    let cfg = device();
    let dir = out_dir();
    let mut failures = Vec::new();
    println!("== nitro-pulse report ==");
    if spec.small {
        println!("(NITRO_SCALE=small — miniature collections)");
    }
    println!("artifacts under {}", dir.display());

    let throughput = throughput_phase(spec, &mut failures);
    println!(
        "record: striped {:.1} ns/op (1T) {:.1} ns/op (8T) · mutex {:.1} ns/op (1T) {:.1} ns/op (8T)",
        throughput.striped_1t.ns_per_record,
        throughput.striped_8t.ns_per_record,
        throughput.mutex_1t.ns_per_record,
        throughput.mutex_8t.ns_per_record,
    );
    println!(
        "ratios: striped-8T/mutex-8T {:.1}x · striped-8T/striped-1T {:.2}x ({})",
        throughput.striped_8t_vs_mutex_8t,
        throughput.striped_8t_vs_striped_1t,
        throughput.scaling_note,
    );

    let sketch_merge = merge_phase(&mut failures);
    println!(
        "sketch merge: {:.0} ns/merge ({} sketches x {} values)",
        sketch_merge.ns_per_merge, sketch_merge.sketches, sketch_merge.values_per_sketch
    );

    // One shared registry across every suite: per-function metric names
    // keep the streams separate, and the snapshot at the end is what a
    // production process would export.
    let registry = PulseRegistry::new();
    let mut suites = Vec::new();

    let spmv_artifact = {
        let (train, test) = if spec.small {
            nitro_sparse::collection::spmv_small_sets(spec.seed)
        } else {
            (
                nitro_sparse::collection::spmv_training_set(spec.seed),
                nitro_sparse::collection::spmv_test_set(spec.seed),
            )
        };
        let (outcome, artifact) = suite_pulse(
            "spmv",
            |ctx| nitro_sparse::spmv::build_code_variant(ctx, &cfg),
            &train,
            &test,
            &registry,
            &mut failures,
        )?;
        suites.push(outcome);
        (artifact, test)
    };
    {
        let (train, test) = if spec.small {
            nitro_solvers::collection::solver_small_sets(spec.seed)
        } else {
            (
                nitro_solvers::collection::solver_training_set(spec.seed),
                nitro_solvers::collection::solver_test_set(spec.seed),
            )
        };
        let (outcome, _) = suite_pulse(
            "solvers",
            |ctx| nitro_solvers::variants::build_code_variant(ctx, &cfg),
            &train,
            &test,
            &registry,
            &mut failures,
        )?;
        suites.push(outcome);
    }
    {
        let (train, test) = nitro_bench::bfs_sets(spec);
        let (outcome, _) = suite_pulse(
            "bfs",
            |ctx| nitro_graph::bfs::build_code_variant(ctx, &cfg),
            &train,
            &test,
            &registry,
            &mut failures,
        )?;
        suites.push(outcome);
    }
    {
        let (train, test) = if spec.small {
            nitro_histogram::data::hist_small_sets(spec.seed)
        } else {
            (
                nitro_histogram::data::hist_training_set(spec.seed),
                nitro_histogram::data::hist_test_set(spec.seed),
            )
        };
        let (outcome, _) = suite_pulse(
            "histogram",
            |ctx| nitro_histogram::variants::build_code_variant(ctx, &cfg),
            &train,
            &test,
            &registry,
            &mut failures,
        )?;
        suites.push(outcome);
    }
    {
        let (train, test) = if spec.small {
            nitro_sort::keys::sort_small_sets(spec.seed)
        } else {
            (
                nitro_sort::keys::sort_training_set(spec.seed),
                nitro_sort::keys::sort_test_set(spec.seed),
            )
        };
        let (outcome, _) = suite_pulse(
            "sort",
            |ctx| nitro_sort::variants::build_code_variant(ctx, &cfg),
            &train,
            &test,
            &registry,
            &mut failures,
        )?;
        suites.push(outcome);
    }
    for s in &suites {
        println!(
            "{:>9}: {} dispatches on {} threads · p50 {:.0} ns · p99 {:.0} ns · {} profile cell(s)",
            s.name, s.dispatches, s.dispatch_threads, s.p50_ns, s.p99_ns, s.profile_cells
        );
    }

    let (artifact, test) = spmv_artifact;
    let slo_drill = slo_drill(
        "spmv",
        |ctx| nitro_sparse::spmv::build_code_variant(ctx, &cfg),
        &artifact,
        &test,
        &mut failures,
    )?;
    match (&slo_drill.alert, slo_drill.faulty_ticks_to_alert) {
        (Some(a), Some(t)) => println!(
            "slo drill: paged after {t} faulty tick(s) — p99 {:.0} ns over threshold {:.0} ns · rollback: {}",
            a.observed, a.threshold, slo_drill.rolled_back
        ),
        _ => println!("slo drill: no alert fired"),
    }

    let report = PulseBenchReport {
        scale: if spec.small { "small" } else { "full" }.to_string(),
        available_parallelism: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        record_threads: RECORD_THREADS,
        throughput,
        sketch_merge,
        suites,
        slo_drill,
        failures: failures.clone(),
    };
    let json = to_json_pretty("pulse bench report", &report)?;
    write_file(
        &PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/BENCH_pulse.json"),
        &json,
    )?;
    println!("wrote target/BENCH_pulse.json");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("\nall pulse guarantees held: striped recording beats the mutex registry >= 4x, the injected slowdown paged, and the page rolled the candidate back");
    Ok(())
}
