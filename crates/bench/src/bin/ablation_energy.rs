//! Extension (paper §II-B): tuning for energy instead of time.
//!
//! "By returning the appropriate value, Nitro can also be used to predict
//! variants according to other optimization criteria, for example, energy
//! usage." The simulated device charges DRAM pin energy, dynamic SM
//! energy and a static power floor, so time- and energy-optimal variants
//! genuinely differ (e.g. a slightly slower variant that moves far fewer
//! bytes can win on energy). This harness tunes SpMV both ways and
//! reports what each model trades away.

use nitro_bench::error::{exit_on_error, BenchResult};
use nitro_bench::{cached_table, pct, SuiteSpec};
use nitro_core::Context;
use nitro_sparse::spmv::{build_code_variant_metric, SpmvMetric};
use nitro_tuner::{evaluate_model, Autotuner, ProfileTable};

fn main() {
    exit_on_error(run());
}

fn run() -> BenchResult<()> {
    let spec = SuiteSpec::from_env();
    let cfg = nitro_bench::device();
    println!("== Extension: energy-objective tuning (paper §II-B) ==");
    let scale = if spec.small { "small" } else { "full" };

    let (train, test) = if spec.small {
        nitro_sparse::collection::spmv_small_sets(spec.seed)
    } else {
        (
            nitro_sparse::collection::spmv_training_set(spec.seed),
            nitro_sparse::collection::spmv_test_set(spec.seed),
        )
    };

    // Profile under each metric; variant set and features are identical,
    // only the objective scalar differs.
    let mut tables: Vec<(SpmvMetric, ProfileTable, nitro_core::TrainedModel)> = Vec::new();
    for (metric, tag) in [(SpmvMetric::Time, "time"), (SpmvMetric::Energy, "energy")] {
        let ctx = Context::new();
        let mut cv = build_code_variant_metric(&ctx, &cfg, metric);
        let train_table = cached_table(
            &format!("spmv-{tag}-{scale}-train"),
            &cv,
            &train,
            spec.cache,
        );
        let test_table = cached_table(&format!("spmv-{tag}-{scale}-test"), &cv, &test, spec.cache);
        Autotuner::new().tune_from_table(&mut cv, &train_table)?;
        tables.push((metric, test_table, cv.export_artifact()?.model));
    }
    let (time_table, time_model) = (&tables[0].1, &tables[0].2);
    let (energy_table, energy_model) = (&tables[1].1, &tables[1].2);

    // Each model evaluated under each metric's ground truth.
    println!(
        "\n{:<24} {:>12} {:>12}",
        "model \\ judged on", "time", "energy"
    );
    for (name, model) in [("time-tuned", time_model), ("energy-tuned", energy_model)] {
        let on_time = evaluate_model(time_table, model, Some(0));
        let on_energy = evaluate_model(energy_table, model, Some(0));
        println!(
            "{:<24} {:>12} {:>12}",
            name,
            pct(on_time.mean_relative_perf),
            pct(on_energy.mean_relative_perf)
        );
    }

    // Where do the two objectives disagree about the best variant?
    let mut disagreements = 0;
    let mut considered = 0;
    for i in 0..time_table.len() {
        if let (Some(bt), Some(be)) = (time_table.best_variant(i), energy_table.best_variant(i)) {
            considered += 1;
            if bt != be {
                disagreements += 1;
            }
        }
    }
    println!(
        "\ntime-optimal and energy-optimal variants differ on {disagreements}/{considered} test inputs"
    );
    println!("(diagonal dominance = each objective needs its own model, as §II-B anticipates)");
    Ok(())
}
