//! Chaos report: run every benchmark suite through the resilient
//! dispatcher under a seeded fault plan and assert that the guarantees
//! of `nitro-guard` hold end to end.
//!
//! ```text
//! NITRO_SCALE=small cargo run -p nitro-bench --bin chaos_report
//! ```
//!
//! Per suite the harness:
//!
//! 1. wraps the untuned `code_variant` in a [`GuardedVariant`] and
//!    dispatches a few inputs in **degraded mode** (no model installed),
//! 2. tunes cleanly, installs the artifact through the audited path and
//!    checks the guard reports itself healthy again,
//! 3. profiles the test set cleanly as ground truth, then injects an
//!    always-panicking fault into the most-predicted non-default variant
//!    and installs a process-global [`FaultPlan`] with a 5% launch
//!    failure probability,
//! 4. dispatches every test input under `catch_unwind`, counting panics
//!    that escape the guard (there must be none) and scoring successful
//!    calls against the clean exhaustive-search oracle,
//! 5. exports the metrics snapshot to `target/nitro-guard/` and checks
//!    the `guard.<fn>.{quarantine,retry,degraded}` counters are present.
//!
//! Exits non-zero if any suite lets a panic escape, never quarantines
//! the poisoned variant, never retries, never ran degraded, or drops
//! the guard counters from its exported snapshot.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use nitro_bench::error::{exit_on_error, to_json_pretty, write_file, BenchResult};
use nitro_bench::{device, pct, SuiteSpec};
use nitro_core::{CodeVariant, Context};
use nitro_guard::{inject_failures, GuardPolicy, GuardedVariant};
use nitro_simt::{install_fault_plan, silence_injected_panics, uninstall_fault_plan, FaultPlan};
use nitro_trace::{MetricsSnapshot, RingSink, Tracer};
use nitro_tuner::{Autotuner, ProfileTable};

/// Launch failure probability of the injected fault plan.
const LAUNCH_FAILURE_PROB: f64 = 0.05;

/// How many leading test inputs are dispatched in degraded mode.
const DEGRADED_WARMUP: usize = 3;

/// Everything the summary needs from one suite's chaos run.
struct ChaosOutcome {
    name: String,
    victim: String,
    dispatches: usize,
    successes: usize,
    /// Dispatch errors on inputs with no clean finite-cost variant.
    acceptable_errors: usize,
    /// Dispatch errors on inputs the clean oracle could solve.
    unexpected_errors: usize,
    /// Panics that crossed the guard boundary. Must be zero.
    escaped_panics: usize,
    /// Mean fraction of the clean oracle's objective over successes.
    mean_relative: f64,
    quarantines: u64,
    retries: u64,
    degraded: u64,
    fallbacks: u64,
    recoveries: u64,
    /// `simt.fault.failures` — launches the plan actually killed.
    injected_launch_failures: u64,
    /// Assertion failures (empty means the suite held every guarantee).
    failures: Vec<String>,
}

/// Output directory for chaos artifacts.
fn out_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/nitro-guard");
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Policy for the chaos runs: two retries per candidate (launch-heavy
/// variants fail often under a per-launch plan, so a single retry is
/// not enough while breakers are still learning), and a quarantine
/// threshold high enough that input-dependent failures (e.g. unsolvable
/// solver systems, where *every* variant fails) do not trip breakers on
/// the fallback variants, while the always-panicking victim — which
/// charges `1 + retry_budget` failures per dispatch — still trips
/// within two calls. The short cooldown lets a half-open probe happen
/// mid-run.
fn chaos_policy() -> GuardPolicy {
    GuardPolicy {
        retry_budget: 2,
        quarantine_threshold: 6,
        cooldown_calls: 8,
        ..GuardPolicy::default()
    }
}

/// Deterministic per-suite salt so each suite sees a distinct but
/// reproducible fault stream.
fn suite_salt(name: &str) -> u64 {
    name.bytes().fold(0xCAFE_F00D_u64, |h, b| {
        h.wrapping_mul(131).wrapping_add(b as u64)
    })
}

/// Pick the variant to poison: the non-default variant the tuned model
/// predicts (and constraints allow) most often over the test set, so the
/// injected panic is guaranteed to sit on the hot dispatch path. Returns
/// the indices of the test inputs that predict it, for deterministic
/// re-dispatch if the main loop alone does not trip the breaker.
fn pick_victim<I: Send + Sync>(cv: &CodeVariant<I>, test: &[I]) -> Option<(usize, Vec<usize>)> {
    let default = cv.default_variant();
    let mut counts = vec![0usize; cv.n_variants()];
    let mut inputs: Vec<Vec<usize>> = vec![Vec::new(); cv.n_variants()];
    for (i, input) in test.iter().enumerate() {
        let (features, _) = cv.evaluate_features(input);
        if let Some(v) = cv.select(&features) {
            if Some(v) != default && cv.constraints_satisfied(v, input) {
                counts[v] += 1;
                inputs[v].push(i);
            }
        }
    }
    let victim = (0..counts.len()).max_by_key(|&v| counts[v])?;
    if counts[victim] == 0 {
        return None;
    }
    let at = std::mem::take(&mut inputs[victim]);
    Some((victim, at))
}

/// Run one suite's chaos experiment end to end.
fn chaos_suite<I: Send + Sync + 'static>(
    name: &str,
    cv: CodeVariant<I>,
    train: &[I],
    test: &[I],
    dir: &Path,
    seed: u64,
) -> BenchResult<ChaosOutcome> {
    let mut failures = Vec::new();

    let tracer = Tracer::new(Arc::new(RingSink::new(4096)));
    cv.context().install_tracer(tracer.clone());
    cv.declare_tracer_metrics(&tracer);
    // The simulator's fault counters go through the process-global slot.
    nitro_trace::install_global(tracer.clone());

    // Phase 1 — degraded mode: no model installed yet, so the guard
    // must report Degraded and serve the default variant.
    let mut guard = GuardedVariant::new(cv, chaos_policy())?;
    if !guard.health().is_degraded() {
        failures.push("guard reported Healthy with no model installed".into());
    }
    for input in test.iter().take(DEGRADED_WARMUP) {
        // Errors here are tolerated (some inputs are unsolvable by the
        // default variant); the degraded counter still advances.
        let _ = guard.call(input);
    }

    // Phase 2 — tune cleanly and recover through the audited install.
    Autotuner::new().tune(guard.inner_mut(), train)?;
    let artifact = guard.inner().export_artifact()?;
    guard.install_artifact_or_degrade(artifact);
    if guard.health().is_degraded() {
        failures.push(format!(
            "guard still degraded after audited install: {:?}",
            guard.health()
        ));
    }

    // Phase 3 — clean oracle, then poison the hot path.
    let oracle = ProfileTable::build(guard.inner(), test);
    let picked = pick_victim(guard.inner(), test);
    let (victim, victim_inputs) = match &picked {
        Some((v, at)) => (*v, at.clone()),
        None => {
            // Degenerate: the model only ever predicts the default.
            // Poison the next variant over so isolation is still tested,
            // even though quarantine may not trip.
            let d = guard.inner().default_variant().unwrap_or(0);
            ((d + 1) % guard.inner().n_variants().max(1), Vec::new())
        }
    };
    let victim_name = guard
        .inner()
        .variant(victim)
        .map(|v| v.name().to_string())
        .unwrap_or_else(|| format!("#{victim}"));
    inject_failures(guard.inner_mut(), victim, true)?;
    install_fault_plan(FaultPlan::with_failure_prob(
        seed ^ suite_salt(name),
        LAUNCH_FAILURE_PROB,
    ));

    // Phase 4 — dispatch the full test set under fault injection.
    let mut successes = 0usize;
    let mut acceptable_errors = 0usize;
    let mut unexpected_errors = 0usize;
    let mut escaped_panics = 0usize;
    let mut relative_sum = 0.0f64;
    let mut relative_n = 0usize;
    for (i, input) in test.iter().enumerate() {
        match catch_unwind(AssertUnwindSafe(|| guard.call(input))) {
            Err(_) => escaped_panics += 1,
            Ok(Ok(inv)) => {
                successes += 1;
                if let Some(best) = oracle.best_cost(i) {
                    let r = oracle.objective.relative(inv.objective, best);
                    if r.is_finite() {
                        relative_sum += r;
                        relative_n += 1;
                    }
                }
            }
            Ok(Err(_)) => {
                // An exhausted cascade is acceptable only on inputs the
                // clean oracle could not solve either.
                if oracle.best_variant(i).is_none() {
                    acceptable_errors += 1;
                } else {
                    unexpected_errors += 1;
                }
            }
        }
    }

    // If the main loop alone did not trip the victim's breaker (small
    // test sets), re-dispatch its predicted inputs: every call charges
    // `1 + retry_budget` consecutive failures, so quarantine is reached
    // deterministically within a few rounds.
    let mut extra_rounds = 0;
    while guard.stats().quarantines == 0 && extra_rounds < 8 {
        let Some(&i) = victim_inputs.first() else {
            break;
        };
        if catch_unwind(AssertUnwindSafe(|| guard.call(&test[i]))).is_err() {
            escaped_panics += 1;
        }
        extra_rounds += 1;
    }

    uninstall_fault_plan();
    tracer.flush();
    nitro_trace::uninstall_global();
    guard.inner().context().clear_tracer();

    // Phase 5 — export the snapshot and check the guard counters made it.
    let metrics = tracer.metrics().snapshot();
    let metrics_json = to_json_pretty("metrics snapshot", &metrics)?;
    write_file(&dir.join(format!("{name}.metrics.json")), &metrics_json)?;
    let reparsed = MetricsSnapshot::from_json(&metrics_json).map_err(|e| {
        nitro_bench::BenchError::Invalid(format!("{name}.metrics.json does not round-trip: {e}"))
    })?;
    for key in ["quarantine", "retry", "degraded"] {
        let counter = format!("guard.{name}.{key}");
        if reparsed.counter(&counter).is_none() {
            failures.push(format!("exported snapshot is missing counter '{counter}'"));
        }
    }

    // The guarantees under test.
    if escaped_panics > 0 {
        failures.push(format!("{escaped_panics} panic(s) escaped the guard"));
    }
    let stats = guard.stats().clone();
    if stats.degraded_calls == 0 {
        failures.push("no degraded-mode dispatches were recorded".into());
    }
    if !victim_inputs.is_empty() {
        if stats.quarantines == 0 {
            failures.push(format!(
                "poisoned variant '{victim_name}' was never quarantined"
            ));
        }
        if stats.retries == 0 {
            failures.push("no failed attempt was ever retried".into());
        }
        if !guard.is_quarantined(victim) {
            // The breaker may legitimately sit HalfOpen if the cooldown
            // elapsed on the very last calls; Closed would be a bug.
            if matches!(
                guard.breaker_state(victim),
                Some(nitro_guard::BreakerState::Closed {
                    consecutive_failures: 0
                })
            ) {
                failures.push(format!(
                    "poisoned variant '{victim_name}' ended Closed with a clean streak"
                ));
            }
        }
    }
    let tolerated = (test.len() / 5).max(1);
    if unexpected_errors > tolerated {
        failures.push(format!(
            "{unexpected_errors} dispatch error(s) on cleanly-solvable inputs (tolerance {tolerated})"
        ));
    }

    Ok(ChaosOutcome {
        name: name.to_string(),
        victim: victim_name,
        dispatches: test.len(),
        successes,
        acceptable_errors,
        unexpected_errors,
        escaped_panics,
        mean_relative: if relative_n > 0 {
            relative_sum / relative_n as f64
        } else {
            0.0
        },
        quarantines: stats.quarantines,
        retries: stats.retries,
        degraded: stats.degraded_calls,
        fallbacks: stats.fallbacks,
        recoveries: stats.recoveries,
        injected_launch_failures: metrics.counter("simt.fault.failures").unwrap_or(0),
        failures,
    })
}

fn summarize(o: &ChaosOutcome) {
    println!("\n== {} ==", o.name);
    println!(
        "  poisoned variant: {} · injected launch failures: {}",
        o.victim, o.injected_launch_failures
    );
    println!(
        "  dispatch: {} call(s), {} ok, {} tolerated error(s), {} unexpected, {} escaped panic(s)",
        o.dispatches, o.successes, o.acceptable_errors, o.unexpected_errors, o.escaped_panics
    );
    println!(
        "  guard: {} retr{}, {} quarantine(s), {} recover{}, {} fallback(s), {} degraded call(s)",
        o.retries,
        if o.retries == 1 { "y" } else { "ies" },
        o.quarantines,
        o.recoveries,
        if o.recoveries == 1 { "y" } else { "ies" },
        o.fallbacks,
        o.degraded
    );
    if o.successes > 0 {
        println!(
            "  mean performance vs clean oracle: {}",
            pct(o.mean_relative)
        );
    }
}

fn main() {
    exit_on_error(run());
}

fn run() -> BenchResult<()> {
    silence_injected_panics();
    let spec = SuiteSpec::from_env();
    let cfg = device();
    let dir = out_dir();
    println!("== nitro-guard chaos report ==");
    if spec.small {
        println!("(NITRO_SCALE=small — miniature collections)");
    }
    println!(
        "fault plan: {}% launch failures (seed {}) + one always-panicking variant per suite",
        LAUNCH_FAILURE_PROB * 100.0,
        spec.seed
    );
    println!("artifacts under {}", dir.display());

    let mut suites = Vec::new();
    {
        let ctx = Context::new();
        let cv = nitro_sparse::spmv::build_code_variant(&ctx, &cfg);
        let (train, test) = if spec.small {
            nitro_sparse::collection::spmv_small_sets(spec.seed)
        } else {
            (
                nitro_sparse::collection::spmv_training_set(spec.seed),
                nitro_sparse::collection::spmv_test_set(spec.seed),
            )
        };
        suites.push(chaos_suite("spmv", cv, &train, &test, &dir, spec.seed)?);
    }
    {
        let ctx = Context::new();
        let cv = nitro_solvers::variants::build_code_variant(&ctx, &cfg);
        let (train, test) = if spec.small {
            nitro_solvers::collection::solver_small_sets(spec.seed)
        } else {
            (
                nitro_solvers::collection::solver_training_set(spec.seed),
                nitro_solvers::collection::solver_test_set(spec.seed),
            )
        };
        suites.push(chaos_suite("solvers", cv, &train, &test, &dir, spec.seed)?);
    }
    {
        let ctx = Context::new();
        let cv = nitro_graph::bfs::build_code_variant(&ctx, &cfg);
        let (train, test) = nitro_bench::bfs_sets(spec);
        suites.push(chaos_suite("bfs", cv, &train, &test, &dir, spec.seed)?);
    }
    {
        let ctx = Context::new();
        let cv = nitro_histogram::variants::build_code_variant(&ctx, &cfg);
        let (train, test) = if spec.small {
            nitro_histogram::data::hist_small_sets(spec.seed)
        } else {
            (
                nitro_histogram::data::hist_training_set(spec.seed),
                nitro_histogram::data::hist_test_set(spec.seed),
            )
        };
        suites.push(chaos_suite(
            "histogram",
            cv,
            &train,
            &test,
            &dir,
            spec.seed,
        )?);
    }
    {
        let ctx = Context::new();
        let cv = nitro_sort::variants::build_code_variant(&ctx, &cfg);
        let (train, test) = if spec.small {
            nitro_sort::keys::sort_small_sets(spec.seed)
        } else {
            (
                nitro_sort::keys::sort_training_set(spec.seed),
                nitro_sort::keys::sort_test_set(spec.seed),
            )
        };
        suites.push(chaos_suite("sort", cv, &train, &test, &dir, spec.seed)?);
    }

    for s in &suites {
        summarize(s);
    }

    let mut failed = false;
    for s in &suites {
        for f in &s.failures {
            eprintln!("FAIL [{}]: {f}", s.name);
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("\nall chaos guarantees held: no panic escaped the guard");
    Ok(())
}
