//! Serving overload report: drive the `nitro-serve` front door with a
//! zipf-skewed, phase-structured load ramp — under a seeded 5%
//! `FaultPlan` — and assert the overload guarantees hold end to end.
//!
//! ```text
//! NITRO_SCALE=small cargo run -p nitro-bench --release --bin serve_report
//! ```
//!
//! The harness:
//!
//! 1. starts a sharded [`ServeFront`] over a two-variant synthetic
//!    function whose variants run real simt kernel launches (so the
//!    fault plan's injected launch failures exercise the guard's retry
//!    and fallback paths *under concurrent traffic*),
//! 2. offers four phases of rising load — warm, steady, heavy, burst
//!    (instantaneous) — with tenants drawn from a seeded
//!    [`ZipfSampler`] so a few tenants dominate,
//! 3. mid-way through the heavy phase, stages a candidate model in a
//!    [`StagedPromotion`], force-promotes it and publishes it through
//!    the epoch hot-swap while requests are in flight,
//! 4. writes `target/BENCH_serve.json` and exits nonzero if any gate
//!    fails: an escaped panic, a deadline violation among admitted
//!    requests, a reject rate that does not rise with offered load, an
//!    unbounded admitted p99, or a hot-swap that stalled or never
//!    installed.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use nitro_bench::error::{exit_on_error, to_json_pretty, write_file, BenchError, BenchResult};
use nitro_bench::{device, LoadPhase, SuiteSpec, ZipfSampler};
use nitro_core::{
    CodeVariant, Context, FnFeature, FnVariant, ModelArtifact, Priority, RequestMeta, TenantId,
};
use nitro_guard::GuardPolicy;
use nitro_ml::{ClassifierConfig, Dataset, TrainedModel};
use nitro_pulse::PulseRegistry;
use nitro_serve::{ServeClock, ServeConfig, ServeFront, ServeOutcome};
use nitro_simt::{
    install_fault_plan, silence_injected_panics, uninstall_fault_plan, FaultPlan, Gpu, Schedule,
};
use nitro_store::{PromotionPolicy, StagedPromotion};
use serde::Serialize;

/// Launch failure probability of the fault plan running underneath.
const LAUNCH_FAILURE_PROB: f64 = 0.05;

/// Deadline budget carried by every request. Generous against the
/// ~100 µs service time: an admitted request should *never* be late —
/// overload is absorbed by rejection and pre-dispatch shedding instead.
const BUDGET_NS: u64 = 500_000_000;

/// Number of zipf-ranked tenants.
const TENANTS: usize = 16;

/// Bound the admitted p99 end-to-end latency must stay under even in
/// the burst phase (queue is bounded, so waiting is bounded).
const P99_BOUND_NS: f64 = 400_000_000.0;

/// One request's input: a feature value plus a per-request kernel seed.
#[derive(Clone, Copy)]
struct ServeInput {
    x: f64,
    gpu_seed: u64,
}

/// Per-attempt launch salt: injected launch failures are *transient*
/// (each attempt redraws its fate), so the guard's retry budget can
/// rescue an unlucky launch instead of deterministically re-failing it.
static LAUNCH_SALT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

fn attempt_seed(base: u64) -> u64 {
    let salt = LAUNCH_SALT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    base ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Build the served registration: two variants with different
/// cost/robustness trade-offs, both doing real simulated kernel
/// launches (the fault plan can kill any launch).
fn serve_cv(ctx: &Context) -> CodeVariant<ServeInput> {
    let cfg = device();
    let mut cv = CodeVariant::new("serve_bench", ctx);
    {
        let cfg = cfg.clone();
        cv.add_variant(FnVariant::new("lean", move |inp: &ServeInput| {
            let gpu = Gpu::with_seed(cfg.clone(), attempt_seed(inp.gpu_seed));
            let work = 2_000 + (inp.x * 400.0) as u64;
            let stats = gpu.launch("serve_lean", 1, Schedule::EvenShare, |_b, bctx| {
                bctx.charge_ops(work);
            });
            spin(15_000);
            stats.elapsed_ns
        }));
    }
    {
        let cfg = cfg.clone();
        cv.add_variant(FnVariant::new("thorough", move |inp: &ServeInput| {
            let gpu = Gpu::with_seed(cfg.clone(), attempt_seed(inp.gpu_seed ^ 0xA5A5));
            let work = 6_000 + (inp.x * 100.0) as u64;
            let stats = gpu.launch("serve_thorough", 2, Schedule::Dynamic, |_b, bctx| {
                bctx.charge_ops(work);
            });
            spin(25_000);
            stats.elapsed_ns
        }));
    }
    cv.set_default(0);
    cv.add_input_feature(FnFeature::new("x", |inp: &ServeInput| inp.x));
    cv
}

/// Deterministic CPU work so wall-clock service time is measurable.
fn spin(iters: u64) {
    let mut acc = 0.0f64;
    for i in 0..iters {
        acc += (i as f64).sqrt();
    }
    std::hint::black_box(acc);
}

/// k=1 KNN mapping x < 5 → variant `lo`, x ≥ 5 → variant `hi`.
fn split_model(lo: usize, hi: usize) -> TrainedModel {
    let data = Dataset::from_parts(
        (0..10).map(|i| vec![f64::from(i)]).collect(),
        (0..10).map(|i| if i >= 5 { hi } else { lo }).collect(),
    );
    TrainedModel::train(&ClassifierConfig::Knn { k: 1 }, &data)
}

/// Export an artifact of the bench registration with `model` installed.
fn artifact_with(model: TrainedModel) -> BenchResult<ModelArtifact> {
    let ctx = Context::new();
    let mut cv = serve_cv(&ctx);
    cv.install_model(model);
    cv.export_artifact().map_err(BenchError::Nitro)
}

#[derive(Serialize)]
struct PhaseReport {
    name: String,
    offered_rps: f64,
    submitted: u64,
    admitted: u64,
    rejected: u64,
    reject_rate: f64,
    served: u64,
    shed_expired: u64,
    shed_hopeless: u64,
    failed: u64,
    fell_back: u64,
    deadline_violations: u64,
    p50_dispatch_ns: f64,
    p99_dispatch_ns: f64,
    p99_e2e_ns: f64,
    throughput_rps: f64,
}

#[derive(Serialize)]
struct HotSwapReport {
    phase: String,
    publish_wait_ns: u64,
    version: u64,
    installs: u64,
}

#[derive(Serialize)]
struct Gates {
    zero_escaped_panics: bool,
    zero_deadline_violations: bool,
    monotone_reject_rate: bool,
    bounded_admitted_p99: bool,
    hot_swap_applied: bool,
}

#[derive(Serialize)]
struct ServeReport {
    scale: String,
    seed: u64,
    launch_failure_prob: f64,
    budget_ns: u64,
    tenants: usize,
    shards: usize,
    queue_capacity: usize,
    phases: Vec<PhaseReport>,
    hot_swap: HotSwapReport,
    escaped_panics: u64,
    total_deadline_violations: u64,
    degrade_cached: u64,
    degrade_default: u64,
    gates: Gates,
    failures: Vec<String>,
}

fn out_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/BENCH_serve.json")
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn counter(registry: &PulseRegistry, name: &str) -> u64 {
    registry.counter_value(name).unwrap_or(0)
}

/// Snapshot of the cumulative serve counters (for per-phase deltas).
#[derive(Clone, Copy, Default)]
struct Counters {
    admitted: u64,
    rejected: u64,
    shed_expired: u64,
    shed_hopeless: u64,
    violations: u64,
}

fn counters(registry: &PulseRegistry) -> Counters {
    let f = "serve.serve_bench";
    Counters {
        admitted: counter(registry, &format!("{f}.admitted")),
        rejected: counter(registry, &format!("{f}.rejected_tenant"))
            + counter(registry, &format!("{f}.rejected_queue"))
            + counter(registry, &format!("{f}.rejected_expired")),
        shed_expired: counter(registry, &format!("{f}.shed_expired")),
        shed_hopeless: counter(registry, &format!("{f}.shed_hopeless")),
        violations: counter(registry, &format!("{f}.deadline_violations")),
    }
}

struct PhaseOutcome {
    report: PhaseReport,
    admitted_p99_e2e_ns: f64,
}

/// Drive one load phase: paced open-loop submission, then a closed-loop
/// drain of every admitted ticket. `swap` (heavy phase only) runs the
/// mid-load promotion at the phase's halfway point.
#[allow(clippy::too_many_arguments)]
fn run_phase(
    front: &ServeFront<ServeInput>,
    clock: &ServeClock,
    registry: &PulseRegistry,
    phase: LoadPhase,
    tenants: &mut ZipfSampler,
    inputs: &mut ZipfSampler,
    rng_salt: u64,
    mut swap: Option<&mut dyn FnMut() -> BenchResult<()>>,
) -> BenchResult<PhaseOutcome> {
    let before = counters(registry);
    let started = Instant::now();
    let mut tickets = Vec::new();
    let mut next_arrival = Instant::now();

    for i in 0..phase.requests {
        if let Some(run_swap) = swap.as_mut() {
            if i == phase.requests / 2 {
                run_swap()?;
            }
        }
        if phase.gap_ns > 0 {
            next_arrival += Duration::from_nanos(phase.gap_ns);
            let now = Instant::now();
            if next_arrival > now {
                std::thread::sleep(next_arrival - now);
            }
        }
        let tenant = tenants.next_rank() as u32;
        let x = inputs.next_rank() as f64 * 10.0 / inputs.n() as f64;
        let priority = match i % 4 {
            0 => Priority::Interactive,
            3 => Priority::Batch,
            _ => Priority::Standard,
        };
        let meta = RequestMeta::new(TenantId(tenant), priority, clock.now_ns(), BUDGET_NS);
        let input = ServeInput {
            x,
            gpu_seed: rng_salt ^ (i as u64) << 8,
        };
        if let Ok(ticket) = front.submit(input, meta) {
            tickets.push(ticket);
        }
    }

    // Closed loop: drain every admitted ticket before the next phase.
    let mut served = 0u64;
    let mut failed = 0u64;
    let mut fell_back = 0u64;
    let mut dispatch_ns = Vec::new();
    let mut e2e_ns = Vec::new();
    for ticket in tickets {
        match ticket.wait() {
            ServeOutcome::Served {
                dispatch_ns: d,
                queue_wait_ns: w,
                deadline_met: _,
                fell_back: fb,
                ..
            } => {
                served += 1;
                fell_back += u64::from(fb);
                dispatch_ns.push(d as f64);
                e2e_ns.push((w + d) as f64);
            }
            ServeOutcome::ShedExpired { .. }
            | ServeOutcome::ShedHopeless { .. }
            | ServeOutcome::ShedFailover { .. } => {}
            ServeOutcome::Failed { .. } | ServeOutcome::Quarantined { .. } => failed += 1,
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    dispatch_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    e2e_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());

    let after = counters(registry);
    let submitted = phase.requests as u64;
    let admitted = after.admitted - before.admitted;
    let rejected = after.rejected - before.rejected;
    let p99_e2e = quantile(&e2e_ns, 0.99);
    Ok(PhaseOutcome {
        report: PhaseReport {
            name: phase.name.to_string(),
            offered_rps: phase.offered_rps(),
            submitted,
            admitted,
            rejected,
            reject_rate: rejected as f64 / submitted.max(1) as f64,
            served,
            shed_expired: after.shed_expired - before.shed_expired,
            shed_hopeless: after.shed_hopeless - before.shed_hopeless,
            failed,
            fell_back,
            deadline_violations: after.violations - before.violations,
            p50_dispatch_ns: quantile(&dispatch_ns, 0.5),
            p99_dispatch_ns: quantile(&dispatch_ns, 0.99),
            p99_e2e_ns: p99_e2e,
            throughput_rps: served as f64 / elapsed.max(1e-9),
        },
        admitted_p99_e2e_ns: p99_e2e,
    })
}

fn run() -> BenchResult<()> {
    let spec = SuiteSpec::from_env();
    silence_injected_panics();
    install_fault_plan(FaultPlan::with_failure_prob(spec.seed, LAUNCH_FAILURE_PROB));

    let registry = PulseRegistry::new();
    let clock = ServeClock::wall();
    let config = ServeConfig {
        queue_capacity: Some(32),
        tenant_slots: 64,
        tenant_rate_per_s: 4_000.0,
        tenant_burst: 48,
        ..ServeConfig::default()
    };
    let shards = config.shards;
    let queue_capacity = config.queue_capacity.unwrap_or(0);
    // Retries are cheap for ~100 µs kernels and the fault plan kills 5%
    // of launches; two retries keep spurious Failed outcomes rare.
    let policy = GuardPolicy {
        retry_budget: 2,
        ..GuardPolicy::default()
    };
    let front = ServeFront::start(config, policy, clock.clone(), Some(&registry), |_| {
        serve_cv(&Context::new())
    })
    .map_err(BenchError::Nitro)?;

    // Incumbent model (always "thorough", so the cascade has a real
    // fallback to the "lean" default) flows through a StagedPromotion;
    // the candidate (per-input split) hot-swaps in mid-load.
    let mut promotion = StagedPromotion::new(
        artifact_with(split_model(1, 1))?,
        PromotionPolicy::default(),
    );
    front.publish_promotion(&promotion);

    let scale_div = if spec.small { 10 } else { 1 };
    let phases = [
        LoadPhase {
            name: "warm",
            requests: 400 / scale_div,
            gap_ns: 2_000_000,
        },
        LoadPhase {
            name: "steady",
            requests: 800 / scale_div,
            gap_ns: 400_000,
        },
        LoadPhase {
            name: "heavy",
            requests: 1_200 / scale_div,
            gap_ns: 80_000,
        },
        LoadPhase {
            name: "burst",
            requests: 800 / scale_div,
            gap_ns: 0,
        },
    ];

    let mut tenants = ZipfSampler::new(TENANTS, 1.2, spec.seed);
    let mut inputs = ZipfSampler::new(10, 1.1, spec.seed ^ 0xBEEF);

    let mut phase_reports = Vec::new();
    let mut admitted_p99s = Vec::new();
    let mut swap_report = None;
    for (pi, phase) in phases.iter().enumerate() {
        let is_heavy = phase.name == "heavy";
        let mut do_swap = |front: &ServeFront<ServeInput>| -> BenchResult<HotSwapReport> {
            promotion
                .stage_candidate(artifact_with(split_model(0, 1))?)
                .map_err(BenchError::Nitro)?;
            promotion.promote_now(None).map_err(BenchError::Nitro)?;
            let t0 = Instant::now();
            let version = front.publish_promotion(&promotion);
            let publish_wait_ns = t0.elapsed().as_nanos() as u64;
            Ok(HotSwapReport {
                phase: phase.name.to_string(),
                publish_wait_ns,
                version,
                installs: 0, // filled in after shutdown
            })
        };
        let outcome = if is_heavy {
            let front_ref = &front;
            let mut swap_out = None;
            let mut closure = || -> BenchResult<()> {
                swap_out = Some(do_swap(front_ref)?);
                Ok(())
            };
            let o = run_phase(
                front_ref,
                &clock,
                &registry,
                *phase,
                &mut tenants,
                &mut inputs,
                spec.seed ^ (pi as u64),
                Some(&mut closure),
            )?;
            swap_report = swap_out;
            o
        } else {
            run_phase(
                &front,
                &clock,
                &registry,
                *phase,
                &mut tenants,
                &mut inputs,
                spec.seed ^ (pi as u64),
                None,
            )?
        };
        admitted_p99s.push(outcome.admitted_p99_e2e_ns);
        phase_reports.push(outcome.report);
    }

    let total_violations = counter(&registry, "serve.serve_bench.deadline_violations");
    let degrade_cached = counter(&registry, "serve.serve_bench.degrade_cached");
    let degrade_default = counter(&registry, "serve.serve_bench.degrade_default");
    let installs = counter(&registry, "serve.serve_bench.hotswap_installs");
    let model_version = front.model_version();
    let summary = front.shutdown();
    uninstall_fault_plan();

    let mut swap_report = swap_report
        .ok_or_else(|| BenchError::Invalid("heavy phase never ran its hot-swap".to_string()))?;
    swap_report.installs = installs;

    // ---- Gates -------------------------------------------------------
    let mut failures = Vec::new();
    if summary.escaped_panics > 0 {
        failures.push(format!(
            "{} panic(s) escaped a shard's guarded dispatch",
            summary.escaped_panics
        ));
    }
    if total_violations > 0 {
        failures.push(format!(
            "{total_violations} admitted request(s) violated their deadline"
        ));
    }
    // Reject rate must rise with offered load (small tolerance for
    // scheduling noise between adjacent phases) and the burst phase
    // must reject much more than the warm phase.
    for w in phase_reports.windows(2) {
        if w[1].reject_rate < w[0].reject_rate - 0.02 {
            failures.push(format!(
                "reject rate fell from {:.3} ({}) to {:.3} ({}) as offered load rose",
                w[0].reject_rate, w[0].name, w[1].reject_rate, w[1].name
            ));
        }
    }
    let (first, last) = (&phase_reports[0], &phase_reports[phase_reports.len() - 1]);
    if last.reject_rate <= first.reject_rate {
        failures.push(format!(
            "burst phase reject rate {:.3} not above warm phase {:.3}",
            last.reject_rate, first.reject_rate
        ));
    }
    let p99_bounded = admitted_p99s.iter().all(|&p| p < P99_BOUND_NS);
    if !p99_bounded {
        failures.push(format!(
            "admitted p99 e2e exceeded {P99_BOUND_NS:.0} ns in some phase: {admitted_p99s:?}"
        ));
    }
    if installs == 0 || model_version < 2 {
        failures.push(format!(
            "hot-swap never installed (installs {installs}, version {model_version})"
        ));
    }
    if swap_report.publish_wait_ns > 50_000_000 {
        failures.push(format!(
            "publish stalled for {} ns: the epoch swap must not block",
            swap_report.publish_wait_ns
        ));
    }

    let monotone = !failures.iter().any(|f| f.contains("reject rate"));
    let report = ServeReport {
        scale: if spec.small { "small" } else { "full" }.to_string(),
        seed: spec.seed,
        launch_failure_prob: LAUNCH_FAILURE_PROB,
        budget_ns: BUDGET_NS,
        tenants: TENANTS,
        shards,
        queue_capacity,
        phases: phase_reports,
        hot_swap: swap_report,
        escaped_panics: summary.escaped_panics,
        total_deadline_violations: total_violations,
        degrade_cached,
        degrade_default,
        gates: Gates {
            zero_escaped_panics: summary.escaped_panics == 0,
            zero_deadline_violations: total_violations == 0,
            monotone_reject_rate: monotone,
            bounded_admitted_p99: p99_bounded,
            hot_swap_applied: installs > 0 && model_version >= 2,
        },
        failures: failures.clone(),
    };

    let path = out_path();
    write_file(&path, &to_json_pretty("serve report", &report)?)?;
    print_summary(&report, &path);

    if failures.is_empty() {
        Ok(())
    } else {
        Err(BenchError::Invalid(format!(
            "serve report failed {} gate(s): {}",
            failures.len(),
            failures.join("; ")
        )))
    }
}

fn print_summary(report: &ServeReport, path: &Path) {
    println!(
        "serve_report ({} scale, seed {:#x}, {}% fault plan, {} shard(s))",
        report.scale,
        report.seed,
        report.launch_failure_prob * 100.0,
        report.shards
    );
    for p in &report.phases {
        println!(
            "  {:>6}: offered {:>9.0} rps · {:>4} submitted · {:>4} admitted · reject {:>5.1}% · \
             served {:>4} · p50 {:>9.0} ns · p99 {:>10.0} ns · {:>7.0} rps through",
            p.name,
            p.offered_rps,
            p.submitted,
            p.admitted,
            p.reject_rate * 100.0,
            p.served,
            p.p50_dispatch_ns,
            p.p99_dispatch_ns,
            p.throughput_rps,
        );
    }
    println!(
        "  hot-swap in '{}': publish wait {} ns, version {}, {} install(s)",
        report.hot_swap.phase,
        report.hot_swap.publish_wait_ns,
        report.hot_swap.version,
        report.hot_swap.installs
    );
    println!(
        "  escaped panics {} · deadline violations {} · degrade cached/default {}/{}",
        report.escaped_panics,
        report.total_deadline_violations,
        report.degrade_cached,
        report.degrade_default
    );
    if report.failures.is_empty() {
        println!("  all gates passed → {}", path.display());
    } else {
        for f in &report.failures {
            eprintln!("  GATE FAILED: {f}");
        }
    }
}

fn main() {
    exit_on_error(run());
}
