//! One-shot report: run every benchmark suite and write a consolidated
//! markdown report (stdout + `target/nitro-report.md`). A compact way to
//! regenerate the core of EXPERIMENTS.md after any change.

use std::fmt::Write as _;

use nitro_bench::error::{exit_on_error, write_file, BenchResult};
use nitro_bench::{convergence_stats, run_all, SuiteSpec};
use nitro_ml::classification_report;

fn main() {
    exit_on_error(run());
}

fn run() -> BenchResult<()> {
    let spec = SuiteSpec::from_env();
    let mut md = String::new();
    let w = &mut md;

    let _ = writeln!(w, "# Nitro reproduction report\n");
    let _ = writeln!(
        w,
        "Scale: {} · seed {:#x} · device: {}\n",
        if spec.small {
            "small"
        } else {
            "full (paper-sized)"
        },
        spec.seed,
        nitro_bench::device().name
    );

    let _ = writeln!(w, "## Nitro vs exhaustive search (Figure 6)\n");
    let _ = writeln!(
        w,
        "| benchmark | inputs | nitro | ≥70% | ≥90% | mispred | macro-F1 |"
    );
    let _ = writeln!(w, "|---|---|---|---|---|---|---|");

    let suites = run_all(spec)?;
    for suite in &suites {
        // Selection-quality diagnostics on the test set's labeled subset.
        let test_data = suite.test_table.dataset();
        let preds: Vec<usize> = test_data.x.iter().map(|x| suite.model.predict(x)).collect();
        let report = classification_report(&test_data, &preds);
        let _ = writeln!(
            w,
            "| {} | {} | {:.2}% | {:.1}% | {:.1}% | {} | {:.3} |",
            suite.name,
            suite.nitro.n_inputs,
            suite.nitro.mean_relative_perf * 100.0,
            suite.nitro.frac_ge_70 * 100.0,
            suite.nitro.frac_ge_90 * 100.0,
            suite.nitro.mispredictions,
            report.macro_f1,
        );
    }

    let _ = writeln!(w, "\n## Per-variant performance (Figure 5)\n");
    for suite in &suites {
        let _ = writeln!(w, "### {}\n", suite.name);
        let _ = writeln!(w, "| variant | % of best |");
        let _ = writeln!(w, "|---|---|");
        let mut rows: Vec<(String, f64)> = suite
            .variant_names
            .iter()
            .zip(&suite.fixed)
            .map(|(n, s)| (n.clone(), s.mean_relative_perf))
            .collect();
        rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        for (name, perf) in rows {
            let _ = writeln!(w, "| {name} | {:.2}% |", perf * 100.0);
        }
        let _ = writeln!(
            w,
            "| **Nitro** | **{:.2}%** |\n",
            suite.nitro.mean_relative_perf * 100.0
        );
    }

    if let Some(solvers) = suites.iter().find(|s| s.name == "solvers") {
        let stats = convergence_stats(&solvers.test_table, &solvers.model, solvers.default_variant);
        let _ = writeln!(w, "## Solver convergence (§V-A)\n");
        let _ = writeln!(w, "- unsolvable systems: {} (paper: 6)", stats.unsolvable);
        let _ = writeln!(
            w,
            "- systems with ≥1 failing variant: {} (paper: 35)",
            stats.partially_failing
        );
        let _ = writeln!(
            w,
            "- Nitro picked a converging variant {}/{} times (paper: 33/35)\n",
            stats.nitro_picked_converging, stats.partially_failing
        );
    }

    print!("{md}");
    let path = nitro_bench::cache_dir().join("../nitro-report.md");
    write_file(&path, &md)?;
    eprintln!("(report written to {})", path.display());
    Ok(())
}
