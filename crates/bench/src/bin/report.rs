//! One-shot report: run every benchmark suite and write a consolidated
//! markdown report (stdout + `target/nitro-report.md`). A compact way to
//! regenerate the core of EXPERIMENTS.md after any change.

use std::fmt::Write as _;

use nitro_bench::{convergence_stats, run_all, SuiteSpec};
use nitro_ml::classification_report;

fn main() {
    let spec = SuiteSpec::from_env();
    let mut md = String::new();
    let w = &mut md;

    writeln!(w, "# Nitro reproduction report\n").unwrap();
    writeln!(
        w,
        "Scale: {} · seed {:#x} · device: {}\n",
        if spec.small {
            "small"
        } else {
            "full (paper-sized)"
        },
        spec.seed,
        nitro_bench::device().name
    )
    .unwrap();

    writeln!(w, "## Nitro vs exhaustive search (Figure 6)\n").unwrap();
    writeln!(
        w,
        "| benchmark | inputs | nitro | ≥70% | ≥90% | mispred | macro-F1 |"
    )
    .unwrap();
    writeln!(w, "|---|---|---|---|---|---|---|").unwrap();

    let suites = run_all(spec);
    for suite in &suites {
        // Selection-quality diagnostics on the test set's labeled subset.
        let test_data = suite.test_table.dataset();
        let preds: Vec<usize> = test_data.x.iter().map(|x| suite.model.predict(x)).collect();
        let report = classification_report(&test_data, &preds);
        writeln!(
            w,
            "| {} | {} | {:.2}% | {:.1}% | {:.1}% | {} | {:.3} |",
            suite.name,
            suite.nitro.n_inputs,
            suite.nitro.mean_relative_perf * 100.0,
            suite.nitro.frac_ge_70 * 100.0,
            suite.nitro.frac_ge_90 * 100.0,
            suite.nitro.mispredictions,
            report.macro_f1,
        )
        .unwrap();
    }

    writeln!(w, "\n## Per-variant performance (Figure 5)\n").unwrap();
    for suite in &suites {
        writeln!(w, "### {}\n", suite.name).unwrap();
        writeln!(w, "| variant | % of best |").unwrap();
        writeln!(w, "|---|---|").unwrap();
        let mut rows: Vec<(String, f64)> = suite
            .variant_names
            .iter()
            .zip(&suite.fixed)
            .map(|(n, s)| (n.clone(), s.mean_relative_perf))
            .collect();
        rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        for (name, perf) in rows {
            writeln!(w, "| {name} | {:.2}% |", perf * 100.0).unwrap();
        }
        writeln!(
            w,
            "| **Nitro** | **{:.2}%** |\n",
            suite.nitro.mean_relative_perf * 100.0
        )
        .unwrap();
    }

    if let Some(solvers) = suites.iter().find(|s| s.name == "solvers") {
        let stats = convergence_stats(&solvers.test_table, &solvers.model, solvers.default_variant);
        writeln!(w, "## Solver convergence (§V-A)\n").unwrap();
        writeln!(w, "- unsolvable systems: {} (paper: 6)", stats.unsolvable).unwrap();
        writeln!(
            w,
            "- systems with ≥1 failing variant: {} (paper: 35)",
            stats.partially_failing
        )
        .unwrap();
        writeln!(
            w,
            "- Nitro picked a converging variant {}/{} times (paper: 33/35)\n",
            stats.nitro_picked_converging, stats.partially_failing
        )
        .unwrap();
    }

    print!("{md}");
    let path = nitro_bench::cache_dir().join("../nitro-report.md");
    if std::fs::write(&path, &md).is_ok() {
        eprintln!("(report written to {})", path.display());
    }
}
