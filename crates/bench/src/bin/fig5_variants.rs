//! Figure 5: per-benchmark performance of every individual variant and of
//! the Nitro-tuned selector, relative to the per-input best variant
//! ("100%" = always running the exhaustive-search winner).

use nitro_bench::error::{exit_on_error, BenchResult};
use nitro_bench::{pct, run_all, SuiteSpec};

fn main() {
    exit_on_error(run());
}

fn run() -> BenchResult<()> {
    let spec = SuiteSpec::from_env();
    println!("== Figure 5: variant performance relative to exhaustive best ==");
    if spec.small {
        println!("(NITRO_SCALE=small — miniature collections)");
    }
    for suite in run_all(spec)? {
        println!(
            "\n--- {} (test inputs: {}) ---",
            suite.name, suite.nitro.n_inputs
        );
        let mut rows: Vec<(String, f64)> = suite
            .variant_names
            .iter()
            .zip(&suite.fixed)
            .map(|(n, s)| (n.clone(), s.mean_relative_perf))
            .collect();
        rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        for (name, perf) in rows {
            println!("  {:<22} {}", name, pct(perf));
        }
        println!(
            "  {:<22} {}   <- Nitro-tuned",
            "Nitro",
            pct(suite.nitro.mean_relative_perf)
        );
        let best_fixed = suite
            .fixed
            .iter()
            .map(|s| s.mean_relative_perf)
            .fold(0.0f64, f64::max);
        if suite.nitro.mean_relative_perf >= best_fixed {
            println!("  (Nitro beats every single variant, as in the paper)");
        } else {
            println!(
                "  (best fixed variant reaches {} — Nitro trails it)",
                pct(best_fixed)
            );
        }
    }
    Ok(())
}
