//! Ablation: cross-architecture retuning.
//!
//! The paper motivates its decoupled tuning interface with "porting to
//! different architectures" (§II-A). This harness tunes SpMV for the
//! Fermi-class device and for a Kepler-class one, then measures what a
//! model trained on the *wrong* device costs — the portability argument
//! for per-device tuning, quantified.

use nitro_bench::error::{exit_on_error, BenchResult};
use nitro_bench::{cached_table, pct, SuiteSpec};
use nitro_core::Context;
use nitro_simt::DeviceConfig;
use nitro_tuner::{evaluate_model, Autotuner};

fn short(cfg: &DeviceConfig) -> String {
    // "Tesla C2050 (Fermi, simulated)" -> "Tesla C2050"
    cfg.name.split(" (").next().unwrap_or(&cfg.name).to_string()
}

fn main() {
    exit_on_error(run());
}

fn run() -> BenchResult<()> {
    let spec = SuiteSpec::from_env();
    println!("== Ablation: per-device tuning (Fermi vs Kepler) ==");
    if spec.small {
        println!("(NITRO_SCALE=small — miniature collections)");
    }
    let scale = if spec.small { "small" } else { "full" };

    let (train, test) = if spec.small {
        nitro_sparse::collection::spmv_small_sets(spec.seed)
    } else {
        (
            nitro_sparse::collection::spmv_training_set(spec.seed),
            nitro_sparse::collection::spmv_test_set(spec.seed),
        )
    };

    let devices = [DeviceConfig::fermi_c2050(), DeviceConfig::kepler_k20()];
    let mut models = Vec::new();
    let mut test_tables = Vec::new();
    for (d, cfg) in devices.iter().enumerate() {
        let ctx = Context::new();
        let mut cv = nitro_sparse::spmv::build_code_variant(&ctx, cfg);
        let train_table = cached_table(
            &format!("spmv-dev{d}-{scale}-train"),
            &cv,
            &train,
            spec.cache,
        );
        let test_table = cached_table(&format!("spmv-dev{d}-{scale}-test"), &cv, &test, spec.cache);
        Autotuner::new().tune_from_table(&mut cv, &train_table)?;
        models.push(cv.export_artifact()?.model);
        test_tables.push(test_table);
    }

    println!(
        "\n{:<28} {:>12} {:>12}",
        "model \\ deployed on",
        short(&devices[0]),
        short(&devices[1])
    );
    for (m, cfg) in devices.iter().enumerate() {
        let mut cells = Vec::new();
        for table in test_tables.iter() {
            let s = evaluate_model(table, &models[m], Some(0));
            cells.push(pct(s.mean_relative_perf));
        }
        println!(
            "{:<28} {:>12} {:>12}",
            format!("tuned for {}", short(cfg)),
            cells[0],
            cells[1]
        );
    }
    println!("\n(diagonal = retuned per device; off-diagonal = stale model from the other device)");
    Ok(())
}
