//! Figure 4: the benchmark inventory — variants, features, and
//! training/test set sizes for each of the five benchmarks.

use nitro_bench::{bfs_sets, device, SuiteSpec};
use nitro_core::Context;

fn main() {
    let spec = SuiteSpec::from_env();
    let cfg = device();
    println!(
        "== Figure 4: benchmark inventory (device: {}) ==\n",
        cfg.name
    );
    println!(
        "{:<10} {:>9} {:>9} {:>7} {:>7}  variants | features",
        "benchmark", "#variants", "#features", "#train", "#test"
    );

    let ctx = Context::new();

    {
        let cv = nitro_sparse::spmv::build_code_variant(&ctx, &cfg);
        let (train, test) = if spec.small {
            nitro_sparse::collection::spmv_small_sets(spec.seed)
        } else {
            (
                nitro_sparse::collection::spmv_training_set(spec.seed),
                nitro_sparse::collection::spmv_test_set(spec.seed),
            )
        };
        row(
            "SpMV",
            cv.variant_names(),
            cv.feature_names(),
            train.len(),
            test.len(),
        );
    }
    {
        let cv = nitro_solvers::variants::build_code_variant(&ctx, &cfg);
        let (train, test) = if spec.small {
            nitro_solvers::collection::solver_small_sets(spec.seed)
        } else {
            (
                nitro_solvers::collection::solver_training_set(spec.seed),
                nitro_solvers::collection::solver_test_set(spec.seed),
            )
        };
        row(
            "Solvers",
            cv.variant_names(),
            cv.feature_names(),
            train.len(),
            test.len(),
        );
    }
    {
        let cv = nitro_graph::bfs::build_code_variant(&ctx, &cfg);
        let (train, test) = bfs_sets(spec);
        row(
            "BFS",
            cv.variant_names(),
            cv.feature_names(),
            train.len(),
            test.len(),
        );
    }
    {
        let cv = nitro_histogram::variants::build_code_variant(&ctx, &cfg);
        let (train, test) = if spec.small {
            nitro_histogram::data::hist_small_sets(spec.seed)
        } else {
            (
                nitro_histogram::data::hist_training_set(spec.seed),
                nitro_histogram::data::hist_test_set(spec.seed),
            )
        };
        row(
            "Histogram",
            cv.variant_names(),
            cv.feature_names(),
            train.len(),
            test.len(),
        );
    }
    {
        let cv = nitro_sort::variants::build_code_variant(&ctx, &cfg);
        let (train, test) = if spec.small {
            nitro_sort::keys::sort_small_sets(spec.seed)
        } else {
            (
                nitro_sort::keys::sort_training_set(spec.seed),
                nitro_sort::keys::sort_test_set(spec.seed),
            )
        };
        row(
            "Sort",
            cv.variant_names(),
            cv.feature_names(),
            train.len(),
            test.len(),
        );
    }

    println!("\npaper counts: SpMV (54,100)  Solvers (26,100)  BFS (20,148)  Histogram (200,1291)  Sort (120,600)");
}

fn row(name: &str, variants: Vec<String>, features: Vec<String>, train: usize, test: usize) {
    println!(
        "{:<10} {:>9} {:>9} {:>7} {:>7}  {} | {}",
        name,
        variants.len(),
        features.len(),
        train,
        test,
        variants.join(", "),
        features.join(", ")
    );
}
