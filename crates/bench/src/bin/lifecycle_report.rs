//! Lifecycle report: exercise `nitro-store`'s durability guarantees over
//! every benchmark suite and assert that they hold end to end.
//!
//! ```text
//! NITRO_SCALE=small cargo run -p nitro-bench --bin lifecycle_report
//! ```
//!
//! Per suite the harness runs six phases:
//!
//! 1. **tune** — a plain tune and a journaled [`Autotuner::tune_durable`]
//!    run over the same corpus must export byte-identical artifacts;
//! 2. **kill mid-tune** — a fresh durable run is killed at an arbitrary
//!    journal offset via [`TuningJournal::kill_after_appends`], leaving a
//!    torn tail on disk;
//! 3. **resume** — reopening the torn journal must surface a `NITRO070`
//!    recovery diagnostic, replay the surviving cells
//!    (`replayed_cells > 0`) and finish with an artifact byte-identical
//!    to the uninterrupted run;
//! 4. **stage + promote** — the tuned artifact is published as `v1`, a
//!    retrained candidate shadow-predicts through a
//!    [`StagedPromotion`] window and is promoted to `v2`, then passes
//!    probation;
//! 5. **forced regression** — a deliberately bad candidate (a constant
//!    classifier pinned to a poorly-chosen variant) is force-promoted and
//!    fed synthetic regressing observations: it must be auto-rolled-back
//!    (`NITRO074`) to the previous version;
//! 6. **alert-driven rollback** — the tuned function dispatches real
//!    inputs under a pulse p99 watchdog ([`SloWatchdog`]); healthy
//!    traffic must not page, then an injected [`FaultPlan`] slowdown
//!    must page with a latency regression, and
//!    [`StagedPromotion::ingest_alert`] must consume that page to roll
//!    a freshly promoted candidate back — the observe→act loop end to
//!    end. The slowdown drill runs on the suites whose dispatch cost
//!    comes from live simulated launches (spmv, histogram, sort);
//!    solvers and bfs price their variants with cached closed-form
//!    cost models, which launch-level fault injection cannot perturb,
//!    so they run the healthy watchdog only. The store must finish
//!    with zero corrupt or torn versions ([`ArtifactStore::verify`]).
//!
//! Per-suite JSON outcomes land under `target/nitro-store/`. Exits
//! non-zero if any suite violates a guarantee.

use std::path::{Path, PathBuf};

use nitro_bench::error::{exit_on_error, to_json_pretty, write_file, BenchResult};
use nitro_bench::{device, SuiteSpec};
use nitro_core::{CodeVariant, Context, ModelArtifact, MODEL_SCHEMA_VERSION};
use nitro_ml::{ClassifierConfig, Dataset, TrainedModel};
use nitro_pulse::{AlertKind, AlertSeverity, FunctionPulse, PulseRegistry, SloSpec, SloWatchdog};
use nitro_simt::{install_fault_plan, uninstall_fault_plan, FaultPlan};
use nitro_store::{ArtifactStore, LifecycleEvent, PromotionPolicy, StagedPromotion, TuningJournal};
use nitro_tuner::Autotuner;
use serde::Serialize;

/// Everything the summary needs from one suite's lifecycle run.
#[derive(Serialize)]
struct LifecycleOutcome {
    name: String,
    /// Journal appends before the simulated crash.
    kill_offset: u64,
    /// Cells served from the journal on resume (must be > 0).
    replayed_cells: usize,
    /// Durable tune artifact == plain tune artifact, byte for byte.
    durable_matches_plain: bool,
    /// Resumed artifact == plain artifact, byte for byte.
    resume_bit_identical: bool,
    /// Store versions at the end of the run.
    store_versions: usize,
    /// `latest` pointer at the end of the run.
    store_latest: Option<u64>,
    /// Candidate promotions observed (phase 4 + the forced one).
    promotions: usize,
    /// Automatic rollbacks observed (the forced regression plus the
    /// alert-driven one).
    rollbacks: usize,
    /// Pages the watchdog raised on healthy traffic (must be 0).
    healthy_alerts: usize,
    /// Whether the injected-slowdown drill ran (suites whose cost comes
    /// from live simulated launches).
    fault_drill: bool,
    /// Whether the injected-slowdown page rolled the candidate back.
    alert_rollback: bool,
    /// Assertion failures (empty means the suite held every guarantee).
    failures: Vec<String>,
}

/// Output directory for lifecycle artifacts.
fn out_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/nitro-store");
    std::fs::create_dir_all(&dir).ok();
    dir
}

/// Promotion policy small enough to exercise the full state machine in
/// one report run.
fn report_policy() -> PromotionPolicy {
    PromotionPolicy {
        shadow_window: 4,
        probation_window: 4,
        ..PromotionPolicy::default()
    }
}

/// A constant classifier pinned to `variant` — the "bad" candidate for
/// the forced-regression phase.
fn constant_model(n_features: usize, variant: usize, n_classes: usize) -> TrainedModel {
    let data = Dataset::from_parts(vec![vec![0.0; n_features]; n_classes.max(1)], {
        let mut y = vec![variant; n_classes.max(1)];
        y[0] = variant;
        y
    });
    TrainedModel::train(&ClassifierConfig::Knn { k: 1 }, &data)
}

/// Run one suite's lifecycle experiment end to end.
fn lifecycle_suite<I, F>(
    name: &str,
    build: F,
    train: &[I],
    test: &[I],
    fault_drill: bool,
    dir: &Path,
) -> BenchResult<LifecycleOutcome>
where
    I: Send + Sync + 'static,
    F: Fn(&Context) -> CodeVariant<I>,
{
    let mut failures = Vec::new();
    let journal_path = dir.join(format!("{name}.journal.jsonl"));
    let store_root = dir.join("store");
    std::fs::remove_file(&journal_path).ok();
    std::fs::remove_dir_all(store_root.join(name)).ok();

    // Phase 1 — plain vs durable: identical corpora must yield
    // byte-identical artifacts whether or not a journal is in the loop.
    let ctx = Context::new();
    let mut plain = build(&ctx);
    Autotuner::new().tune(&mut plain, train)?;
    let plain_json = plain.export_artifact()?.to_json()?;

    let ctx = Context::new();
    let mut durable = build(&ctx);
    let mut journal = TuningJournal::open(&journal_path)?;
    Autotuner::new().tune_durable(&mut durable, train, &mut journal)?;
    let durable_json = durable.export_artifact()?.to_json()?;
    let durable_matches_plain = durable_json == plain_json;
    if !durable_matches_plain {
        failures.push("durable tune artifact differs from plain tune artifact".into());
    }
    drop(journal);

    // Phase 2 — kill mid-tune: crash partway through the second
    // profiled row, leaving a torn tail on disk.
    std::fs::remove_file(&journal_path).ok();
    let n_variants = durable.n_variants() as u64;
    let kill_offset = 1 + (1 + n_variants) + 1;
    let ctx = Context::new();
    let mut victim = build(&ctx);
    let mut journal = TuningJournal::open(&journal_path)?;
    journal.kill_after_appends(kill_offset);
    match Autotuner::new().tune_durable(&mut victim, train, &mut journal) {
        Err(_) => {}
        Ok(_) => failures.push(format!(
            "tune_durable survived a simulated crash at append {kill_offset}"
        )),
    }
    drop(journal);

    // Phase 3 — resume: recovery must report the torn tail (NITRO070),
    // replay every surviving cell, and converge on the same bytes.
    let ctx = Context::new();
    let mut resumed = build(&ctx);
    let mut journal = TuningJournal::open(&journal_path)?;
    if !journal
        .recovery_diagnostics()
        .iter()
        .any(|d| d.code == "NITRO070")
    {
        failures.push("reopened torn journal produced no NITRO070 diagnostic".into());
    }
    let report = Autotuner::new().tune_durable(&mut resumed, train, &mut journal)?;
    let replayed_cells = report.replayed_cells;
    if replayed_cells == 0 {
        failures.push("resume replayed no cells from the journal".into());
    }
    let resumed_json = resumed.export_artifact()?.to_json()?;
    let resume_bit_identical = resumed_json == plain_json;
    if !resume_bit_identical {
        failures.push("resumed artifact differs from the uninterrupted run".into());
    }
    drop(journal);

    // Phase 4 — stage + promote: publish the incumbent as v1, shadow a
    // (re-exported, equivalent) candidate through the window, promote it
    // to v2 and pass probation on no-worse observations.
    let incumbent = resumed.export_artifact()?;
    let mut store = ArtifactStore::open(&store_root, resumed.name())?;
    let v1 = store.publish(&incumbent, "lifecycle_report incumbent")?;
    let mut sp = StagedPromotion::new(incumbent.clone(), report_policy());
    sp.set_incumbent_version(Some(v1));

    let features: Vec<Vec<f64>> = test
        .iter()
        .map(|input| resumed.evaluate_features(input).0)
        .collect();
    let flat_costs = vec![1.0f64; resumed.n_variants()];

    let mut promotions = 0usize;
    let mut rollbacks = 0usize;
    let mut events = sp.stage_candidate(resumed.export_artifact()?)?;
    if !events
        .iter()
        .any(|e| matches!(e, LifecycleEvent::Staged { .. }))
    {
        failures.push(format!("candidate was not staged: {events:?}"));
    }
    let mut probation_passed = false;
    for (i, f) in features.iter().cycle().take(16).enumerate() {
        events = sp.observe(&format!("shadow{i}"), f, &flat_costs, Some(&mut store))?;
        for e in &events {
            match e {
                LifecycleEvent::Promoted { .. } => promotions += 1,
                LifecycleEvent::ProbationPassed => probation_passed = true,
                _ => {}
            }
        }
        if probation_passed {
            break;
        }
    }
    if promotions == 0 {
        failures.push("equivalent candidate was never promoted".into());
    }
    if !probation_passed {
        failures.push("promoted candidate never cleared probation".into());
    }
    let v2 = store.latest();
    if v2 != Some(v1 + 1) {
        failures.push(format!(
            "expected latest v{} after promotion, got {v2:?}",
            v1 + 1
        ));
    }

    // Phase 5 — forced regression: pin a constant classifier to a
    // variant the incumbent rarely chooses, force-promote it, and feed
    // synthetic observations where that variant is 5× worse. The state
    // machine must roll back to the prior version with NITRO074.
    let n = resumed.n_variants();
    let mut predicted = vec![0usize; n];
    for f in &features {
        predicted[incumbent.model.predict(f).min(n - 1)] += 1;
    }
    let bad_variant = (0..n).min_by_key(|&v| predicted[v]).unwrap_or(0);
    let bad_candidate = ModelArtifact {
        schema_version: MODEL_SCHEMA_VERSION,
        function: resumed.name().to_string(),
        variant_names: resumed.variant_names(),
        feature_names: resumed.feature_names(),
        policy: resumed.policy().clone(),
        model: constant_model(features[0].len(), bad_variant, n),
    };
    let mut bad_costs = vec![1.0f64; n];
    bad_costs[bad_variant] = 5.0;

    sp.stage_candidate(bad_candidate)?;
    events = sp.promote_now(Some(&mut store))?;
    if events
        .iter()
        .any(|e| matches!(e, LifecycleEvent::Rejected { .. }))
    {
        failures.push(format!("forced promotion was rejected: {events:?}"));
    }
    let mut rolled_back_to = None;
    let regress: Vec<&Vec<f64>> = features
        .iter()
        .filter(|f| incumbent.model.predict(f).min(n - 1) != bad_variant)
        .collect();
    if regress.is_empty() {
        failures.push("no observation distinguishes the bad variant".into());
    }
    for (i, f) in regress.iter().cycle().take(16).enumerate() {
        events = sp.observe(&format!("regress{i}"), f, &bad_costs, Some(&mut store))?;
        for e in &events {
            if let LifecycleEvent::RolledBack { to, diagnostic } = e {
                rollbacks += 1;
                rolled_back_to = *to;
                if diagnostic.code != "NITRO074" {
                    failures.push(format!(
                        "rollback carried {} instead of NITRO074",
                        diagnostic.code
                    ));
                }
            }
        }
        if rollbacks > 0 {
            break;
        }
    }
    if rollbacks == 0 {
        failures.push("forced regression was never rolled back".into());
    } else if rolled_back_to != v2 {
        failures.push(format!(
            "rollback landed on {rolled_back_to:?}, expected {v2:?}"
        ));
    }
    if store.latest() != v2 {
        failures.push(format!(
            "store latest is {:?} after rollback, expected {v2:?}",
            store.latest()
        ));
    }

    // Phase 6 — alert-driven rollback (observe→act): dispatch real
    // inputs through the tuned function under a pulse p99 watchdog,
    // promote a candidate into probation, then inject a FaultPlan
    // slowdown. The resulting latency page must be consumed by
    // `ingest_alert` and roll the promotion back.
    let registry = PulseRegistry::new();
    FunctionPulse::install(&mut resumed, &registry, None);
    let metric = format!("dispatch.{}.latency_ns", resumed.name());
    let dispatch_pass = |cv: &mut CodeVariant<I>| -> BenchResult<()> {
        for input in test {
            cv.call(input)?;
        }
        Ok(())
    };

    // Calibrate on healthy traffic (the simulator is deterministic
    // without a fault plan), leaving 3x headroom that an 8x slowdown
    // must breach.
    dispatch_pass(&mut resumed)?;
    dispatch_pass(&mut resumed)?;
    let healthy_p99 = registry.quantile(&metric, 0.99).unwrap_or(0.0);
    let threshold = (healthy_p99 * 3.0).max(1.0);
    let mut dog = SloWatchdog::new(vec![SloSpec::p99_below(
        format!("{name} dispatch p99"),
        metric.as_str(),
        threshold,
    )])
    .with_min_window_count(test.len().max(1) as u64);

    let mut healthy_alerts = 0usize;
    for _ in 0..6 {
        dispatch_pass(&mut resumed)?;
        healthy_alerts += dog.tick(&registry).len();
    }
    if healthy_alerts > 0 {
        failures.push(format!(
            "watchdog paged {healthy_alerts} time(s) on healthy traffic"
        ));
    }

    let mut alert_rollback = false;
    if fault_drill {
        sp.stage_candidate(resumed.export_artifact()?)?;
        events = sp.promote_now(Some(&mut store))?;
        for e in &events {
            if matches!(e, LifecycleEvent::Promoted { .. }) {
                promotions += 1;
            }
        }

        install_fault_plan(FaultPlan {
            seed: 11,
            slowdown_prob: 1.0,
            slowdown_factor: 8.0,
            ..FaultPlan::default()
        });
        let mut page = None;
        for _ in 0..10 {
            if let Err(e) = dispatch_pass(&mut resumed) {
                uninstall_fault_plan();
                return Err(e);
            }
            if let Some(a) = dog.tick(&registry).into_iter().find(|a| {
                a.kind == AlertKind::LatencyRegression && a.severity == AlertSeverity::Page
            }) {
                page = Some(a);
                break;
            }
        }
        uninstall_fault_plan();

        match page {
            None => failures.push("injected slowdown never tripped the p99 watchdog".into()),
            Some(alert) => {
                events = sp.ingest_alert(&alert, Some(&mut store))?;
                for e in &events {
                    if let LifecycleEvent::RolledBack { diagnostic, .. } = e {
                        rollbacks += 1;
                        alert_rollback = true;
                        if diagnostic.code != "NITRO074" {
                            failures.push(format!(
                                "alert rollback carried {} instead of NITRO074",
                                diagnostic.code
                            ));
                        }
                    }
                }
                if !alert_rollback {
                    failures.push(format!(
                        "latency page did not roll back the promoted candidate: {events:?}"
                    ));
                }
                if store.latest() != v2 {
                    failures.push(format!(
                        "store latest is {:?} after the alert rollback, expected {v2:?}",
                        store.latest()
                    ));
                }
            }
        }
    }

    // Zero torn or corrupt installs, ever: every version still on disk
    // must pass its content checksum.
    let verify = store.verify();
    if !verify.is_empty() {
        failures.push(format!(
            "store verification found {} problem(s): {verify:?}",
            verify.len()
        ));
    }

    Ok(LifecycleOutcome {
        name: name.to_string(),
        kill_offset,
        replayed_cells,
        durable_matches_plain,
        resume_bit_identical,
        store_versions: store.versions().len(),
        store_latest: store.latest(),
        promotions,
        rollbacks,
        healthy_alerts,
        fault_drill,
        alert_rollback,
        failures,
    })
}

fn summarize(o: &LifecycleOutcome) {
    println!("\n== {} ==", o.name);
    println!(
        "  durable == plain: {} · killed at append {} · resume replayed {} cell(s), bit-identical: {}",
        o.durable_matches_plain, o.kill_offset, o.replayed_cells, o.resume_bit_identical
    );
    println!(
        "  store: {} version(s), latest {:?} · {} promotion(s), {} rollback(s)",
        o.store_versions, o.store_latest, o.promotions, o.rollbacks
    );
    if o.fault_drill {
        println!(
            "  pulse: {} healthy page(s) · slowdown page rolled the candidate back: {}",
            o.healthy_alerts, o.alert_rollback
        );
    } else {
        println!(
            "  pulse: {} healthy page(s) · slowdown drill skipped (closed-form cost model)",
            o.healthy_alerts
        );
    }
}

fn main() {
    exit_on_error(run());
}

fn run() -> BenchResult<()> {
    let spec = SuiteSpec::from_env();
    let cfg = device();
    let dir = out_dir();
    println!("== nitro-store lifecycle report ==");
    if spec.small {
        println!("(NITRO_SCALE=small — miniature collections)");
    }
    println!("artifacts under {}", dir.display());

    let mut suites = Vec::new();
    {
        let (train, test) = if spec.small {
            nitro_sparse::collection::spmv_small_sets(spec.seed)
        } else {
            (
                nitro_sparse::collection::spmv_training_set(spec.seed),
                nitro_sparse::collection::spmv_test_set(spec.seed),
            )
        };
        suites.push(lifecycle_suite(
            "spmv",
            |ctx| nitro_sparse::spmv::build_code_variant(ctx, &cfg),
            &train,
            &test,
            true,
            &dir,
        )?);
    }
    {
        let (train, test) = if spec.small {
            nitro_solvers::collection::solver_small_sets(spec.seed)
        } else {
            (
                nitro_solvers::collection::solver_training_set(spec.seed),
                nitro_solvers::collection::solver_test_set(spec.seed),
            )
        };
        suites.push(lifecycle_suite(
            "solvers",
            |ctx| nitro_solvers::variants::build_code_variant(ctx, &cfg),
            &train,
            &test,
            false,
            &dir,
        )?);
    }
    {
        let (train, test) = nitro_bench::bfs_sets(spec);
        suites.push(lifecycle_suite(
            "bfs",
            |ctx| nitro_graph::bfs::build_code_variant(ctx, &cfg),
            &train,
            &test,
            false,
            &dir,
        )?);
    }
    {
        let (train, test) = if spec.small {
            nitro_histogram::data::hist_small_sets(spec.seed)
        } else {
            (
                nitro_histogram::data::hist_training_set(spec.seed),
                nitro_histogram::data::hist_test_set(spec.seed),
            )
        };
        suites.push(lifecycle_suite(
            "histogram",
            |ctx| nitro_histogram::variants::build_code_variant(ctx, &cfg),
            &train,
            &test,
            true,
            &dir,
        )?);
    }
    {
        let (train, test) = if spec.small {
            nitro_sort::keys::sort_small_sets(spec.seed)
        } else {
            (
                nitro_sort::keys::sort_training_set(spec.seed),
                nitro_sort::keys::sort_test_set(spec.seed),
            )
        };
        suites.push(lifecycle_suite(
            "sort",
            |ctx| nitro_sort::variants::build_code_variant(ctx, &cfg),
            &train,
            &test,
            true,
            &dir,
        )?);
    }

    for s in &suites {
        summarize(s);
        let json = to_json_pretty("lifecycle outcome", s)?;
        write_file(&dir.join(format!("{}.lifecycle.json", s.name)), &json)?;
    }

    let mut failed = false;
    for s in &suites {
        for f in &s.failures {
            eprintln!("FAIL [{}]: {f}", s.name);
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("\nall lifecycle guarantees held: resume is bit-identical, corruption never installs, regressions roll back");
    Ok(())
}
