//! Ablation: classifier families across all five benchmarks.
//!
//! The paper defaults to an RBF SVM but notes (§VI) that other learning
//! techniques "can be integrated into Nitro's learning sub-system". This
//! harness swaps the Table-II `classifier` option across SVM (with and
//! without grid search), kNN and a decision tree, and reports the test
//! performance of each.

use nitro_bench::error::{exit_on_error, BenchResult};
use nitro_bench::{pct, run_all, SuiteSpec};
use nitro_core::{ClassifierConfig, TrainedModel};
use nitro_ml::{ForestParams, TreeParams};
use nitro_tuner::evaluate_model;

fn main() {
    exit_on_error(run());
}

fn run() -> BenchResult<()> {
    let spec = SuiteSpec::from_env();
    println!("== Ablation: classifier choice (Table II `classifier`) ==");
    if spec.small {
        println!("(NITRO_SCALE=small — miniature collections)");
    }

    let configs: Vec<(&str, ClassifierConfig)> = vec![
        (
            "svm+grid",
            ClassifierConfig::Svm {
                c: None,
                gamma: None,
                grid_search: true,
                cache_bytes: None,
            },
        ),
        (
            "svm-fixed",
            ClassifierConfig::Svm {
                c: Some(8.0),
                gamma: Some(0.5),
                grid_search: false,
                cache_bytes: None,
            },
        ),
        ("knn-3", ClassifierConfig::Knn { k: 3 }),
        ("tree", ClassifierConfig::Tree(TreeParams::default())),
        ("forest", ClassifierConfig::Forest(ForestParams::default())),
    ];

    println!(
        "\n{:<10} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "benchmark", "svm+grid", "svm-fixed", "knn-3", "tree", "forest"
    );
    for suite in run_all(spec)? {
        let data = suite.train_table.dataset();
        let mut cells = Vec::new();
        for (_, config) in &configs {
            let model = TrainedModel::train(config, &data);
            let summary = evaluate_model(&suite.test_table, &model, suite.default_variant);
            cells.push(pct(summary.mean_relative_perf));
        }
        println!(
            "{:<10} {:>12} {:>12} {:>12} {:>12} {:>12}",
            suite.name, cells[0], cells[1], cells[2], cells[3], cells[4]
        );
    }
    println!("\n(100% = always selecting the exhaustive-search winner)");
    Ok(())
}
