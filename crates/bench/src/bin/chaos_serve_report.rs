//! Whole-stack chaos campaign over the serving front door: seeded
//! faults on every layer, request-lineage conservation checking, and a
//! deterministic-replay gate.
//!
//! ```text
//! NITRO_SCALE=small cargo run -p nitro-bench --release --bin chaos_serve_report
//! ```
//!
//! Two phases, one [`ChaosPlan`] seed:
//!
//! * **Phase A — lockstep replay.** A supervised [`ServeFront`] on a
//!   *manual* clock is driven one request at a time through a campaign
//!   of shard-killing requests, a poison pill, clock-skew jumps and
//!   alert storms. Restart backoff reads the serve clock, so the test
//!   advances time deterministically and waits out every death before
//!   the next submission. The whole campaign runs **twice** and the
//!   per-request outcome sequence plus every supervision counter must
//!   match exactly.
//! * **Phase B — concurrent storm.** A wall-clock front with real simt
//!   kernel launches runs the campaign concurrently: seeded launch
//!   faults ([`FaultPlan`]), zipf tenants, grenade and poison requests,
//!   skew jumps through [`ServeClock::skewed`], alert storms with
//!   relaxes, and mid-campaign model publishes through an
//!   [`ArtifactStore`] whose filesystem runs under the plan's
//!   [`ChaosFs`] — only checksum-verified artifacts
//!   (`load_latest_intact`) are ever handed to the front.
//!
//! Writes `target/BENCH_chaos.json` (plus plans and per-run outcome
//! dumps under `target/nitro-chaos/`) and exits nonzero if any gate
//! fails: a conservation violation, a panic past the worker backstop, a
//! killed shard neither recovered nor retired, an unquarantined poison
//! pill, an untyped store error, a corrupt artifact served, fewer than
//! three fault classes exercised, or a replay divergence.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use nitro_bench::error::{exit_on_error, to_json_pretty, write_file, BenchError, BenchResult};
use nitro_bench::{device, SuiteSpec, ZipfSampler};
use nitro_core::context::temp_model_dir;
use nitro_core::{
    mix64, CodeVariant, Context, FnFeature, FnVariant, ModelArtifact, NitroError, Priority,
    RequestMeta, RetryPolicy, TenantId,
};
use nitro_guard::{ChaosPlan, GuardPolicy};
use nitro_ml::{ClassifierConfig, Dataset, TrainedModel};
use nitro_pulse::{AlertKind, AlertSeverity, PulseAlert, PulseRegistry};
use nitro_serve::{
    Rejection, ServeClock, ServeConfig, ServeFront, ServeOutcome, ShardState, SupervisorConfig,
};
use nitro_simt::{
    install_fault_plan, silence_injected_panics, uninstall_fault_plan, Gpu, Schedule,
    INJECTED_PANIC_PREFIX,
};
use nitro_store::ArtifactStore;
use nitro_trace::{RingSink, Tracer};
use serde::Serialize;

/// Deadline budget on every request — generous, so chaos is absorbed by
/// supervision and shedding, not by deadline misses.
const BUDGET_NS: u64 = 500_000_000;

/// Serve-clock allowance that covers any restart backoff the campaign
/// can arm (budget 4 → worst backoff 16 ms).
const HEAL_ADVANCE_NS: u64 = 100_000_000;

/// What a request carries besides its feature value.
#[derive(Clone)]
enum Payload {
    /// Plain traffic.
    Healthy,
    /// Kills the shard that dispatches it — once (the fuse disarms),
    /// so the re-placed request then succeeds on a surviving shard.
    Kill(Arc<AtomicBool>),
    /// Kills every shard that dispatches it, until quarantined.
    Poison,
}

#[derive(Clone)]
struct ChaosInput {
    x: f64,
    gpu_seed: u64,
    payload: Payload,
}

/// Per-attempt launch salt (phase B): injected launch failures redraw
/// per attempt, so guard retries can rescue an unlucky launch.
static LAUNCH_SALT: AtomicU64 = AtomicU64::new(0);

fn attempt_seed(base: u64) -> u64 {
    let salt = LAUNCH_SALT.fetch_add(1, Ordering::Relaxed);
    base ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// The served registration. The *feature* detonates kill/poison
/// payloads — feature panics escape the guard (which only absorbs
/// variant-body panics) and hit the worker backstop, which is exactly
/// the seam shard supervision exists for. `launches` switches the
/// variant bodies between real simt kernel launches (phase B, so the
/// fault plan can kill them) and pure math (phase A, deterministic).
fn chaos_cv(ctx: &Context, launches: bool) -> CodeVariant<ChaosInput> {
    let mut cv = CodeVariant::new("chaos", ctx);
    if launches {
        let cfg = device();
        {
            let cfg = cfg.clone();
            cv.add_variant(FnVariant::new("lean", move |inp: &ChaosInput| {
                let gpu = Gpu::with_seed(cfg.clone(), attempt_seed(inp.gpu_seed));
                let work = 2_000 + (inp.x * 400.0) as u64;
                let stats = gpu.launch("chaos_lean", 1, Schedule::EvenShare, |_b, bctx| {
                    bctx.charge_ops(work);
                });
                stats.elapsed_ns
            }));
        }
        {
            let cfg = cfg.clone();
            cv.add_variant(FnVariant::new("thorough", move |inp: &ChaosInput| {
                let gpu = Gpu::with_seed(cfg.clone(), attempt_seed(inp.gpu_seed ^ 0xA5A5));
                let work = 6_000 + (inp.x * 100.0) as u64;
                let stats = gpu.launch("chaos_thorough", 2, Schedule::Dynamic, |_b, bctx| {
                    bctx.charge_ops(work);
                });
                stats.elapsed_ns
            }));
        }
    } else {
        cv.add_variant(FnVariant::new("lean", |inp: &ChaosInput| 1.0 + inp.x));
        cv.add_variant(FnVariant::new("thorough", |inp: &ChaosInput| {
            10.0 - inp.x * 0.5
        }));
    }
    cv.set_default(0);
    cv.add_input_feature(FnFeature::new("x", |inp: &ChaosInput| {
        match &inp.payload {
            Payload::Healthy => {}
            Payload::Kill(fuse) => {
                if fuse.swap(false, Ordering::SeqCst) {
                    panic!("{INJECTED_PANIC_PREFIX}shard-kill request detonated");
                }
            }
            Payload::Poison => panic!("{INJECTED_PANIC_PREFIX}poison-pill request detonated"),
        }
        inp.x
    }));
    cv
}

/// k=1 KNN mapping x < 5 → variant `lo`, x ≥ 5 → variant `hi`.
fn split_model(lo: usize, hi: usize) -> TrainedModel {
    let data = Dataset::from_parts(
        (0..10).map(|i| vec![f64::from(i)]).collect(),
        (0..10).map(|i| if i >= 5 { hi } else { lo }).collect(),
    );
    TrainedModel::train(&ClassifierConfig::Knn { k: 1 }, &data)
}

fn artifact_with(model: TrainedModel, launches: bool) -> BenchResult<ModelArtifact> {
    let ctx = Context::new();
    let mut cv = chaos_cv(&ctx, launches);
    cv.install_model(model);
    cv.export_artifact().map_err(BenchError::Nitro)
}

fn page_alert() -> PulseAlert {
    PulseAlert {
        slo: "chaos-p99".into(),
        kind: AlertKind::LatencyRegression,
        severity: AlertSeverity::Page,
        metric: "serve.chaos.e2e_latency_ns".into(),
        observed: 2.0,
        threshold: 1.0,
        window_ticks: 1,
    }
}

fn payload_for(plan: &ChaosPlan, i: u64) -> Payload {
    if plan.kills_at(i) {
        Payload::Kill(Arc::new(AtomicBool::new(true)))
    } else if plan.poison_at(i) {
        Payload::Poison
    } else {
        Payload::Healthy
    }
}

fn outcome_class(outcome: &ServeOutcome) -> &'static str {
    match outcome {
        ServeOutcome::Served { .. } => "served",
        ServeOutcome::ShedExpired { .. } => "shed_expired",
        ServeOutcome::ShedHopeless { .. } => "shed_hopeless",
        ServeOutcome::ShedFailover { .. } => "shed_failover",
        ServeOutcome::Quarantined { .. } => "quarantined",
        ServeOutcome::Failed { .. } => "failed",
    }
}

fn rejection_class(rejection: &Rejection) -> &'static str {
    match rejection {
        Rejection::DeadlineExpired => "rejected_expired",
        Rejection::TenantThrottled => "rejected_tenant",
        Rejection::QueueFull { .. } => "rejected_queue",
        Rejection::NoLiveShards => "rejected_no_live_shards",
    }
}

fn histogram(classes: &[String]) -> Vec<(String, u64)> {
    let mut h = BTreeMap::new();
    for c in classes {
        *h.entry(c.clone()).or_insert(0u64) += 1;
    }
    h.into_iter().collect()
}

/// Everything one lockstep run produced that the replay gate compares.
#[derive(Serialize, PartialEq, Clone)]
struct LockstepTrace {
    classes: Vec<String>,
    shard_deaths: u64,
    shard_restarts: u64,
    shards_retired: u64,
    poison_quarantined: u64,
    escaped_panics: u64,
    /// `(shard, lineage)` of every escaped panic, in order.
    panic_attribution: Vec<(usize, u64)>,
    final_states: Vec<ShardState>,
}

struct LockstepRun {
    trace: LockstepTrace,
    conserved: bool,
    violations: Vec<String>,
    diagnostic_codes: Vec<String>,
    workers_failed: usize,
}

/// Drive the plan's campaign in lockstep on a manual clock: one request
/// in flight at a time, serve-time advanced deterministically, every
/// shard death waited out (restart or retirement) before the next
/// submission. Under a fixed seed this is exactly reproducible.
fn lockstep_run(plan: &ChaosPlan) -> BenchResult<LockstepRun> {
    let (clock, hand) = ServeClock::manual();
    let config = ServeConfig {
        shards: 3,
        queue_capacity: Some(32),
        tenant_slots: 64,
        tenant_rate_per_s: 1_000_000.0,
        tenant_burst: 10_000,
        hopeless_shedding: false,
        supervision: Some(SupervisorConfig::default()),
        ..ServeConfig::default()
    };
    let front = ServeFront::start(config, GuardPolicy::default(), clock.clone(), None, |_| {
        chaos_cv(&Context::new(), false)
    })
    .map_err(BenchError::Nitro)?;
    front.publish_artifact(artifact_with(split_model(0, 1), false)?);

    let mut tenants = ZipfSampler::new(12, 1.2, plan.seed);
    let mut classes = Vec::with_capacity(plan.requests as usize);
    for i in 0..plan.requests {
        if let Some(ns) = plan.skew_at(i) {
            hand.fetch_add(ns, Ordering::SeqCst);
        }
        if let Some(pages) = plan.storm_at(i) {
            for _ in 0..pages {
                front.ingest_alert(&page_alert());
            }
        }
        let tenant = tenants.next_rank() as u32;
        let x = (mix64(plan.seed ^ i) % 1_000) as f64 / 100.0;
        let priority = match i % 3 {
            0 => Priority::Interactive,
            1 => Priority::Standard,
            _ => Priority::Batch,
        };
        let meta = RequestMeta::new(TenantId(tenant), priority, clock.now_ns(), BUDGET_NS);
        let input = ChaosInput {
            x,
            gpu_seed: 0,
            payload: payload_for(plan, i),
        };
        let class = match front.submit(input, meta) {
            Ok(ticket) => outcome_class(&ticket.wait()).to_string(),
            Err(r) => rejection_class(&r).to_string(),
        };
        classes.push(class);
        hand.fetch_add(10_000, Ordering::SeqCst);
        // Heal before the next request: advance past any restart
        // backoff and wait until no shard is Dead (Up or Retired both
        // count — retirement is a legitimate terminal answer).
        if front.shard_states().contains(&ShardState::Dead) {
            hand.fetch_add(HEAL_ADVANCE_NS, Ordering::SeqCst);
            let deadline = Instant::now() + Duration::from_secs(5);
            while front.shard_states().contains(&ShardState::Dead) {
                if Instant::now() > deadline {
                    return Err(BenchError::Invalid(format!(
                        "shard stuck Dead after request {i} despite healed clock"
                    )));
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }

    let final_states = front.shard_states();
    let summary = front.shutdown();
    let accounting = summary.accounting;
    Ok(LockstepRun {
        trace: LockstepTrace {
            classes,
            shard_deaths: summary.shard_deaths,
            shard_restarts: summary.shard_restarts,
            shards_retired: summary.shards_retired,
            poison_quarantined: summary.poison_quarantined,
            escaped_panics: summary.escaped_panics,
            panic_attribution: summary
                .panic_records
                .iter()
                .map(|r| (r.shard, r.lineage))
                .collect(),
            final_states,
        },
        conserved: accounting.is_conserved(),
        violations: accounting.violations(),
        diagnostic_codes: summary.diagnostics.iter().map(|d| d.code.clone()).collect(),
        workers_failed: summary.workers_failed,
    })
}

#[derive(Serialize)]
struct PhaseAReport {
    requests: u64,
    outcomes: Vec<(String, u64)>,
    shard_deaths: u64,
    shard_restarts: u64,
    shards_retired: u64,
    poison_quarantined: u64,
    escaped_panics: u64,
    conserved: bool,
    replay_identical: bool,
    diagnostic_codes: Vec<String>,
}

#[derive(Serialize)]
struct StoreChurn {
    publishes_attempted: u64,
    publishes_ok: u64,
    publish_faults_typed: u64,
    publish_faults_untyped: u64,
    corrupt_versions_skipped: u64,
    intact_loads_published: u64,
}

#[derive(Serialize)]
struct PhaseBReport {
    requests: u64,
    admitted: u64,
    rejected: u64,
    outcomes: Vec<(String, u64)>,
    shard_deaths: u64,
    shard_restarts: u64,
    shards_retired: u64,
    poison_quarantined: u64,
    poison_admitted: bool,
    escaped_panics: u64,
    panic_records: u64,
    workers_failed: usize,
    conserved: bool,
    violations: Vec<String>,
    final_states: Vec<ShardState>,
    skew_jumps_applied: u64,
    alert_pages_ingested: u64,
    store: StoreChurn,
    injected_launch_faults: u64,
}

#[derive(Serialize)]
struct Gates {
    deterministic_replay: bool,
    conservation_phase_a: bool,
    conservation_phase_b: bool,
    zero_backstop_escapes: bool,
    killed_shards_recovered_or_retired: bool,
    poison_pills_quarantined: bool,
    store_faults_typed: bool,
    zero_corrupt_artifacts_served: bool,
    min_fault_classes: bool,
}

#[derive(Serialize)]
struct ChaosServeReport {
    scale: String,
    seed: u64,
    fault_classes: Vec<String>,
    phase_a: PhaseAReport,
    phase_b: PhaseBReport,
    gates: Gates,
    failures: Vec<String>,
}

fn out_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/nitro-chaos");
    std::fs::create_dir_all(&dir).ok();
    dir
}

fn out_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/BENCH_chaos.json")
}

struct PhaseBOutcome {
    report: PhaseBReport,
    failures: Vec<String>,
}

/// The concurrent storm: wall clock, every fault layer at once.
fn storm_run(plan: &ChaosPlan) -> BenchResult<PhaseBOutcome> {
    // The simulator's fault counters go through the process-global
    // tracer slot, not the serve registry.
    let tracer = Tracer::new(Arc::new(RingSink::new(4_096)));
    nitro_trace::install_global(tracer.clone());
    install_fault_plan(plan.fault_plan());
    let (clock, skew) = ServeClock::skewed();
    let registry = PulseRegistry::new();
    let config = ServeConfig {
        shards: 4,
        queue_capacity: Some(32),
        tenant_slots: 64,
        tenant_rate_per_s: 100_000.0,
        tenant_burst: 4_096,
        hopeless_shedding: false,
        supervision: Some(SupervisorConfig::default()),
        ..ServeConfig::default()
    };
    let front = ServeFront::start(
        config,
        GuardPolicy {
            retry_budget: 2,
            ..GuardPolicy::default()
        },
        clock.clone(),
        Some(&registry),
        |_| chaos_cv(&Context::new(), true),
    )
    .map_err(BenchError::Nitro)?;

    // The model pipeline under filesystem chaos: publishes land in an
    // ArtifactStore whose every fs op consults the plan's ChaosFs, and
    // only checksum-verified loads are ever handed to the front.
    let store_dir = temp_model_dir("chaos-serve-store").map_err(BenchError::Nitro)?;
    let mut store = ArtifactStore::open(&store_dir, "chaos").map_err(BenchError::Nitro)?;
    store.set_fs_policy(Some(Arc::new(plan.fs_policy())));
    store.set_retry(RetryPolicy {
        max_attempts: 4,
        backoff_base_ns: 1_000,
        ..RetryPolicy::default()
    });

    let mut churn = StoreChurn {
        publishes_attempted: 0,
        publishes_ok: 0,
        publish_faults_typed: 0,
        publish_faults_untyped: 0,
        corrupt_versions_skipped: 0,
        intact_loads_published: 0,
    };
    let publish_every = (plan.requests / 6).max(1);
    let mut tenants = ZipfSampler::new(16, 1.2, plan.seed ^ 0xB0B);
    let mut tickets = Vec::new();
    let mut rejected = 0u64;
    let mut poison_admitted = false;
    let mut skew_jumps = 0u64;
    let mut pages_ingested = 0u64;
    let mut pending_relax: Vec<(u64, u32)> = Vec::new();

    for i in 0..plan.requests {
        if let Some(ns) = plan.skew_at(i) {
            skew.fetch_add(ns, Ordering::SeqCst);
            skew_jumps += 1;
        }
        if let Some(pages) = plan.storm_at(i) {
            for _ in 0..pages {
                front.ingest_alert(&page_alert());
            }
            pages_ingested += u64::from(pages);
            pending_relax.push((i + plan.requests / 10 + 1, pages));
        }
        pending_relax.retain(|&(at, pages)| {
            if i >= at {
                for _ in 0..pages {
                    front.relax();
                }
                false
            } else {
                true
            }
        });
        if i % publish_every == publish_every / 2 {
            churn.publishes_attempted += 1;
            let model = if churn.publishes_attempted.is_multiple_of(2) {
                split_model(0, 1)
            } else {
                split_model(1, 1)
            };
            match store.publish(&artifact_with(model, true)?, "chaos publish") {
                Ok(_) => churn.publishes_ok += 1,
                Err(NitroError::Io(_)) | Err(NitroError::Audit { .. }) => {
                    churn.publish_faults_typed += 1;
                }
                Err(_) => churn.publish_faults_untyped += 1,
            }
            let (loaded, diags) = store.load_latest_intact();
            churn.corrupt_versions_skipped += diags.len() as u64;
            if let Some((_, artifact)) = loaded {
                front.publish_artifact(artifact);
                churn.intact_loads_published += 1;
            }
        }

        let payload = payload_for(plan, i);
        let is_poison = matches!(payload, Payload::Poison);
        let tenant = tenants.next_rank() as u32;
        let x = (mix64(plan.seed ^ i) % 1_000) as f64 / 100.0;
        let priority = if is_poison {
            Priority::Interactive // poison must be admitted to be quarantined
        } else {
            match i % 4 {
                0 => Priority::Interactive,
                3 => Priority::Batch,
                _ => Priority::Standard,
            }
        };
        let meta = RequestMeta::new(TenantId(tenant), priority, clock.now_ns(), BUDGET_NS);
        let input = ChaosInput {
            x,
            gpu_seed: plan.seed ^ (i << 8),
            payload,
        };
        match front.submit(input, meta) {
            Ok(ticket) => {
                poison_admitted |= is_poison;
                tickets.push(ticket);
            }
            Err(_) => rejected += 1,
        }
        std::thread::sleep(Duration::from_micros(200));
    }

    let admitted = tickets.len() as u64;
    let mut classes = Vec::with_capacity(tickets.len());
    for ticket in tickets {
        classes.push(outcome_class(&ticket.wait()).to_string());
    }

    // Let supervision finish healing before the books close: every
    // shard must end Up or Retired, never stuck Dead.
    let deadline = Instant::now() + Duration::from_secs(5);
    while front.shard_states().contains(&ShardState::Dead) && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    let final_states = front.shard_states();
    let injected_launch_faults = tracer
        .metrics()
        .snapshot()
        .counter("simt.fault.failures")
        .unwrap_or(0);
    let summary = front.shutdown();
    uninstall_fault_plan();
    nitro_trace::uninstall_global();
    std::fs::remove_dir_all(&store_dir).ok();

    let accounting = summary.accounting;
    let mut failures = Vec::new();
    if !accounting.is_conserved() {
        failures.push(format!(
            "phase B conservation violated: {}",
            accounting.violations().join("; ")
        ));
    }
    if summary.workers_failed > 0 {
        failures.push(format!(
            "{} worker(s) died past the panic backstop in phase B",
            summary.workers_failed
        ));
    }
    if summary.panic_records.len() as u64 != summary.escaped_panics {
        failures.push(format!(
            "{} escaped panic(s) but only {} attributed panic record(s)",
            summary.escaped_panics,
            summary.panic_records.len()
        ));
    }
    if final_states.contains(&ShardState::Dead) {
        failures.push(format!(
            "a killed shard was never restarted nor retired: {final_states:?}"
        ));
    }
    if summary.shard_deaths > 0 && summary.shard_restarts + summary.shards_retired == 0 {
        failures.push("shards died but the supervisor never acted".to_string());
    }
    if poison_admitted && summary.poison_quarantined == 0 {
        failures.push("an admitted poison pill was never quarantined".to_string());
    }
    if churn.publish_faults_untyped > 0 {
        failures.push(format!(
            "{} store fault(s) surfaced as untyped errors",
            churn.publish_faults_untyped
        ));
    }
    if churn.intact_loads_published == 0 {
        failures.push("no checksum-verified artifact ever reached the front".to_string());
    }

    Ok(PhaseBOutcome {
        report: PhaseBReport {
            requests: plan.requests,
            admitted,
            rejected,
            outcomes: histogram(&classes),
            shard_deaths: summary.shard_deaths,
            shard_restarts: summary.shard_restarts,
            shards_retired: summary.shards_retired,
            poison_quarantined: summary.poison_quarantined,
            poison_admitted,
            escaped_panics: summary.escaped_panics,
            panic_records: summary.panic_records.len() as u64,
            workers_failed: summary.workers_failed,
            conserved: accounting.is_conserved(),
            violations: accounting.violations(),
            final_states,
            skew_jumps_applied: skew_jumps,
            alert_pages_ingested: pages_ingested,
            store: churn,
            injected_launch_faults,
        },
        failures,
    })
}

fn run() -> BenchResult<()> {
    let spec = SuiteSpec::from_env();
    silence_injected_panics();

    // `NITRO_CHAOS_SEED` re-rolls the whole campaign; every gate must
    // hold for any seed.
    let seed = std::env::var("NITRO_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(spec.seed);
    let requests_a = if spec.small { 120 } else { 400 };
    let requests_b = if spec.small { 240 } else { 960 };

    // Phase A exercises the deterministic layers only: launch and fs
    // probabilities are zeroed so the lockstep replay is bit-exact.
    let mut plan_a = ChaosPlan::from_seed(seed, requests_a);
    plan_a.launch_failure_prob = 0.0;
    plan_a.slowdown_prob = 0.0;
    plan_a.fs_torn_write = 0.0;
    plan_a.fs_no_space = 0.0;
    plan_a.fs_read_error = 0.0;
    plan_a.fs_rename_failed = 0.0;
    let plan_b = ChaosPlan::from_seed(seed ^ 0xB00B, requests_b);

    let dir = out_dir();
    write_file(
        &dir.join("plan_a.json"),
        &to_json_pretty("phase A plan", &plan_a)?,
    )?;
    write_file(
        &dir.join("plan_b.json"),
        &to_json_pretty("phase B plan", &plan_b)?,
    )?;

    // ---- Phase A: the same campaign, twice --------------------------
    let run1 = lockstep_run(&plan_a)?;
    let run2 = lockstep_run(&plan_a)?;
    let replay_identical = run1.trace == run2.trace;
    write_file(
        &dir.join("lockstep_run1.json"),
        &to_json_pretty("lockstep run 1", &run1.trace)?,
    )?;
    write_file(
        &dir.join("lockstep_run2.json"),
        &to_json_pretty("lockstep run 2", &run2.trace)?,
    )?;

    let mut failures = Vec::new();
    if !replay_identical {
        failures.push("phase A replay diverged between identically-seeded runs".to_string());
    }
    for (label, run) in [("run 1", &run1), ("run 2", &run2)] {
        if !run.conserved {
            failures.push(format!(
                "phase A {label} conservation violated: {}",
                run.violations.join("; ")
            ));
        }
        if run.workers_failed > 0 {
            failures.push(format!(
                "phase A {label}: {} worker(s) died past the backstop",
                run.workers_failed
            ));
        }
        if run.diagnostic_codes.iter().any(|c| c == "NITRO114") {
            failures.push(format!("phase A {label} raised NITRO114"));
        }
    }
    if run1.trace.final_states.contains(&ShardState::Dead) {
        failures.push(format!(
            "phase A ended with a shard stuck Dead: {:?}",
            run1.trace.final_states
        ));
    }
    if run1.trace.shard_deaths == 0 || run1.trace.shard_restarts == 0 {
        failures.push(format!(
            "phase A campaign never exercised supervision (deaths {}, restarts {})",
            run1.trace.shard_deaths, run1.trace.shard_restarts
        ));
    }
    if run1.trace.poison_quarantined == 0 {
        failures.push("phase A poison pill was never quarantined".to_string());
    }
    for code in ["NITRO110", "NITRO112"] {
        if !run1.trace.shards_retired > 0 && !run1.diagnostic_codes.iter().any(|c| c == code) {
            failures.push(format!("phase A never emitted {code}"));
        }
    }

    let phase_a = PhaseAReport {
        requests: plan_a.requests,
        outcomes: histogram(&run1.trace.classes),
        shard_deaths: run1.trace.shard_deaths,
        shard_restarts: run1.trace.shard_restarts,
        shards_retired: run1.trace.shards_retired,
        poison_quarantined: run1.trace.poison_quarantined,
        escaped_panics: run1.trace.escaped_panics,
        conserved: run1.conserved && run2.conserved,
        replay_identical,
        diagnostic_codes: run1.diagnostic_codes.clone(),
    };

    // ---- Phase B: the concurrent storm ------------------------------
    let storm = storm_run(&plan_b)?;
    failures.extend(storm.failures.iter().cloned());

    // ---- Fault-class coverage ---------------------------------------
    let mut fault_classes: Vec<String> = plan_a
        .fault_classes()
        .into_iter()
        .chain(plan_b.fault_classes())
        .map(str::to_string)
        .collect();
    fault_classes.sort_unstable();
    fault_classes.dedup();
    if fault_classes.len() < 3 {
        failures.push(format!(
            "campaign exercised only {} fault class(es): {fault_classes:?}",
            fault_classes.len()
        ));
    }

    let gates = Gates {
        deterministic_replay: replay_identical,
        conservation_phase_a: run1.conserved && run2.conserved,
        conservation_phase_b: storm.report.conserved,
        zero_backstop_escapes: run1.workers_failed == 0
            && run2.workers_failed == 0
            && storm.report.workers_failed == 0,
        killed_shards_recovered_or_retired: !run1
            .trace
            .final_states
            .iter()
            .chain(&storm.report.final_states)
            .any(|s| *s == ShardState::Dead),
        poison_pills_quarantined: run1.trace.poison_quarantined > 0
            && (!storm.report.poison_admitted || storm.report.poison_quarantined > 0),
        store_faults_typed: storm.report.store.publish_faults_untyped == 0,
        zero_corrupt_artifacts_served: storm.report.store.intact_loads_published > 0
            && storm.report.store.publish_faults_untyped == 0,
        min_fault_classes: fault_classes.len() >= 3,
    };

    let report = ChaosServeReport {
        scale: if spec.small { "small" } else { "full" }.to_string(),
        seed,
        fault_classes,
        phase_a,
        phase_b: storm.report,
        gates,
        failures: failures.clone(),
    };

    let path = out_path();
    write_file(&path, &to_json_pretty("chaos serve report", &report)?)?;
    print_summary(&report, &path);

    if failures.is_empty() {
        Ok(())
    } else {
        Err(BenchError::Invalid(format!(
            "chaos serve report failed {} gate(s): {}",
            failures.len(),
            failures.join("; ")
        )))
    }
}

fn print_summary(report: &ChaosServeReport, path: &Path) {
    println!(
        "chaos_serve_report ({} scale, seed {:#x}, fault classes: {})",
        report.scale,
        report.seed,
        report.fault_classes.join(", ")
    );
    println!(
        "  phase A (lockstep ×2): {} requests · deaths {} · restarts {} · retired {} · \
         quarantined {} · replay {}",
        report.phase_a.requests,
        report.phase_a.shard_deaths,
        report.phase_a.shard_restarts,
        report.phase_a.shards_retired,
        report.phase_a.poison_quarantined,
        if report.phase_a.replay_identical {
            "identical"
        } else {
            "DIVERGED"
        },
    );
    println!("  phase A outcomes: {:?}", report.phase_a.outcomes);
    println!(
        "  phase B (storm): {} requests · {} admitted · deaths {} · restarts {} · \
         quarantined {} · launch faults {} · conserved {}",
        report.phase_b.requests,
        report.phase_b.admitted,
        report.phase_b.shard_deaths,
        report.phase_b.shard_restarts,
        report.phase_b.poison_quarantined,
        report.phase_b.injected_launch_faults,
        report.phase_b.conserved,
    );
    println!("  phase B outcomes: {:?}", report.phase_b.outcomes);
    println!(
        "  store churn: {} publish(es), {} ok, {} typed fault(s), {} corrupt skipped, \
         {} verified load(s) served",
        report.phase_b.store.publishes_attempted,
        report.phase_b.store.publishes_ok,
        report.phase_b.store.publish_faults_typed,
        report.phase_b.store.corrupt_versions_skipped,
        report.phase_b.store.intact_loads_published,
    );
    if report.failures.is_empty() {
        println!("  all gates passed → {}", path.display());
    } else {
        for f in &report.failures {
            eprintln!("  GATE FAILED: {f}");
        }
    }
}

fn main() {
    exit_on_error(run());
}
