//! Device characterization: microbenchmark both simulated devices and
//! print the effective rates the cost model produces. This is the
//! simulator's "testbed table" — the analog of the hardware description
//! an experimental paper opens its evaluation with.

use nitro_simt::{calibrate, DeviceConfig};

fn main() {
    println!("== Simulated device characterization ==\n");
    let cals: Vec<_> = [DeviceConfig::fermi_c2050(), DeviceConfig::kepler_k20()]
        .iter()
        .map(calibrate)
        .collect();

    println!("{:<36} {:>14} {:>14}", "metric", "Tesla C2050", "Tesla K20");
    let row = |name: &str, f: &dyn Fn(&nitro_simt::Calibration) -> f64, unit: &str| {
        println!(
            "{:<36} {:>10.1} {:<3} {:>10.1} {:<3}",
            name,
            f(&cals[0]),
            unit,
            f(&cals[1]),
            unit
        );
    };
    row("streaming bandwidth", &|c| c.stream_gbps, "GB/s");
    row("random-gather useful bandwidth", &|c| c.gather_gbps, "GB/s");
    row(
        "coalescing gain (stream/gather)",
        &|c| c.coalescing_gain,
        "x",
    );
    row(
        "texture speedup (resident set)",
        &|c| c.tex_resident_speedup,
        "x",
    );
    row(
        "texture slowdown (streaming set)",
        &|c| c.tex_streaming_slowdown,
        "x",
    );
    row(
        "shared atomics, conflict-free",
        &|c| c.shared_atomic_mops,
        "Mop",
    );
    row(
        "shared atomics, same-address",
        &|c| c.contended_shared_atomic_mops,
        "Mop",
    );
    row(
        "global atomics, same-address",
        &|c| c.contended_global_atomic_mops,
        "Mop",
    );
    row("kernel launch overhead", &|c| c.launch_overhead_us, "us");

    println!("\nThese emergent rates are what make the paper's crossovers appear:");
    println!("coalescing gain drives DIA/ELL vs CSR, texture residency drives the Tx");
    println!("variants, atomic contention drives the histogram families, and launch");
    println!("overhead drives Fused vs Iterative BFS.");
}
