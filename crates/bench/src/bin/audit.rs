//! Audit every benchmark suite: registration lint, tuned-artifact audit
//! and profile-table analysis, emitted as one JSON diagnostics report.
//!
//! ```text
//! NITRO_SCALE=small cargo run -p nitro-bench --bin audit
//! ```
//!
//! Writes the report to stdout and `target/nitro-audit.json`. Exits
//! non-zero when any error-severity finding survives — which, for the
//! in-tree suites, means a regression in either a benchmark registration
//! or the audit subsystem itself.

use nitro_audit::{
    analyze_profile, audit_artifact_against, lint_registration, render_text, ProfileAuditConfig,
    Severity,
};
use nitro_bench::error::{exit_on_error, to_json_pretty, write_file, BenchResult};
use nitro_bench::{cached_table, device, SuiteSpec};
use nitro_core::{CodeVariant, Context, Diagnostic};
use nitro_tuner::Autotuner;
use serde::Serialize;

/// One suite's combined findings.
#[derive(Serialize)]
struct SuiteAudit {
    suite: String,
    errors: usize,
    warnings: usize,
    infos: usize,
    diagnostics: Vec<Diagnostic>,
}

/// Lint the registration, tune an artifact off the (cached) training
/// table, audit the artifact against the registration and analyze the
/// profile table.
fn audit_suite<I: Send + Sync>(
    name: &str,
    cv: &mut CodeVariant<I>,
    train: &[I],
    spec: SuiteSpec,
) -> SuiteAudit {
    let scale = if spec.small { "small" } else { "full" };
    let mut diagnostics = lint_registration(cv, Some(train.len()));

    let table = cached_table(&format!("{name}-{scale}-train"), cv, train, spec.cache);
    diagnostics.extend(analyze_profile(
        &table.audit_view(name),
        &ProfileAuditConfig::default(),
    ));

    match Autotuner::new().tune_from_table(cv, &table) {
        Ok(report) => {
            // The tuner re-runs the registration lint internally; keep
            // only the post-tune artifact findings it adds on top.
            match cv.export_artifact() {
                Ok(artifact) => diagnostics.extend(audit_artifact_against(&artifact, cv)),
                Err(e) => diagnostics.push(Diagnostic::error(
                    "NITRO001",
                    name,
                    format!("tuned model could not be exported: {e}"),
                )),
            }
            drop(report);
        }
        Err(e) => {
            // A refused tune carries its findings; surface them directly.
            let carried = e.diagnostics().to_vec();
            if carried.is_empty() {
                diagnostics.push(Diagnostic::error(
                    "NITRO001",
                    name,
                    format!("tuning failed: {e}"),
                ));
            } else {
                diagnostics.extend(carried);
            }
        }
    }

    // The lint ran twice (here and inside the tuner); de-duplicate.
    diagnostics.dedup();
    let count = |s: Severity| diagnostics.iter().filter(|d| d.severity == s).count();
    SuiteAudit {
        suite: name.to_string(),
        errors: count(Severity::Error),
        warnings: count(Severity::Warning),
        infos: count(Severity::Info),
        diagnostics,
    }
}

fn main() {
    exit_on_error(run());
}

fn run() -> BenchResult<()> {
    let spec = SuiteSpec::from_env();
    let cfg = device();
    let mut audits = Vec::new();

    {
        let ctx = Context::new();
        let mut cv = nitro_sparse::spmv::build_code_variant(&ctx, &cfg);
        let (train, _) = if spec.small {
            nitro_sparse::collection::spmv_small_sets(spec.seed)
        } else {
            (
                nitro_sparse::collection::spmv_training_set(spec.seed),
                nitro_sparse::collection::spmv_test_set(spec.seed),
            )
        };
        audits.push(audit_suite("spmv", &mut cv, &train, spec));
    }
    {
        let ctx = Context::new();
        let mut cv = nitro_solvers::variants::build_code_variant(&ctx, &cfg);
        let (train, _) = if spec.small {
            nitro_solvers::collection::solver_small_sets(spec.seed)
        } else {
            (
                nitro_solvers::collection::solver_training_set(spec.seed),
                nitro_solvers::collection::solver_test_set(spec.seed),
            )
        };
        audits.push(audit_suite("solvers", &mut cv, &train, spec));
    }
    {
        let ctx = Context::new();
        let mut cv = nitro_graph::bfs::build_code_variant(&ctx, &cfg);
        let (train, _) = if spec.small {
            nitro_graph::collection::bfs_small_sets(spec.seed)
        } else {
            (
                nitro_graph::collection::bfs_training_set(spec.seed),
                nitro_graph::collection::bfs_test_set(spec.seed),
            )
        };
        audits.push(audit_suite("bfs", &mut cv, &train, spec));
    }
    {
        let ctx = Context::new();
        let mut cv = nitro_histogram::variants::build_code_variant(&ctx, &cfg);
        let (train, _) = if spec.small {
            nitro_histogram::data::hist_small_sets(spec.seed)
        } else {
            (
                nitro_histogram::data::hist_training_set(spec.seed),
                nitro_histogram::data::hist_test_set(spec.seed),
            )
        };
        audits.push(audit_suite("histogram", &mut cv, &train, spec));
    }
    {
        let ctx = Context::new();
        let mut cv = nitro_sort::variants::build_code_variant(&ctx, &cfg);
        let (train, _) = if spec.small {
            nitro_sort::keys::sort_small_sets(spec.seed)
        } else {
            (
                nitro_sort::keys::sort_training_set(spec.seed),
                nitro_sort::keys::sort_test_set(spec.seed),
            )
        };
        audits.push(audit_suite("sort", &mut cv, &train, spec));
    }

    let json = to_json_pretty("audit report", &audits)?;
    println!("{json}");

    let out = nitro_bench::cache_dir().join("../nitro-audit.json");
    write_file(&out, &json)?;
    eprintln!("report written to {}", out.display());

    let mut total_errors = 0;
    for audit in &audits {
        eprintln!(
            "\n== {} ({} error(s), {} warning(s), {} info(s)) ==",
            audit.suite, audit.errors, audit.warnings, audit.infos
        );
        eprintln!("{}", render_text(&audit.diagnostics));
        total_errors += audit.errors;
    }
    if total_errors > 0 {
        eprintln!("\naudit failed: {total_errors} error-severity finding(s)");
        std::process::exit(1);
    }
    Ok(())
}
