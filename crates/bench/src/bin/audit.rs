//! Audit every benchmark suite: registration lint, tuned-artifact audit
//! and profile-table analysis, emitted as one JSON diagnostics report
//! plus one SARIF 2.1.0 log per suite.
//!
//! ```text
//! NITRO_SCALE=small cargo run -p nitro-bench --bin audit
//! NITRO_SCALE=small cargo run -p nitro-bench --bin audit -- --deep
//! ```
//!
//! Writes the report to stdout and `target/nitro-audit.json`, and SARIF
//! logs to `target/nitro-audit/<suite>.sarif`. Exits non-zero when any
//! error-severity finding survives — which, for the in-tree suites,
//! means a regression in either a benchmark registration or the audit
//! subsystem itself.
//!
//! `--deep` additionally runs the whole-configuration tuning-graph
//! analyses (`NITRO080`–`NITRO086`) over each suite, and self-tests the
//! analyzer against a deliberately-broken fixture: a registration whose
//! variant carries unsatisfiable predicate constraints **must** be
//! flagged `NITRO080`, otherwise the run fails. The fixture's expected
//! findings never count toward the exit code.

use nitro_audit::{
    analyze_graph, analyze_profile, audit_artifact_against, lint_registration, render_sarif,
    render_text, ProfileAuditConfig, Severity, TuningGraph,
};
use nitro_bench::error::{ensure_dir, exit_on_error, to_json_pretty, write_file, BenchResult};
use nitro_bench::{cached_table, device, SuiteSpec};
use nitro_core::diag::registry::codes;
use nitro_core::{CodeVariant, Context, Diagnostic, FnFeature, FnVariant, Predicate};
use nitro_tuner::Autotuner;
use serde::Serialize;

/// One suite's combined findings.
#[derive(Serialize)]
struct SuiteAudit {
    suite: String,
    errors: usize,
    warnings: usize,
    infos: usize,
    diagnostics: Vec<Diagnostic>,
}

/// Lint the registration, tune an artifact off the (cached) training
/// table, audit the artifact against the registration, analyze the
/// profile table, and — with `--deep` — run the whole-configuration
/// tuning-graph passes with the profile attached.
fn audit_suite<I: Send + Sync>(
    name: &str,
    cv: &mut CodeVariant<I>,
    train: &[I],
    spec: SuiteSpec,
    deep: bool,
) -> SuiteAudit {
    let scale = if spec.small { "small" } else { "full" };
    let mut diagnostics = lint_registration(cv, Some(train.len()));

    let table = cached_table(&format!("{name}-{scale}-train"), cv, train, spec.cache);
    diagnostics.extend(analyze_profile(
        &table.audit_view(name),
        &ProfileAuditConfig::default(),
    ));

    match Autotuner::new().tune_from_table(cv, &table) {
        Ok(report) => {
            // The tuner re-runs the registration lint internally; keep
            // only the post-tune artifact findings it adds on top.
            match cv.export_artifact() {
                Ok(artifact) => diagnostics.extend(audit_artifact_against(&artifact, cv)),
                Err(e) => diagnostics.push(Diagnostic::error(
                    codes::NITRO001,
                    name,
                    format!("tuned model could not be exported: {e}"),
                )),
            }
            drop(report);
        }
        Err(e) => {
            // A refused tune carries its findings; surface them directly.
            let carried = e.diagnostics().to_vec();
            if carried.is_empty() {
                diagnostics.push(Diagnostic::error(
                    codes::NITRO001,
                    name,
                    format!("tuning failed: {e}"),
                ));
            } else {
                diagnostics.extend(carried);
            }
        }
    }

    if deep {
        let columns = cv.policy().active_features(cv.n_features());
        let rows = table.audit_view(name).features.to_vec();
        let graph = TuningGraph::from_code_variant(cv).with_profile(columns, rows);
        diagnostics.extend(analyze_graph(&graph));
    }

    // Overlapping analyzers may re-derive a finding; de-duplicate.
    diagnostics.dedup();
    let count = |s: Severity| diagnostics.iter().filter(|d| d.severity == s).count();
    SuiteAudit {
        suite: name.to_string(),
        errors: count(Severity::Error),
        warnings: count(Severity::Warning),
        infos: count(Severity::Info),
        diagnostics,
    }
}

/// A deliberately-broken registration: variant 1's predicate constraints
/// are jointly unsatisfiable, so the deep pass must prove it statically
/// dead (`NITRO080`). Exercising the analyzer against a known-bad input
/// guards the audit run itself against silent analyzer regressions.
fn dead_variant_fixture() -> SuiteAudit {
    let ctx = Context::new();
    let mut cv = CodeVariant::<f64>::new("dead-variant-fixture", &ctx);
    cv.add_variant(FnVariant::new("live", |&x: &f64| x));
    cv.add_variant(FnVariant::new("dead", |&x: &f64| x * 2.0));
    cv.set_default(0);
    cv.add_input_feature(FnFeature::new("n", |&x: &f64| x));
    cv.add_predicate_constraint(1, "needs_small", Predicate::le(0, 10.0))
        .expect("variant 1 exists");
    cv.add_predicate_constraint(1, "needs_large", Predicate::gt(0, 20.0))
        .expect("variant 1 exists");

    let graph = TuningGraph::from_code_variant(&cv);
    let diagnostics = analyze_graph(&graph);
    let count = |s: Severity| diagnostics.iter().filter(|d| d.severity == s).count();
    SuiteAudit {
        suite: "dead-variant-fixture".to_string(),
        errors: count(Severity::Error),
        warnings: count(Severity::Warning),
        infos: count(Severity::Info),
        diagnostics,
    }
}

fn main() {
    exit_on_error(run());
}

fn run() -> BenchResult<()> {
    let deep = std::env::args().any(|a| a == "--deep");
    let spec = SuiteSpec::from_env();
    let cfg = device();
    let mut audits = Vec::new();

    {
        let ctx = Context::new();
        let mut cv = nitro_sparse::spmv::build_code_variant(&ctx, &cfg);
        let (train, _) = if spec.small {
            nitro_sparse::collection::spmv_small_sets(spec.seed)
        } else {
            (
                nitro_sparse::collection::spmv_training_set(spec.seed),
                nitro_sparse::collection::spmv_test_set(spec.seed),
            )
        };
        audits.push(audit_suite("spmv", &mut cv, &train, spec, deep));
    }
    {
        let ctx = Context::new();
        let mut cv = nitro_solvers::variants::build_code_variant(&ctx, &cfg);
        let (train, _) = if spec.small {
            nitro_solvers::collection::solver_small_sets(spec.seed)
        } else {
            (
                nitro_solvers::collection::solver_training_set(spec.seed),
                nitro_solvers::collection::solver_test_set(spec.seed),
            )
        };
        audits.push(audit_suite("solvers", &mut cv, &train, spec, deep));
    }
    {
        let ctx = Context::new();
        let mut cv = nitro_graph::bfs::build_code_variant(&ctx, &cfg);
        let (train, _) = if spec.small {
            nitro_graph::collection::bfs_small_sets(spec.seed)
        } else {
            (
                nitro_graph::collection::bfs_training_set(spec.seed),
                nitro_graph::collection::bfs_test_set(spec.seed),
            )
        };
        audits.push(audit_suite("bfs", &mut cv, &train, spec, deep));
    }
    {
        let ctx = Context::new();
        let mut cv = nitro_histogram::variants::build_code_variant(&ctx, &cfg);
        let (train, _) = if spec.small {
            nitro_histogram::data::hist_small_sets(spec.seed)
        } else {
            (
                nitro_histogram::data::hist_training_set(spec.seed),
                nitro_histogram::data::hist_test_set(spec.seed),
            )
        };
        audits.push(audit_suite("histogram", &mut cv, &train, spec, deep));
    }
    {
        let ctx = Context::new();
        let mut cv = nitro_sort::variants::build_code_variant(&ctx, &cfg);
        let (train, _) = if spec.small {
            nitro_sort::keys::sort_small_sets(spec.seed)
        } else {
            (
                nitro_sort::keys::sort_training_set(spec.seed),
                nitro_sort::keys::sort_test_set(spec.seed),
            )
        };
        audits.push(audit_suite("sort", &mut cv, &train, spec, deep));
    }

    // The analyzer self-test rides along in --deep runs. Its findings are
    // *expected* (that is the point) and excluded from the exit code; the
    // run instead fails when NITRO080 does NOT fire.
    let fixture = deep.then(dead_variant_fixture);

    let json = to_json_pretty("audit report", &audits)?;
    println!("{json}");

    let out = nitro_bench::cache_dir().join("../nitro-audit.json");
    write_file(&out, &json)?;
    eprintln!("report written to {}", out.display());

    // One SARIF 2.1.0 log per suite (CI uploads these as artifacts).
    let sarif_dir = nitro_bench::cache_dir().join("../nitro-audit");
    ensure_dir(&sarif_dir)?;
    let version = env!("CARGO_PKG_VERSION");
    for audit in audits.iter().chain(fixture.as_ref()) {
        let path = sarif_dir.join(format!("{}.sarif", audit.suite));
        write_file(&path, &render_sarif(&audit.diagnostics, version))?;
        eprintln!("SARIF log written to {}", path.display());
    }

    let mut total_errors = 0;
    for audit in &audits {
        eprintln!(
            "\n== {} ({} error(s), {} warning(s), {} info(s)) ==",
            audit.suite, audit.errors, audit.warnings, audit.infos
        );
        eprintln!("{}", render_text(&audit.diagnostics));
        total_errors += audit.errors;
    }
    if let Some(fixture) = &fixture {
        eprintln!(
            "\n== {} (analyzer self-test; findings expected) ==",
            fixture.suite
        );
        eprintln!("{}", render_text(&fixture.diagnostics));
        if !fixture.diagnostics.iter().any(|d| d.code == "NITRO080") {
            eprintln!(
                "\naudit failed: the deep pass did not flag the deliberately \
                 dead fixture variant with NITRO080"
            );
            std::process::exit(1);
        }
    }
    if total_errors > 0 {
        eprintln!("\naudit failed: {total_errors} error-severity finding(s)");
        std::process::exit(1);
    }
    Ok(())
}
