//! Model fast-path performance report: measures the compiled SVM
//! prediction engine against the reference one-vs-one path on every
//! benchmark suite and exports machine-readable numbers.
//!
//! Writes `target/BENCH_ml.json` (uploaded as a CI artifact) with, per
//! suite: predict ns/call for both engines, the speedup, kernel
//! evaluations per prediction, support-vector compression, training
//! wall-clock and the SMO kernel-cache hit rate. Honours `NITRO_SCALE`
//! (`small` for the CI smoke run).

use std::path::PathBuf;
use std::time::Instant;

use nitro_bench::error::{exit_on_error, write_file, BenchResult};
use nitro_bench::{run_all, SuiteOutcome, SuiteSpec};
use nitro_ml::{PredictScratch, TrainedModel};
use serde::Serialize;

/// Enough repetitions for stable ns/call without criterion's runtime.
const REPS: usize = 50;

#[derive(Debug, Serialize)]
struct SuitePerf {
    name: String,
    test_inputs: usize,
    reference_predict_ns: f64,
    compiled_predict_ns: f64,
    speedup: f64,
    kernel_evals_per_predict: f64,
    unique_svs: usize,
    total_sv_refs: usize,
    train_wall_ns: f64,
    train_kernel_evals: u64,
    train_cache_hit_rate: f64,
}

#[derive(Debug, Serialize)]
struct PerfReport {
    scale: String,
    reps: usize,
    suites: Vec<SuitePerf>,
}

fn main() {
    exit_on_error(run());
}

fn run() -> BenchResult<()> {
    let spec = SuiteSpec::from_env();
    let suites = run_all(spec)?;
    let report = PerfReport {
        scale: if spec.small { "small" } else { "full" }.to_string(),
        reps: REPS,
        suites: suites.iter().filter_map(measure).collect(),
    };

    println!(
        "{:<10} {:>8} {:>12} {:>12} {:>8} {:>10} {:>9}",
        "suite", "inputs", "ref ns/call", "fast ns/call", "speedup", "kevals", "hit rate"
    );
    for s in &report.suites {
        println!(
            "{:<10} {:>8} {:>12.0} {:>12.0} {:>7.1}x {:>10.1} {:>8.1}%",
            s.name,
            s.test_inputs,
            s.reference_predict_ns,
            s.compiled_predict_ns,
            s.speedup,
            s.kernel_evals_per_predict,
            s.train_cache_hit_rate * 100.0,
        );
    }

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/BENCH_ml.json");
    let json =
        serde_json::to_string_pretty(&report).map_err(|source| nitro_bench::BenchError::Json {
            what: "perf report",
            source,
        })?;
    write_file(&path, &json)?;
    println!("\nwrote {}", path.display());
    Ok(())
}

/// Measure one suite's model fast path; non-SVM suites are skipped.
fn measure(out: &SuiteOutcome) -> Option<SuitePerf> {
    let TrainedModel::Svm {
        ref scaler,
        model: ref svm,
        ..
    } = out.model
    else {
        return None;
    };
    let compiled = svm.compiled();
    let probes: Vec<Vec<f64>> = out
        .test_table
        .features
        .iter()
        .map(|raw| scaler.transform(raw))
        .collect();
    if probes.is_empty() {
        return None;
    }

    // Reference: the full one-vs-one walk, every SV evaluated per machine.
    let start = Instant::now();
    let mut sink = 0usize;
    for _ in 0..REPS {
        for p in &probes {
            sink = sink.wrapping_add(svm.predict(std::hint::black_box(p)));
        }
    }
    let reference_ns = start.elapsed().as_nanos() as f64 / (REPS * probes.len()) as f64;

    // Compiled: shared kernel values, scratch reuse, zero allocations.
    let mut scratch = nitro_ml::SvmScratch::default();
    compiled.predict_with(&probes[0], &mut scratch); // warm buffers
    let _ = scratch.kernel_evals;
    let start = Instant::now();
    for _ in 0..REPS {
        for p in &probes {
            sink = sink.wrapping_add(compiled.predict_with(std::hint::black_box(p), &mut scratch));
        }
    }
    let compiled_ns = start.elapsed().as_nanos() as f64 / (REPS * probes.len()) as f64;
    std::hint::black_box(sink);

    // Kernel work per prediction, via the dispatch-facing scratch path.
    let mut pscratch = PredictScratch::default();
    for raw in &out.test_table.features {
        out.model.predict_into(raw, &mut pscratch);
    }
    let kernel_evals_per_predict =
        pscratch.take_kernel_evals() as f64 / out.test_table.features.len() as f64;

    let train_wall_ns = out
        .tune
        .phase_timings
        .iter()
        .find(|p| p.phase == "training")
        .map(|p| p.wall_ns)
        .unwrap_or(0.0);
    let stats = out.tune.svm_train_stats.unwrap_or_default();

    Some(SuitePerf {
        name: out.name.clone(),
        test_inputs: probes.len(),
        reference_predict_ns: reference_ns,
        compiled_predict_ns: compiled_ns,
        speedup: if compiled_ns > 0.0 {
            reference_ns / compiled_ns
        } else {
            0.0
        },
        kernel_evals_per_predict,
        unique_svs: compiled.n_unique_svs(),
        total_sv_refs: compiled.total_sv_refs(),
        train_wall_ns,
        train_kernel_evals: stats.kernel_evals,
        train_cache_hit_rate: stats.cache_hit_rate(),
    })
}
