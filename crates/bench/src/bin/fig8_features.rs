//! Figure 8: performance and feature-evaluation overhead as features are
//! added in order of increasing evaluation cost.
//!
//! Paper §V-C: BFS performance "depends almost entirely on the Average
//! Out-Degree"; BFS and Sort end up with O(1) feature sets and negligible
//! overhead; SpMV and Solvers need their expensive features for peak
//! performance, amortized over repeated executions.

use nitro_bench::{cached_table, device, feature_subset_sweep, pct, SuiteSpec};
use nitro_core::Context;

fn main() {
    let spec = SuiteSpec::from_env();
    let cfg = device();
    println!("== Figure 8: feature subsets (cheapest first) ==");
    if spec.small {
        println!("(NITRO_SCALE=small — miniature collections)");
    }
    let scale = if spec.small { "small" } else { "full" };

    {
        let ctx = Context::new();
        let cv = nitro_sparse::spmv::build_code_variant(&ctx, &cfg);
        let (train, test) = if spec.small {
            nitro_sparse::collection::spmv_small_sets(spec.seed)
        } else {
            (
                nitro_sparse::collection::spmv_training_set(spec.seed),
                nitro_sparse::collection::spmv_test_set(spec.seed),
            )
        };
        let train_table = cached_table(&format!("spmv-{scale}-train"), &cv, &train, spec.cache);
        let test_table = cached_table(&format!("spmv-{scale}-test"), &cv, &test, spec.cache);
        report(
            "spmv",
            feature_subset_sweep(&cv, &test, &train_table, &test_table),
        );
    }
    {
        let ctx = Context::new();
        let cv = nitro_solvers::variants::build_code_variant(&ctx, &cfg);
        let (train, test) = if spec.small {
            nitro_solvers::collection::solver_small_sets(spec.seed)
        } else {
            (
                nitro_solvers::collection::solver_training_set(spec.seed),
                nitro_solvers::collection::solver_test_set(spec.seed),
            )
        };
        let train_table = cached_table(&format!("solvers-{scale}-train"), &cv, &train, spec.cache);
        let test_table = cached_table(&format!("solvers-{scale}-test"), &cv, &test, spec.cache);
        report(
            "solvers",
            feature_subset_sweep(&cv, &test, &train_table, &test_table),
        );
    }
    {
        let ctx = Context::new();
        let cv = nitro_graph::bfs::build_code_variant(&ctx, &cfg);
        let (train, test) = nitro_bench::bfs_sets(spec);
        let train_table = cached_table(&format!("bfs-{scale}-train"), &cv, &train, spec.cache);
        let test_table = cached_table(&format!("bfs-{scale}-test"), &cv, &test, spec.cache);
        report(
            "bfs",
            feature_subset_sweep(&cv, &test, &train_table, &test_table),
        );
    }
    {
        let ctx = Context::new();
        let cv = nitro_histogram::variants::build_code_variant(&ctx, &cfg);
        let (train, test) = if spec.small {
            nitro_histogram::data::hist_small_sets(spec.seed)
        } else {
            (
                nitro_histogram::data::hist_training_set(spec.seed),
                nitro_histogram::data::hist_test_set(spec.seed),
            )
        };
        let train_table =
            cached_table(&format!("histogram-{scale}-train"), &cv, &train, spec.cache);
        let test_table = cached_table(&format!("histogram-{scale}-test"), &cv, &test, spec.cache);
        report(
            "histogram",
            feature_subset_sweep(&cv, &test, &train_table, &test_table),
        );

        // The §V-C sub-experiment: shrinking the SubSampleSD sample cuts
        // its overhead with only a small performance cost.
        println!("  SubSampleSD sample-size sensitivity:");
        for cap in [10_000usize, 2_000, 500] {
            let cv2 = nitro_histogram::variants::build_code_variant_with_subsample(&ctx, &cfg, cap);
            let inp = &test[0];
            let (_, cost) = cv2.evaluate_features(inp);
            println!("    cap {:>6}: feature cost {:>10.0} ns", cap, cost);
        }
    }
    {
        let ctx = Context::new();
        let cv = nitro_sort::variants::build_code_variant(&ctx, &cfg);
        let (train, test) = if spec.small {
            nitro_sort::keys::sort_small_sets(spec.seed)
        } else {
            (
                nitro_sort::keys::sort_training_set(spec.seed),
                nitro_sort::keys::sort_test_set(spec.seed),
            )
        };
        let train_table = cached_table(&format!("sort-{scale}-train"), &cv, &train, spec.cache);
        let test_table = cached_table(&format!("sort-{scale}-test"), &cv, &test, spec.cache);
        report(
            "sort",
            feature_subset_sweep(&cv, &test, &train_table, &test_table),
        );
    }
}

fn report(name: &str, rows: Vec<nitro_bench::FeatureSubsetRow>) {
    println!("\n--- {name} ---");
    println!("  k  perf      overhead  features");
    for r in &rows {
        println!(
            "  {}  {}  {:>7.3}%  {}",
            r.k,
            pct(r.perf),
            r.overhead_frac * 100.0,
            r.features.join(", ")
        );
    }
}
