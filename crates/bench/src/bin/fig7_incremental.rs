//! Figure 7: incremental tuning — performance (relative to exhaustive
//! search) as a function of Best-vs-Second-Best active-learning
//! iterations, compared against training on the full training set.
//!
//! Paper: the number of iterations required to reach within 90% of the
//! performance achieved without incremental tuning is roughly 25
//! iterations. To match it, incremental tuning takes no more than 50.

use nitro_bench::error::{exit_on_error, BenchResult};
use nitro_bench::{
    cached_table, device, incremental_curve_with_report, pct, phase_breakdown, SuiteSpec,
};
use nitro_core::Context;
use nitro_tuner::{evaluate_model, Autotuner, ProfileTable};

const MAX_ITERS: usize = 50;

fn main() {
    exit_on_error(run());
}

fn run() -> BenchResult<()> {
    let spec = SuiteSpec::from_env();
    let cfg = device();
    println!("== Figure 7: incremental tuning (BvSB active learning) ==");
    if spec.small {
        println!("(NITRO_SCALE=small — miniature collections)");
    }
    let scale = if spec.small { "small" } else { "full" };
    let max_iters = if spec.small { 10 } else { MAX_ITERS };

    // Each block: build the code variant + inputs, profile, run the sweep.
    {
        let ctx = Context::new();
        let mut cv = nitro_sparse::spmv::build_code_variant(&ctx, &cfg);
        let (train, test) = if spec.small {
            nitro_sparse::collection::spmv_small_sets(spec.seed)
        } else {
            (
                nitro_sparse::collection::spmv_training_set(spec.seed),
                nitro_sparse::collection::spmv_test_set(spec.seed),
            )
        };
        let test_table = cached_table(&format!("spmv-{scale}-test"), &cv, &test, spec.cache);
        report("spmv", &mut cv, &train, &test_table, max_iters)?;
    }
    {
        let ctx = Context::new();
        let mut cv = nitro_solvers::variants::build_code_variant(&ctx, &cfg);
        let (train, test) = if spec.small {
            nitro_solvers::collection::solver_small_sets(spec.seed)
        } else {
            (
                nitro_solvers::collection::solver_training_set(spec.seed),
                nitro_solvers::collection::solver_test_set(spec.seed),
            )
        };
        let test_table = cached_table(&format!("solvers-{scale}-test"), &cv, &test, spec.cache);
        report("solvers", &mut cv, &train, &test_table, max_iters)?;
    }
    {
        let ctx = Context::new();
        let mut cv = nitro_graph::bfs::build_code_variant(&ctx, &cfg);
        let (train, test) = nitro_bench::bfs_sets(spec);
        let test_table = cached_table(&format!("bfs-{scale}-test"), &cv, &test, spec.cache);
        report("bfs", &mut cv, &train, &test_table, max_iters)?;
    }
    {
        let ctx = Context::new();
        let mut cv = nitro_histogram::variants::build_code_variant(&ctx, &cfg);
        let (train, test) = if spec.small {
            nitro_histogram::data::hist_small_sets(spec.seed)
        } else {
            (
                nitro_histogram::data::hist_training_set(spec.seed),
                nitro_histogram::data::hist_test_set(spec.seed),
            )
        };
        let test_table = cached_table(&format!("histogram-{scale}-test"), &cv, &test, spec.cache);
        report("histogram", &mut cv, &train, &test_table, max_iters)?;
    }
    {
        let ctx = Context::new();
        let mut cv = nitro_sort::variants::build_code_variant(&ctx, &cfg);
        let (train, test) = if spec.small {
            nitro_sort::keys::sort_small_sets(spec.seed)
        } else {
            (
                nitro_sort::keys::sort_training_set(spec.seed),
                nitro_sort::keys::sort_test_set(spec.seed),
            )
        };
        let test_table = cached_table(&format!("sort-{scale}-test"), &cv, &test, spec.cache);
        report("sort", &mut cv, &train, &test_table, max_iters)?;
    }
    Ok(())
}

fn report<I: Send + Sync>(
    name: &str,
    cv: &mut nitro_core::CodeVariant<I>,
    train: &[I],
    test_table: &ProfileTable,
    max_iters: usize,
) -> BenchResult<()> {
    // Baseline: full-training-set performance.
    cv.policy_mut().incremental = None;
    let train_table = ProfileTable::build(cv, train);
    Autotuner::new().tune_from_table(cv, &train_table)?;
    let full_model = cv.export_artifact()?.model;
    let full = evaluate_model(test_table, &full_model, cv.default_variant()).mean_relative_perf;

    let (curve, tune) = incremental_curve_with_report(cv, train, test_table, max_iters)?;

    println!(
        "\n--- {name} (full-training performance: {}) ---",
        pct(full)
    );
    println!("  iter  perf      % of full-training");
    let mut reached_90 = None;
    let mut reached_100 = None;
    for &(i, perf) in &curve {
        let frac = if full > 0.0 { perf / full } else { 0.0 };
        if reached_90.is_none() && frac >= 0.90 {
            reached_90 = Some(i);
        }
        if reached_100.is_none() && frac >= 0.999 {
            reached_100 = Some(i);
        }
        // Print a decimated curve: every iteration up to 10, then every 5.
        if i <= 10 || i % 5 == 0 || i + 1 == curve.len() {
            println!("  {:>4}  {}  {:>6.1}%", i, pct(perf), frac * 100.0);
        }
    }
    println!(
        "  reached 90% of full-training at iteration {:?}; matched it at {:?} (paper: ~25 and <=50)",
        reached_90, reached_100
    );
    let breakdown = phase_breakdown(&tune, "    ");
    if !breakdown.is_empty() {
        println!("  incremental tuning time by phase:\n{breakdown}");
    }
    Ok(())
}
