//! Shared load-generation utilities for the serving and chaos
//! harnesses: a seeded zipf rank sampler (skewed tenant/input picks)
//! and a phase-structured open-loop arrival schedule.
//!
//! The zipf sampler used to live inline in the harness binaries (and a
//! cousin of it in `nitro-histogram`'s data generator); it is lifted
//! here so every load generator draws skew the same way — seeded,
//! deterministic, and rank-0-based.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Zipf};

/// A seeded sampler of zipf-distributed ranks `0..n`.
///
/// Rank 0 is the hottest: with exponent `s ≈ 1`, a handful of ranks
/// receive most of the draws — the canonical shape of tenant traffic,
/// hot keys and skewed inputs. Two samplers built with the same
/// `(n, exponent, seed)` produce identical streams.
#[derive(Debug)]
pub struct ZipfSampler {
    dist: Zipf,
    rng: StdRng,
    n: usize,
}

impl ZipfSampler {
    /// Sampler over `0..n` with `exponent > 0` and a deterministic
    /// seed. Panics if `n == 0` or the exponent is not positive
    /// (mirrors the distribution's own domain).
    pub fn new(n: usize, exponent: f64, seed: u64) -> Self {
        let dist = Zipf::new(n as f64, exponent).expect("valid zipf parameters");
        Self {
            dist,
            rng: StdRng::seed_from_u64(seed),
            n,
        }
    }

    /// Draw the next rank, in `0..n`.
    pub fn next_rank(&mut self) -> usize {
        // The distribution samples 1-based ranks as f64.
        ((self.dist.sample(&mut self.rng) as usize).saturating_sub(1)).min(self.n - 1)
    }

    /// The number of ranks.
    pub fn n(&self) -> usize {
        self.n
    }
}

/// One phase of an offered-load schedule: `requests` arrivals spaced
/// `gap_ns` apart (an open-loop schedule — arrivals do not wait for
/// completions, which is what makes overload possible).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadPhase {
    /// Phase label ("warm", "burst", …).
    pub name: &'static str,
    /// Arrivals in this phase.
    pub requests: usize,
    /// Inter-arrival gap, ns (0 = an instantaneous burst).
    pub gap_ns: u64,
}

impl LoadPhase {
    /// Offered load in requests/second (`f64::INFINITY` for a burst).
    pub fn offered_rps(&self) -> f64 {
        if self.gap_ns == 0 {
            f64::INFINITY
        } else {
            1e9 / self.gap_ns as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream_different_seed_different_stream() {
        let mut a = ZipfSampler::new(64, 1.2, 42);
        let mut b = ZipfSampler::new(64, 1.2, 42);
        let mut c = ZipfSampler::new(64, 1.2, 43);
        let sa: Vec<usize> = (0..256).map(|_| a.next_rank()).collect();
        let sb: Vec<usize> = (0..256).map(|_| b.next_rank()).collect();
        let sc: Vec<usize> = (0..256).map(|_| c.next_rank()).collect();
        assert_eq!(sa, sb, "same seed must replay the same stream");
        assert_ne!(sa, sc, "different seeds must diverge");
    }

    #[test]
    fn ranks_are_in_range_and_skewed_toward_zero() {
        let mut s = ZipfSampler::new(16, 1.3, 7);
        let mut counts = [0usize; 16];
        for _ in 0..4000 {
            counts[s.next_rank()] += 1;
        }
        // Rank 0 dominates a zipf(1.3) over 16 ranks.
        assert!(counts[0] > 1000, "rank 0 drew only {} of 4000", counts[0]);
        assert!(counts[0] > counts[8] * 4, "{counts:?}");
    }

    #[test]
    fn load_phase_reports_offered_rate() {
        let warm = LoadPhase {
            name: "warm",
            requests: 100,
            gap_ns: 1_000_000,
        };
        assert!((warm.offered_rps() - 1000.0).abs() < 1e-9);
        let burst = LoadPhase {
            name: "burst",
            requests: 50,
            gap_ns: 0,
        };
        assert!(burst.offered_rps().is_infinite());
    }
}
