//! Typed errors for the experiment binaries.
//!
//! The figure binaries are batch jobs: on any failure they should print
//! one diagnosable line to stderr and exit nonzero, not panic with an
//! `unwrap` backtrace. [`BenchError`] wraps the three failure domains a
//! harness hits — the framework itself ([`NitroError`]), filesystem I/O
//! (annotated with the offending path) and JSON (de)serialization — and
//! every binary funnels through a `fn run() -> BenchResult<()>` whose
//! error lands in `main`'s `exit(1)` path.

use std::fmt;
use std::path::Path;

use nitro_core::NitroError;

/// Result alias used across the bench binaries.
pub type BenchResult<T> = std::result::Result<T, BenchError>;

/// Everything that can go wrong in an experiment binary.
#[derive(Debug)]
pub enum BenchError {
    /// Tuning, dispatch, audit or artifact handling failed.
    Nitro(NitroError),
    /// A filesystem operation failed; `path` says where.
    Io {
        /// What the harness was doing ("write", "read", "create dir").
        action: &'static str,
        /// The file or directory involved.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// JSON encoding/decoding failed.
    Json {
        /// What was being (de)serialized.
        what: &'static str,
        /// The underlying error.
        source: serde_json::Error,
    },
    /// A report or export failed an internal consistency check.
    Invalid(String),
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Nitro(e) => write!(f, "{e}"),
            BenchError::Io {
                action,
                path,
                source,
            } => write!(f, "failed to {action} '{path}': {source}"),
            BenchError::Json { what, source } => {
                write!(f, "failed to serialize {what}: {source}")
            }
            BenchError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for BenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchError::Nitro(e) => Some(e),
            BenchError::Io { source, .. } => Some(source),
            BenchError::Json { source, .. } => Some(source),
            BenchError::Invalid(_) => None,
        }
    }
}

impl From<NitroError> for BenchError {
    fn from(e: NitroError) -> Self {
        BenchError::Nitro(e)
    }
}

/// Write a file, annotating failures with the destination path.
pub fn write_file(path: &Path, contents: &str) -> BenchResult<()> {
    std::fs::write(path, contents).map_err(|source| BenchError::Io {
        action: "write",
        path: path.display().to_string(),
        source,
    })
}

/// Create a directory tree, annotating failures with the path.
pub fn ensure_dir(path: &Path) -> BenchResult<()> {
    std::fs::create_dir_all(path).map_err(|source| BenchError::Io {
        action: "create directory",
        path: path.display().to_string(),
        source,
    })
}

/// Serialize a value to pretty JSON with a named context.
pub fn to_json_pretty<T: serde::Serialize>(what: &'static str, value: &T) -> BenchResult<String> {
    serde_json::to_string_pretty(value).map_err(|source| BenchError::Json { what, source })
}

/// The shared `main` tail: report the error and exit nonzero.
pub fn exit_on_error(result: BenchResult<()>) {
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_errors_name_the_path() {
        let err = write_file(Path::new("/nonexistent-dir/x.json"), "{}").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("/nonexistent-dir/x.json"), "{msg}");
        assert!(msg.contains("write"), "{msg}");
    }

    #[test]
    fn nitro_errors_pass_through() {
        let err = BenchError::from(NitroError::NoVariants);
        assert_eq!(err.to_string(), NitroError::NoVariants.to_string());
    }
}
