//! Criterion benches of the simulated benchmark kernels: wall time here
//! is host simulation cost, and the reported simulated nanoseconds per
//! variant are printed by the figure binaries instead. These benches
//! guard against regressions in simulator throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use nitro_simt::{DeviceConfig, Gpu};
use std::hint::black_box;

fn bench_spmv_kernels(c: &mut Criterion) {
    let csr = nitro_sparse::gen::banded(4_000, 4, 1.0, 7);
    let dia = nitro_sparse::dia::DiaMatrix::from_csr(&csr, 512).unwrap();
    let ell = nitro_sparse::ell::EllMatrix::from_csr(&csr, 8.0).unwrap();
    let x: Vec<f64> = (0..4_000).map(|i| (i as f64).cos() + 2.0).collect();
    let gpu = Gpu::new(DeviceConfig::fermi_c2050().noiseless());

    let mut g = c.benchmark_group("spmv_simulation");
    g.sample_size(30);
    g.bench_function("csr_vector_banded_4k", |b| {
        b.iter(|| nitro_sparse::spmv::spmv_csr_vector(black_box(&csr), &x, &gpu, false))
    });
    g.bench_function("dia_banded_4k", |b| {
        b.iter(|| nitro_sparse::spmv::spmv_dia(black_box(&dia), &x, &gpu, false))
    });
    g.bench_function("ell_banded_4k", |b| {
        b.iter(|| nitro_sparse::spmv::spmv_ell(black_box(&ell), &x, &gpu, false))
    });
    g.bench_function("csr_vector_tx_banded_4k", |b| {
        b.iter(|| nitro_sparse::spmv::spmv_csr_vector(black_box(&csr), &x, &gpu, true))
    });
    g.finish();
}

fn bench_bfs_kernels(c: &mut Criterion) {
    let grid = nitro_graph::gen::grid_2d(50, 50);
    let rmat = nitro_graph::gen::rmat(10, 16, 3);
    let cfg = DeviceConfig::fermi_c2050().noiseless();

    let mut g = c.benchmark_group("bfs_simulation");
    g.sample_size(30);
    g.bench_function("ce_fused_grid_2500", |b| {
        b.iter(|| {
            nitro_graph::run_bfs(
                black_box(&grid),
                0,
                nitro_graph::Strategy::ContractExpand,
                true,
                &cfg,
                1,
            )
        })
    });
    g.bench_function("two_phase_rmat_1024", |b| {
        b.iter(|| {
            nitro_graph::run_bfs(
                black_box(&rmat),
                1,
                nitro_graph::Strategy::TwoPhase,
                true,
                &cfg,
                1,
            )
        })
    });
    g.finish();
}

fn bench_histogram_kernels(c: &mut Criterion) {
    let uniform = nitro_histogram::data::generate("uniform", 100_000, 3, "b");
    let cfg = DeviceConfig::fermi_c2050().noiseless();

    let mut g = c.benchmark_group("histogram_simulation");
    g.sample_size(20);
    g.bench_function("shared_atomic_uniform_100k", |b| {
        b.iter(|| {
            nitro_histogram::run_variant(
                nitro_histogram::Method::SharedAtomic,
                nitro_histogram::Mapping::EvenShare,
                black_box(&uniform),
                &cfg,
            )
        })
    });
    g.bench_function("sort_based_uniform_100k", |b| {
        b.iter(|| {
            nitro_histogram::run_variant(
                nitro_histogram::Method::Sort,
                nitro_histogram::Mapping::EvenShare,
                black_box(&uniform),
                &cfg,
            )
        })
    });
    g.finish();
}

fn bench_sort_kernels(c: &mut Criterion) {
    let keys32 = nitro_sort::keys::generate("uniform", 100_000, false, 5, "b32");
    let keys64 = nitro_sort::keys::generate("almost_sorted", 100_000, true, 5, "b64");
    let cfg = DeviceConfig::fermi_c2050().noiseless();

    let mut g = c.benchmark_group("sort_simulation");
    g.sample_size(20);
    g.bench_function("radix_uniform_f32_100k", |b| {
        b.iter(|| nitro_sort::run_variant(nitro_sort::Method::Radix, black_box(&keys32), &cfg))
    });
    g.bench_function("locality_almost_sorted_f64_100k", |b| {
        b.iter(|| nitro_sort::run_variant(nitro_sort::Method::Locality, black_box(&keys64), &cfg))
    });
    g.finish();
}

fn bench_solver(c: &mut Criterion) {
    let a = nitro_sparse::gen::make_spd(&nitro_sparse::gen::random_uniform(500, 5, 11), 1.3);
    let input = nitro_solvers::SolverInput::new("bench", "spd", a);
    let cfg = DeviceConfig::fermi_c2050().noiseless();

    let mut g = c.benchmark_group("solver_simulation");
    g.sample_size(20);
    g.bench_function("cg_jacobi_spd_500", |b| {
        b.iter(|| {
            nitro_solvers::run_variant(
                nitro_solvers::Method::Cg,
                nitro_solvers::Precond::Jacobi,
                black_box(&input),
                &cfg,
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_spmv_kernels,
    bench_bfs_kernels,
    bench_histogram_kernels,
    bench_sort_kernels,
    bench_solver
);
criterion_main!(benches);
