//! Criterion benches of the model fast path: the compiled SVM prediction
//! engine against the reference one-vs-one walk, and kernel-cached SMO
//! training against the full-Gram reference solver.
//!
//! These are the numbers the `perf_report` binary exports as
//! `target/BENCH_ml.json`; the benches here give them criterion's
//! statistical rigor for local comparisons.

use criterion::{criterion_group, criterion_main, Criterion};
use nitro_ml::svm::smo::{solve, solve_reference, SmoParams};
use nitro_ml::{Dataset, Kernel, PredictScratch, SvmModel, TrainedModel};
use std::hint::black_box;

/// Three interleaved clusters, large enough that pair machines share
/// many support vectors (the case the compiled engine's dedup targets).
fn clustered(n_per_class: usize) -> Dataset {
    let mut d = Dataset::new(3);
    for i in 0..n_per_class {
        let j = i as f64 * 0.37;
        d.push(vec![j.sin() * 0.8, j.cos() * 0.8, j % 1.3], 0);
        d.push(vec![3.0 + j.sin(), 3.0 + j.cos(), (j * 1.7) % 1.1], 1);
        d.push(vec![j.cos() - 3.0, j.sin() + 3.0, (j * 0.9) % 0.7], 2);
    }
    d
}

fn bench_predict(c: &mut Criterion) {
    let data = clustered(40);
    let model = SvmModel::train(
        &data,
        Kernel::Rbf { gamma: 1.0 },
        &SmoParams {
            c: 10.0,
            ..Default::default()
        },
    );
    let compiled = model.compiled();
    let mut scratch = nitro_ml::SvmScratch::default();
    let point = vec![1.5, 1.5, 0.5];

    let mut g = c.benchmark_group("svm_predict");
    g.bench_function("reference", |b| b.iter(|| model.predict(black_box(&point))));
    g.bench_function("compiled", |b| {
        b.iter(|| compiled.predict_with(black_box(&point), &mut scratch))
    });
    g.bench_function("reference_probabilities", |b| {
        b.iter(|| model.probabilities(black_box(&point)))
    });
    g.bench_function("compiled_probabilities", |b| {
        b.iter(|| {
            compiled
                .probabilities_with(black_box(&point), &mut scratch)
                .len()
        })
    });
    g.finish();

    // The full dispatch-facing path, scaler included.
    let trained = TrainedModel::train(
        &nitro_ml::ClassifierConfig::Svm {
            c: Some(10.0),
            gamma: Some(1.0),
            grid_search: false,
            cache_bytes: None,
        },
        &data,
    );
    let mut pscratch = PredictScratch::default();
    c.bench_function("trained_model_predict_into", |b| {
        b.iter(|| trained.predict_into(black_box(&point), &mut pscratch))
    });
}

fn bench_train(c: &mut Criterion) {
    let data = clustered(40); // 120 rows, 3 classes → 3 pair machines
    let (x, y): (Vec<Vec<f64>>, Vec<f64>) = {
        // One binary problem out of the multiclass set (classes 0 vs 1).
        let mut x = Vec::new();
        let mut y = Vec::new();
        for (row, &label) in data.x.iter().zip(&data.y) {
            if label < 2 {
                x.push(row.clone());
                y.push(if label == 0 { 1.0 } else { -1.0 });
            }
        }
        (x, y)
    };
    let kernel = Kernel::Rbf { gamma: 1.0 };

    let mut g = c.benchmark_group("smo_train");
    g.sample_size(20);
    g.bench_function("full_gram_reference", |b| {
        b.iter(|| solve_reference(black_box(&x), &y, &kernel, &SmoParams::default()))
    });
    g.bench_function("cached_unbounded", |b| {
        b.iter(|| solve(black_box(&x), &y, &kernel, &SmoParams::default()))
    });
    g.bench_function("cached_8_columns", |b| {
        b.iter(|| {
            solve(
                black_box(&x),
                &y,
                &kernel,
                &SmoParams {
                    cache_bytes: 8 * x.len() * 8,
                    ..Default::default()
                },
            )
        })
    });
    g.bench_function("multiclass_parallel_ovo", |b| {
        b.iter(|| SvmModel::train(black_box(&data), kernel, &SmoParams::default()))
    });
    g.finish();
}

criterion_group!(benches, bench_predict, bench_train);
criterion_main!(benches);
