//! Criterion benches of the Nitro framework itself: feature evaluation,
//! model prediction and dispatch — the runtime overheads §III-C's
//! optimizations exist to hide.

use criterion::{criterion_group, criterion_main, Criterion};
use nitro_core::{ClassifierConfig, CodeVariant, Context, FnFeature, FnVariant};
use nitro_ml::{Dataset, TrainedModel, TreeParams};
use std::hint::black_box;

/// A synthetic tuned function over vectors with several features of
/// varying cost.
fn make_cv(parallel: bool) -> CodeVariant<Vec<f64>> {
    let ctx = Context::new();
    let mut cv = CodeVariant::new("bench", &ctx);
    cv.add_variant(FnVariant::new("a", |v: &Vec<f64>| v.len() as f64));
    cv.add_variant(FnVariant::new("b", |v: &Vec<f64>| v.len() as f64 * 0.5));
    cv.set_default(0);
    cv.add_input_feature(FnFeature::new("len", |v: &Vec<f64>| v.len() as f64));
    cv.add_input_feature(FnFeature::new("sum", |v: &Vec<f64>| v.iter().sum()));
    cv.add_input_feature(FnFeature::new("mean_abs", |v: &Vec<f64>| {
        v.iter().map(|x| x.abs()).sum::<f64>() / v.len().max(1) as f64
    }));
    cv.add_input_feature(FnFeature::new("sd", |v: &Vec<f64>| {
        let m = v.iter().sum::<f64>() / v.len().max(1) as f64;
        (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len().max(1) as f64).sqrt()
    }));
    cv.policy_mut().parallel_feature_evaluation = parallel;
    cv
}

fn training_data() -> Dataset {
    let x: Vec<Vec<f64>> = (0..60)
        .map(|i| {
            vec![
                i as f64,
                (i * 3 % 17) as f64,
                (i * 7 % 11) as f64,
                (i % 5) as f64,
            ]
        })
        .collect();
    let y: Vec<usize> = (0..60).map(|i| usize::from(i >= 30)).collect();
    Dataset::from_parts(x, y)
}

fn bench_feature_evaluation(c: &mut Criterion) {
    let input: Vec<f64> = (0..65_536).map(|i| (i as f64).sin()).collect();
    let serial = make_cv(false);
    let parallel = make_cv(true);
    let mut g = c.benchmark_group("feature_evaluation");
    g.bench_function("serial_4_features_64k", |b| {
        b.iter(|| serial.evaluate_features(black_box(&input)))
    });
    g.bench_function("parallel_4_features_64k", |b| {
        b.iter(|| parallel.evaluate_features(black_box(&input)))
    });
    g.finish();
}

fn bench_model_prediction(c: &mut Criterion) {
    let data = training_data();
    let svm = TrainedModel::train(
        &ClassifierConfig::Svm {
            c: Some(4.0),
            gamma: Some(0.5),
            grid_search: false,
            cache_bytes: None,
        },
        &data,
    );
    let knn = TrainedModel::train(&ClassifierConfig::Knn { k: 3 }, &data);
    let tree = TrainedModel::train(&ClassifierConfig::Tree(TreeParams::default()), &data);
    let point = vec![31.0, 8.0, 3.0, 1.0];

    let mut g = c.benchmark_group("model_prediction");
    g.bench_function("svm_predict", |b| b.iter(|| svm.predict(black_box(&point))));
    g.bench_function("svm_probabilities", |b| {
        b.iter(|| svm.probabilities(black_box(&point)))
    });
    g.bench_function("knn_predict", |b| b.iter(|| knn.predict(black_box(&point))));
    g.bench_function("tree_predict", |b| {
        b.iter(|| tree.predict(black_box(&point)))
    });
    g.finish();
}

fn bench_dispatch(c: &mut Criterion) {
    let mut cv = make_cv(false);
    let data = training_data();
    cv.install_model(TrainedModel::train(&ClassifierConfig::Knn { k: 1 }, &data));
    let input: Vec<f64> = (0..1024).map(|i| i as f64).collect();
    c.bench_function("dispatch_full_call", |b| {
        b.iter(|| cv.call(black_box(&input)).unwrap().variant)
    });
}

fn bench_training(c: &mut Criterion) {
    let data = training_data();
    let mut g = c.benchmark_group("training");
    g.sample_size(20);
    g.bench_function("svm_fixed_params_60x4", |b| {
        b.iter(|| {
            TrainedModel::train(
                &ClassifierConfig::Svm {
                    c: Some(4.0),
                    gamma: Some(0.5),
                    grid_search: false,
                    cache_bytes: None,
                },
                black_box(&data),
            )
        })
    });
    g.bench_function("tree_60x4", |b| {
        b.iter(|| {
            TrainedModel::train(
                &ClassifierConfig::Tree(TreeParams::default()),
                black_box(&data),
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_feature_evaluation,
    bench_model_prediction,
    bench_dispatch,
    bench_training
);
criterion_main!(benches);
