use nitro_bench::SuiteSpec;
use nitro_core::Context;
use nitro_pulse::{FunctionPulse, PulseRegistry};
use nitro_simt::{install_fault_plan, uninstall_fault_plan, FaultPlan};
use nitro_tuner::Autotuner;

#[test]
#[ignore]
fn fault_inflation_probe() {
    let spec = SuiteSpec::small();
    let cfg = nitro_bench::device();

    // Per suite, dispatch the test set healthy vs faulted, report the
    // p99/p50 inflation ratios.
    macro_rules! suite {
        ($name:expr, $build:expr, $sets:expr) => {{
            let (train, test) = $sets;
            let ctx = Context::new();
            let mut cv = $build(&ctx);
            Autotuner::new().tune(&mut cv, &train).unwrap();
            for factor in [8.0f64, 64.0] {
                let registry = PulseRegistry::new();
                FunctionPulse::install(&mut cv, &registry, None);
                let metric = format!("dispatch.{}.latency_ns", cv.name());
                for input in &test {
                    cv.call(input).unwrap();
                }
                let healthy = registry.quantile(&metric, 0.99).unwrap();
                let healthy_p50 = registry.quantile(&metric, 0.5).unwrap();
                let registry = PulseRegistry::new();
                FunctionPulse::install(&mut cv, &registry, None);
                install_fault_plan(FaultPlan {
                    seed: 11,
                    slowdown_prob: 1.0,
                    slowdown_factor: factor,
                    ..FaultPlan::default()
                });
                for input in &test {
                    cv.call(input).unwrap();
                }
                uninstall_fault_plan();
                let faulty = registry.quantile(&metric, 0.99).unwrap();
                let faulty_p50 = registry.quantile(&metric, 0.5).unwrap();
                println!(
                    "{}: x{factor} -> p99 {healthy:.0} => {faulty:.0} ({:.2}x) p50 {:.2}x",
                    $name,
                    faulty / healthy,
                    faulty_p50 / healthy_p50
                );
            }
        }};
    }

    suite!(
        "spmv",
        |ctx: &Context| nitro_sparse::spmv::build_code_variant(ctx, &cfg),
        nitro_sparse::collection::spmv_small_sets(spec.seed)
    );
    suite!(
        "solvers",
        |ctx: &Context| nitro_solvers::variants::build_code_variant(ctx, &cfg),
        nitro_solvers::collection::solver_small_sets(spec.seed)
    );
    suite!(
        "bfs",
        |ctx: &Context| nitro_graph::bfs::build_code_variant(ctx, &cfg),
        nitro_graph::collection::bfs_small_sets(spec.seed)
    );
}
