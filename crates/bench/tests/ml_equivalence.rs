//! Suite-level equivalence of the compiled SVM prediction engine.
//!
//! The compiled engine (`nitro_ml::svm::compiled`) is the path every
//! dispatched call takes; the reference one-vs-one implementation in
//! `SvmModel` is the specification. This test tunes all five paper
//! benchmark suites end-to-end at CI scale and requires the two paths to
//! agree *bitwise* — argmax, posteriors and ranking — on every train and
//! test input of every suite, plus a clean `NITRO062` fast-path audit.

use nitro_bench::harness::{run_all, SuiteSpec};
use nitro_core::TrainedModel;

#[test]
fn compiled_predictions_match_reference_on_all_suites() {
    let outcomes = run_all(SuiteSpec::small()).expect("all five suites tune");
    assert_eq!(outcomes.len(), 5);
    let mut svm_suites = 0usize;
    for out in &outcomes {
        let TrainedModel::Svm {
            ref scaler,
            model: ref svm,
            ..
        } = out.model
        else {
            continue;
        };
        svm_suites += 1;
        let compiled = svm.compiled();
        let probe_rows = out
            .train_table
            .features
            .iter()
            .chain(out.test_table.features.iter());
        let mut rows = 0usize;
        for raw in probe_rows {
            rows += 1;
            let x = scaler.transform(raw);
            assert_eq!(
                svm.predict(&x),
                compiled.predict(&x),
                "{}: argmax diverged on {raw:?}",
                out.name
            );
            let reference = svm.probabilities(&x);
            let fast = compiled.probabilities(&x);
            assert_eq!(reference.len(), fast.len(), "{}", out.name);
            for (i, (a, b)) in reference.iter().zip(&fast).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{}: posterior {i} diverged on {raw:?}: {a} vs {b}",
                    out.name
                );
            }
        }
        assert!(rows > 0, "{}: no probe rows", out.name);

        // The fast-path audit must agree that the engines match.
        let train_data = out.train_table.dataset();
        let diags = nitro_audit::audit_fastpath(&out.model, &train_data, &out.name);
        assert!(
            !diags.iter().any(|d| d.code == "NITRO062"),
            "{}: {diags:?}",
            out.name
        );
    }
    assert!(
        svm_suites > 0,
        "expected at least one SVM-classified suite (the paper default)"
    );
}
