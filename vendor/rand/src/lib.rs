//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, deterministic implementation of exactly the API
//! surface it consumes: [`Rng`] (`random`, `random_range`, `random_bool`,
//! `next_u32`/`next_u64`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] and [`seq::SliceRandom::shuffle`].
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream's ChaCha12, but every consumer in this workspace
//! only relies on *determinism for a given seed*, not on a particular
//! stream.

/// Uniform generation of a value of `T` from raw RNG output (the role of
/// upstream's `StandardUniform` distribution).
pub trait FromRng: Sized {
    /// Draw one uniformly-distributed value.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_from_rng_int {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_from_rng_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRng for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    /// 53 random mantissa bits in `[0, 1)`.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with a uniform bounded-range sampler. A single blanket
/// [`SampleRange`] impl is keyed on this trait (mirroring upstream's
/// structure), which lets `{float}` / `{integer}` literal inference fall
/// back to `f64` / `i32` in calls like `rng.random_range(0.5..1.5)`.
pub trait SampleUniform: Sized + PartialOrd {
    /// One uniform draw from `[low, high)` (or `[low, high]` when
    /// `inclusive`); bounds are pre-validated by the caller.
    fn sample_between<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool)
        -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: Rng + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as i128 - low as i128) as u128 + u128::from(inclusive);
                // Multiply-shift bounded sampling; the tiny modulo bias of
                // plain `% span` would be harmless here, but this is just
                // as cheap.
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (low as i128 + hi as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: Rng + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                _inclusive: bool,
            ) -> Self {
                let u = <$t as FromRng>::from_rng(rng);
                low + u * (high - low)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// A range usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        T::sample_between(rng, start, end, true)
    }
}

/// The user-facing random-value interface.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly-distributed value of `T`.
    fn random<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A uniform draw from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        f64::from_rng(self) < p
    }
}

/// Construction of a deterministic generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, the recommended xoshiro seeding.
            let mut x = state;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::Rng;

    /// Random slice operations (the subset of upstream's trait in use).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly-chosen element, or `None` when empty.
        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let span = (i + 1) as u128;
                let j = (((rng.next_u64() as u128).wrapping_mul(span)) >> 64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a, R: Rng + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                return None;
            }
            let span = self.len() as u128;
            let j = (((rng.next_u64() as u128).wrapping_mul(span)) >> 64) as usize;
            self.get(j)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: usize = rng.random_range(40..120);
            assert!((40..120).contains(&v));
            let f: f64 = rng.random_range(0.5..2.0);
            assert!((0.5..2.0).contains(&f));
            let i: i32 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            lo |= f < 0.1;
            hi |= f > 0.9;
        }
        assert!(lo && hi, "draws never reached the interval edges");
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.random_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((0.2..0.3).contains(&rate), "rate {rate}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = StdRng::seed_from_u64(13);
        let v = [10, 20, 30];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
