//! Offline stand-in for the `serde_json` crate.
//!
//! Text encoding/decoding for the value-tree serde stand-in: a
//! recursive-descent JSON parser (full string escapes, surrogate pairs,
//! depth-limited) and compact + pretty writers. Behaviour mirrors
//! upstream where the workspace can observe it: non-finite floats encode
//! as `null`, floats print via Rust's shortest round-trip `Display`,
//! pretty output indents by two spaces, objects keep field order.

use serde::{Deserialize, Serialize};

pub use serde::{Error, Number, Value};

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Deserialize a `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    T::from_value(&value)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Rebuild a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_number(n: Number, out: &mut String) {
    use std::fmt::Write as _;
    match n {
        Number::PosInt(u) => {
            let _ = write!(out, "{u}");
        }
        Number::NegInt(i) => {
            let _ = write!(out, "{i}");
        }
        Number::Float(f) if !f.is_finite() => out.push_str("null"),
        Number::Float(f) => {
            // Rust's float Display is the shortest string that parses
            // back to the same f64, so text round trips are lossless.
            let _ = write!(out, "{f}");
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Recursion guard: plenty for model artifacts, small enough that a
/// hostile input cannot overflow the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a complete JSON document.
fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(self.err("recursion limit exceeded"));
        }
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value> {
        self.eat(b'[', "expected `[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value> {
        self.eat(b'{', "expected `{`")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected `:` after object key")?;
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"', "expected `\"`")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                self.eat(b'\\', "expected low surrogate")?;
                                self.eat(b'u', "expected low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 character (input is a &str, so the
                    // byte sequence is valid by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.peek().is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input was a valid &str"),
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("unterminated unicode escape"))?;
            let digit = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a') as u32 + 10,
                b'A'..=b'F' => (b - b'A') as u32 + 10,
                _ => return Err(self.err("invalid hex digit in unicode escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII by construction");
        if is_float {
            let f: f64 = text
                .parse()
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))?;
            return Ok(Value::Number(Number::Float(f)));
        }
        if let Some(stripped) = text.strip_prefix('-') {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(i)));
            }
            // Magnitude overflow: fall back to f64 like upstream.
            let f: f64 = stripped
                .parse()
                .map(|m: f64| -m)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))?;
            return Ok(Value::Number(Number::Float(f)));
        }
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::Number(Number::PosInt(u)));
        }
        let f: f64 = text
            .parse()
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))?;
        Ok(Value::Number(Number::Float(f)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip() {
        let v = Value::Object(vec![
            (
                "name".to_string(),
                Value::String("nitro \"fast\"\n".to_string()),
            ),
            (
                "xs".to_string(),
                Value::Array(vec![
                    Value::Number(Number::PosInt(1)),
                    Value::Number(Number::Float(-2.5)),
                    Value::Null,
                    Value::Bool(true),
                ]),
            ),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &f in &[
            0.1,
            1.0 / 3.0,
            1e-300,
            2.2250738585072014e-308,
            9007199254740993.1,
            -123.456e78,
        ] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, f, "text was {text}");
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert!(from_str::<f64>("null").is_err());
    }

    #[test]
    fn pretty_output_shape() {
        let v = Value::Object(vec![(
            "a".to_string(),
            Value::Array(vec![Value::Bool(false)]),
        )]);
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": [\n    false\n  ]\n}"
        );
    }

    #[test]
    fn string_escapes_decode() {
        let s: String = from_str(r#""Aé😀\t\\""#).unwrap();
        assert_eq!(s, "Aé😀\t\\");
    }

    #[test]
    fn malformed_documents_error() {
        assert!(from_str::<Value>("{\"a\": ").is_err()); // truncated
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("01x").is_err());
        assert!(from_str::<Value>("{\"a\": 1} extra").is_err());
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(from_str::<Value>(&deep).is_err());
    }

    #[test]
    fn integer_widths() {
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
        assert_eq!(from_str::<i64>("-9223372036854775808").unwrap(), i64::MIN);
        assert_eq!(from_str::<f64>("1e3").unwrap(), 1000.0);
    }
}
