//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy combinators and macros the workspace's
//! property tests use: numeric range strategies, tuples, [`Just`],
//! `prop_map` / `prop_flat_map`, `collection::{vec, hash_set}`, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros. Unlike
//! upstream there is no shrinking — a failing case reports its inputs
//! via the assertion message instead. Generation is deterministic: each
//! test function derives its RNG seed from its own name, so failures
//! reproduce run over run. Case count defaults to 64 per test and can
//! be overridden with the `PROPTEST_CASES` environment variable.

use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Failure raised by `prop_assert!` family macros inside a test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// A failed property with an explanatory message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for TestCaseError {}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { inner: self, f }
    }

    /// Build a second strategy from each generated value and draw from it
    /// (dependent generation).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMapStrategy { inner: self, f }
    }
}

/// Strategy yielding a constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMapStrategy<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// Collection sizes: an exact count or a sampled range.
pub trait SizeRange {
    /// Pick a concrete size.
    fn pick(&self, rng: &mut StdRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.random_range(self.clone())
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.random_range(self.clone())
    }
}

pub mod collection {
    //! Strategies for collections (`prop::collection::*`).

    use super::{SizeRange, StdRng, Strategy};
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Strategy for `Vec<T>` with element strategy `S` and size spec `R`.
    pub struct VecStrategy<S, R> {
        elem: S,
        size: R,
    }

    /// A vector whose length is drawn from `size` and whose elements are
    /// drawn from `elem`.
    pub fn vec<S: Strategy, R: SizeRange>(elem: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<T>`.
    pub struct HashSetStrategy<S, R> {
        elem: S,
        size: R,
    }

    /// A hash set whose target size is drawn from `size`. Duplicate draws
    /// are retried a bounded number of times, so a set may come out
    /// smaller than the target if the element domain is nearly exhausted.
    pub fn hash_set<S, R>(elem: S, size: R) -> HashSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Eq + Hash,
        R: SizeRange,
    {
        HashSetStrategy { elem, size }
    }

    impl<S, R> Strategy for HashSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Eq + Hash,
        R: SizeRange,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut out = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 10 + 100 {
                out.insert(self.elem.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// How many cases each `proptest!` test runs (`PROPTEST_CASES` env
/// override, default 64).
pub fn case_count() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// Deterministic per-test seed derived from the test function's name
/// (FNV-1a), so each test explores its own stream but reruns identically.
pub fn seed_for(test_name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The deterministic RNG for one test function (used by `proptest!` so
/// expanded code needs no direct `rand` dependency).
pub fn rng_for(test_name: &str) -> StdRng {
    StdRng::seed_from_u64(seed_for(test_name))
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running [`case_count`] random cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::rng_for(stringify!($name));
                for __case in 0..$crate::case_count() {
                    let ($($pat,)+) = (
                        $($crate::Strategy::generate(&($strat), &mut __rng),)+
                    );
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __outcome {
                        panic!("property failed on case {}: {}", __case, e);
                    }
                }
            }
        )+
    };
}

/// Assert inside `proptest!` bodies; failure aborts only the current case
/// with a message instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            l, r, stringify!($left), stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*` call sites.

    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Just, Strategy, TestCaseError};

    pub mod prop {
        //! The `prop::` path alias (`prop::collection::vec`, ...).
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<u32>> {
        prop::collection::vec(0u32..100, 1..20)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f), "f was {f}");
        }

        #[test]
        fn vec_sizes_respect_range(mut v in small_vec()) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            v.push(5);
            prop_assert!(v.len() >= 2);
        }

        #[test]
        fn flat_map_links_dimensions((n, v) in (1usize..8).prop_flat_map(|n| {
            (Just(n), prop::collection::vec(0u64..10, n))
        })) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn hash_sets_hit_target_when_domain_is_large(s in prop::collection::hash_set(0i32..1000000, 4..30)) {
            prop_assert!(s.len() >= 4 && s.len() < 30);
        }
    }

    #[test]
    fn seeds_differ_between_tests_but_not_runs() {
        assert_ne!(super::seed_for("a"), super::seed_for("b"));
        assert_eq!(super::seed_for("a"), super::seed_for("a"));
    }
}
