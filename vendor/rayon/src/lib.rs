//! Offline stand-in for the `rayon` crate.
//!
//! The workspace uses exactly one parallel pattern —
//! `slice.par_iter().map(f).collect::<Vec<_>>()` — so this crate
//! implements that pipeline directly on scoped OS threads: the input is
//! chunked across `std::thread::available_parallelism()` workers and the
//! per-chunk results are concatenated in order, preserving rayon's
//! ordering guarantee. No work stealing, no global pool; for Nitro's
//! fan-out shapes (profiling dozens-to-thousands of independent inputs)
//! even this coarse split keeps all cores busy.

/// Parallel iterator over the elements of a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

/// A mapped parallel iterator, ready to collect.
pub struct Map<'a, T, F> {
    items: &'a [T],
    f: F,
}

/// Conversion into a by-reference parallel iterator (rayon's
/// `IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by reference.
    type Item: 'a;

    /// A parallel iterator borrowing the collection.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map each element through `f` (evaluated in parallel at collect).
    pub fn map<R, F>(self, f: F) -> Map<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        Map {
            items: self.items,
            f,
        }
    }
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> Map<'a, T, F> {
    /// Evaluate the map across worker threads and collect the results in
    /// input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let n = self.items.len();
        let workers = std::thread::available_parallelism()
            .map_or(1, |p| p.get())
            .min(n);
        if workers <= 1 {
            return self.items.iter().map(&self.f).collect();
        }
        let chunk = n.div_ceil(workers);
        let f = &self.f;
        let parts: Vec<Vec<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk)
                .map(|c| scope.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rayon worker panicked"))
                .collect()
        });
        parts.into_iter().flatten().collect()
    }
}

pub mod prelude {
    //! Glob-import surface matching `rayon::prelude::*` call sites.
    pub use crate::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn works_on_slices_and_tiny_inputs() {
        let v = [3.5f64];
        let out: Vec<f64> = v[..].par_iter().map(|&x| x + 1.0).collect();
        assert_eq!(out, vec![4.5]);
        let empty: Vec<i32> = Vec::new();
        let out: Vec<i32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn closures_may_borrow_environment() {
        let offset = 10usize;
        let v: Vec<usize> = (0..100).collect();
        let out: Vec<usize> = v.par_iter().map(|&x| x + offset).collect();
        assert_eq!(out[99], 109);
    }
}
