//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::Mutex` behind parking_lot's panic-free `lock()`
//! signature (no `Result`, poisoning is ignored) — the only API surface
//! the workspace uses.

use std::sync::MutexGuard as StdMutexGuard;

/// Guard releasing the lock on drop.
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

/// A mutex whose `lock` never fails: a poisoned std mutex (a panic while
/// the lock was held) is recovered instead of propagated, matching
/// parking_lot's semantics of not having poisoning at all.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread until it is free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8000);
    }
}
