//! Offline stand-in for the `criterion` crate.
//!
//! Provides just enough of the criterion harness API for the workspace's
//! `harness = false` bench targets to compile and run: `Criterion`,
//! benchmark groups, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros. There is no statistics engine — each
//! benchmark runs a small fixed number of timed iterations and prints a
//! mean per-iteration time, which keeps `cargo test` (which executes
//! `harness = false` bench binaries) fast while still exercising every
//! benchmarked code path. Passing `--test` (as `cargo test` does) runs
//! each benchmark exactly once as a smoke test.

use std::time::Instant;

/// How many timed iterations to run per benchmark (smoke mode: 1).
fn iterations(smoke: bool) -> u64 {
    if smoke {
        1
    } else {
        std::env::var("CRITERION_ITERATIONS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(10)
    }
}

/// Entry point handed to benchmark functions.
pub struct Criterion {
    smoke: bool,
}

impl Criterion {
    /// Build from process arguments (`--test` selects smoke mode).
    pub fn from_args() -> Self {
        Self {
            smoke: std::env::args().any(|a| a == "--test"),
        }
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: iterations(self.smoke),
            elapsed_ns: 0.0,
            measured: 0,
        };
        f(&mut b);
        b.report(name);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks (criterion's `BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{name}", self.name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Finish the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Timer passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed_ns: f64,
    measured: u64,
}

impl Bencher {
    /// Time `routine`, preventing the result from being optimised away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iters {
            let start = Instant::now();
            let out = routine();
            self.elapsed_ns += start.elapsed().as_nanos() as f64;
            self.measured += 1;
            std::hint::black_box(out);
        }
    }

    fn report(&self, name: &str) {
        if self.measured == 0 {
            println!("{name}: no iterations measured");
        } else {
            println!(
                "{name}: {:.1} ns/iter (n={})",
                self.elapsed_ns / self.measured as f64,
                self.measured
            );
        }
    }
}

/// Declare a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
    ($group:ident; $($rest:tt)*) => {
        $crate::criterion_group!($group, $($rest)*);
    };
}

/// Declare the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
        }
    };
}
