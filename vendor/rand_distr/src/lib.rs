//! Offline stand-in for the `rand_distr` crate.
//!
//! Implements the three distributions the benchmark-input generators
//! draw from — [`Normal`] (Box–Muller), [`Exp`] (inverse CDF) and
//! [`Zipf`] (rejection sampling) — behind the upstream
//! [`Distribution`] trait shape.

use rand::Rng;

/// A distribution over values of `T` sampled with an external RNG.
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error for invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl core::fmt::Display for ParamError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for ParamError {}

/// 53-bit uniform draw in `(0, 1]`, safe to pass through `ln`.
fn unit_open<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    1.0 - u // (0, 1]
}

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Create from mean and standard deviation (`std_dev >= 0`, finite).
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, ParamError> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(ParamError("normal std_dev must be finite and non-negative"));
        }
        Ok(Self { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller; one draw per call keeps the generator stateless.
        let u1 = unit_open(rng);
        let u2 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// Exponential distribution with rate `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Create from rate `lambda > 0`.
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        // NaN is rejected by the `!is_finite()` arm.
        if lambda <= 0.0 || !lambda.is_finite() {
            return Err(ParamError("exp rate must be finite and positive"));
        }
        Ok(Self { lambda })
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        -unit_open(rng).ln() / self.lambda
    }
}

/// Zipf distribution over `{1, 2, …, n}` with exponent `s`.
///
/// Sampled by the standard two-region rejection scheme (uniform head,
/// Pareto tail), which stays O(1) for any `n`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zipf {
    n: f64,
    s: f64,
    t: f64,
}

impl Zipf {
    /// Create over `{1, …, n}` (n ≥ 1) with exponent `s > 0`.
    pub fn new(n: f64, s: f64) -> Result<Self, ParamError> {
        // NaN is rejected by the `!is_finite()` arms.
        if n < 1.0 || !n.is_finite() {
            return Err(ParamError("zipf n must be >= 1"));
        }
        if s <= 0.0 || !s.is_finite() {
            return Err(ParamError("zipf exponent must be positive"));
        }
        let n = n.floor();
        // Normalizer of the dominating density.
        let t = if (s - 1.0).abs() < 1e-12 {
            1.0 + n.ln()
        } else {
            (n.powf(1.0 - s) - s) / (1.0 - s)
        };
        Ok(Self { n, s, t })
    }

    /// Inverse of the dominating CDF (uniform head over `(0, 1]`, then
    /// the `x^{-s}` tail), mapping `p ∈ (0, 1]` to `(0, n]`.
    fn inv_cdf(&self, p: f64) -> f64 {
        let pt = p * self.t;
        if pt <= 1.0 {
            pt
        } else if (self.s - 1.0).abs() < 1e-12 {
            (pt - 1.0).exp()
        } else {
            (pt * (1.0 - self.s) + self.s).powf(1.0 / (1.0 - self.s))
        }
    }
}

impl Distribution<f64> for Zipf {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Hörmann–Derflinger rejection-inversion: invert the envelope,
        // round down to the next rank, accept with pmf/envelope ratio.
        loop {
            let x = self.inv_cdf(unit_open(rng));
            let k = (x + 1.0).floor().min(self.n);
            let mut ratio = k.powf(-self.s);
            if k > 1.0 {
                ratio *= x.powf(self.s);
            }
            if unit_open(rng) < ratio {
                return k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_match() {
        let d = Normal::new(3.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn exp_mean_matches_rate() {
        let d = Exp::new(2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let n = 50_000;
        let mean = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert!((0..100).all(|_| d.sample(&mut rng) >= 0.0));
    }

    #[test]
    fn zipf_stays_in_support_and_skews_low() {
        let d = Zipf::new(256.0, 1.3).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mut ones = 0usize;
        for _ in 0..n {
            let v = d.sample(&mut rng);
            assert!((1.0..=256.0).contains(&v), "out of support: {v}");
            assert_eq!(v.fract(), 0.0, "non-integral rank: {v}");
            if v == 1.0 {
                ones += 1;
            }
        }
        // Rank 1 dominates a Zipf(1.3): well over a quarter of the mass.
        assert!(
            ones as f64 / n as f64 > 0.25,
            "p(1) = {}",
            ones as f64 / n as f64
        );
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Exp::new(0.0).is_err());
        assert!(Zipf::new(0.5, 1.0).is_err());
        assert!(Zipf::new(10.0, 0.0).is_err());
    }
}
