//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! Generates `Serialize` / `Deserialize` impls against the value-tree
//! traits of the vendored `serde` crate. The parser is hand-rolled over
//! `proc_macro::TokenTree` (no syn/quote available offline) and supports
//! exactly the shapes this workspace derives on: non-generic structs
//! with named fields and non-generic enums with unit, tuple, or
//! struct-like variants. `#[serde(skip)]` and `#[serde(default)]` are
//! honoured; any other serde attribute is a compile-time panic rather
//! than a silently wrong encoding.
//!
//! Encodings match upstream serde_json: structs become objects, unit
//! enum variants become strings, and non-unit variants are externally
//! tagged (`{"Variant": ...}`).

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;
use std::iter::Peekable;

/// One named field of a struct or struct-like enum variant.
struct Field {
    name: String,
    skip: bool,
    default: bool,
}

/// The shape of one enum variant.
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Body {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    body: Body,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("derived Serialize impl should parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("derived Deserialize impl should parse")
}

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

/// Consume leading attributes, returning whether `#[serde(skip)]` /
/// `#[serde(default)]` were among them. Unknown serde attributes panic.
fn take_attrs(it: &mut Tokens) -> (bool, bool) {
    let (mut skip, mut default) = (false, false);
    while matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        it.next();
        let Some(TokenTree::Group(attr)) = it.next() else {
            panic!("expected [...] after # in attribute");
        };
        let mut inner = attr.stream().into_iter();
        if let Some(TokenTree::Ident(id)) = inner.next() {
            if id.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.next() {
                    for tok in args.stream() {
                        if let TokenTree::Ident(word) = tok {
                            match word.to_string().as_str() {
                                "skip" => skip = true,
                                "default" => default = true,
                                other => panic!(
                                    "unsupported serde attribute `{other}` (offline serde_derive \
                                     supports only `skip` and `default`)"
                                ),
                            }
                        }
                    }
                }
            }
        }
    }
    (skip, default)
}

/// Consume an optional `pub` / `pub(...)` visibility.
fn take_visibility(it: &mut Tokens) {
    if matches!(it.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        it.next();
        if matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            it.next();
        }
    }
}

/// Skip one field type: consume tokens until a comma at angle-bracket
/// depth zero (commas inside `Vec<(A, B)>` are hidden inside groups;
/// commas inside `HashMap<K, V>` are guarded by the depth counter).
fn skip_type(it: &mut Tokens) {
    let mut depth = 0i64;
    while let Some(tok) = it.peek() {
        if depth == 0 {
            if let TokenTree::Punct(p) = tok {
                if p.as_char() == ',' {
                    it.next();
                    return;
                }
            }
        }
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
            _ => {}
        }
    }
}

/// Parse `name: Type, ...` named fields from a brace-group stream.
fn parse_fields(stream: TokenStream) -> Vec<Field> {
    let mut it = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let (skip, default) = take_attrs(&mut it);
        take_visibility(&mut it);
        let name = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => panic!("expected field name, found `{other}`"),
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        skip_type(&mut it);
        fields.push(Field {
            name,
            skip,
            default,
        });
    }
    fields
}

/// Count elements of a tuple-variant payload (top-level commas, ignoring
/// a trailing one).
fn tuple_arity(stream: TokenStream) -> usize {
    let mut depth = 0i64;
    let mut commas = 0usize;
    let mut trailing = false;
    let mut any = false;
    for tok in stream {
        any = true;
        trailing = false;
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                commas += 1;
                trailing = true;
            }
            _ => {}
        }
    }
    if !any {
        0
    } else {
        commas + 1 - usize::from(trailing)
    }
}

/// Parse the variants of an enum body.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut it = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        take_attrs(&mut it);
        let name = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            Some(other) => panic!("expected variant name, found `{other}`"),
        };
        let kind = match it.peek().cloned() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                it.next();
                VariantKind::Tuple(tuple_arity(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                it.next();
                VariantKind::Struct(parse_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => {
                variants.push(Variant { name, kind });
                break;
            }
            Some(other) => panic!("expected `,` after variant, found `{other}`"),
        }
        variants.push(Variant { name, kind });
    }
    variants
}

/// Parse the derive input into an [`Item`].
fn parse_item(input: TokenStream) -> Item {
    let mut it = input.into_iter().peekable();
    let (_, _) = take_attrs(&mut it);
    take_visibility(&mut it);
    let keyword = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("offline serde_derive does not support generic type `{name}`");
    }
    let Some(TokenTree::Group(body)) = it.next() else {
        panic!("offline serde_derive requires a braced body on `{name}` (no tuple/unit structs)");
    };
    if body.delimiter() != Delimiter::Brace {
        panic!("offline serde_derive requires named fields on `{name}`");
    }
    let body = match keyword.as_str() {
        "struct" => Body::Struct(parse_fields(body.stream())),
        "enum" => Body::Enum(parse_variants(body.stream())),
        other => panic!("cannot derive serde impls for `{other} {name}`"),
    };
    Item { name, body }
}

/// Attributes prepended to every generated impl block.
const IMPL_ATTRS: &str =
    "#[automatically_derived]\n#[allow(unused_mut, unused_variables, clippy::all)]\n";

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let mut out = String::new();
    let _ = write!(
        out,
        "{IMPL_ATTRS}impl ::serde::Serialize for {name} {{\n    \
         fn to_value(&self) -> ::serde::Value {{\n"
    );
    match &item.body {
        Body::Struct(fields) => {
            out.push_str(&serialize_fields_to_object(fields, "self.", "        "));
            out.push_str("        ::serde::Value::Object(__fields)\n");
        }
        Body::Enum(variants) => {
            out.push_str("        match self {\n");
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = writeln!(
                            out,
                            "            Self::{vname} => \
                             ::serde::Value::String(\"{vname}\".to_string()),"
                        );
                    }
                    VariantKind::Tuple(1) => {
                        let _ = writeln!(
                            out,
                            "            Self::{vname}(__f0) => \
                             ::serde::Value::Object(::std::vec![(\"{vname}\".to_string(), \
                             ::serde::Serialize::to_value(__f0))]),"
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        let _ = writeln!(
                            out,
                            "            Self::{vname}({}) => \
                             ::serde::Value::Object(::std::vec![(\"{vname}\".to_string(), \
                             ::serde::Value::Array(::std::vec![{}]))]),",
                            binds.join(", "),
                            elems.join(", ")
                        );
                    }
                    VariantKind::Struct(fields) => {
                        let bound: Vec<&str> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| f.name.as_str())
                            .collect();
                        let rest = if bound.len() < fields.len() {
                            ", .."
                        } else {
                            ""
                        };
                        let _ = writeln!(
                            out,
                            "            Self::{vname} {{ {}{rest} }} => {{",
                            bound.join(", ")
                        );
                        out.push_str(&serialize_fields_to_object(fields, "", "                "));
                        let _ = writeln!(
                            out,
                            "                \
                             ::serde::Value::Object(::std::vec![(\"{vname}\".to_string(), \
                             ::serde::Value::Object(__fields))])\n            }}"
                        );
                    }
                }
            }
            out.push_str("        }\n");
        }
    }
    out.push_str("    }\n}\n");
    out
}

/// Emit `let mut __fields = ...; __fields.push(...)` lines for the
/// non-skipped fields, reading each through `{access}{field}`.
fn serialize_fields_to_object(fields: &[Field], access: &str, indent: &str) -> String {
    let mut out = format!(
        "{indent}let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();\n"
    );
    for f in fields.iter().filter(|f| !f.skip) {
        let fname = &f.name;
        // In struct context fields are read via `&self.name`; in a match
        // arm the bindings are already references.
        let amp = if access.is_empty() { "" } else { "&" };
        let _ = writeln!(
            out,
            "{indent}__fields.push((\"{fname}\".to_string(), \
             ::serde::Serialize::to_value({amp}{access}{fname})));"
        );
    }
    out
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let mut out = String::new();
    let _ = write!(
        out,
        "{IMPL_ATTRS}impl ::serde::Deserialize for {name} {{\n    \
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n"
    );
    match &item.body {
        Body::Struct(fields) => {
            let _ = writeln!(
                out,
                "        let __obj = match __v.as_object() {{\n            \
                 ::std::option::Option::Some(o) => o,\n            \
                 ::std::option::Option::None => return ::std::result::Result::Err(\
                 ::serde::Error::expected(\"an object for struct {name}\", __v)),\n        }};"
            );
            let _ = writeln!(out, "        ::std::result::Result::Ok(Self {{");
            out.push_str(&deserialize_field_inits(fields, name, "            "));
            out.push_str("        })\n");
        }
        Body::Enum(variants) => {
            out.push_str("        match __v {\n");
            // Unit variants arrive as bare strings.
            out.push_str("            ::serde::Value::String(__s) => match __s.as_str() {\n");
            for v in variants {
                if matches!(v.kind, VariantKind::Unit) {
                    let vname = &v.name;
                    let _ = writeln!(
                        out,
                        "                \"{vname}\" => ::std::result::Result::Ok(Self::{vname}),"
                    );
                }
            }
            let _ = writeln!(
                out,
                "                __other => ::std::result::Result::Err(\
                 ::serde::Error::unknown_variant(\"{name}\", __other)),\n            }},"
            );
            // Non-unit variants arrive externally tagged.
            out.push_str(
                "            ::serde::Value::Object(__o) if __o.len() == 1 => {\n                \
                 let (__tag, __inner) = &__o[0];\n                match __tag.as_str() {\n",
            );
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {}
                    VariantKind::Tuple(1) => {
                        let _ = writeln!(
                            out,
                            "                    \"{vname}\" => ::std::result::Result::Ok(\
                             Self::{vname}(::serde::Deserialize::from_value(__inner)?)),"
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__e{i}")).collect();
                        let reads: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Deserialize::from_value({b})?"))
                            .collect();
                        let _ = writeln!(
                            out,
                            "                    \"{vname}\" => match __inner.as_array() {{\n                        \
                             ::std::option::Option::Some([{}]) => ::std::result::Result::Ok(\
                             Self::{vname}({})),\n                        \
                             _ => ::std::result::Result::Err(::serde::Error::expected(\
                             \"an array of length {n} for variant {name}::{vname}\", __inner)),\n                    \
                             }},",
                            binds.join(", "),
                            reads.join(", ")
                        );
                    }
                    VariantKind::Struct(fields) => {
                        let _ = writeln!(
                            out,
                            "                    \"{vname}\" => {{\n                        \
                             let __obj = match __inner.as_object() {{\n                            \
                             ::std::option::Option::Some(o) => o,\n                            \
                             ::std::option::Option::None => return ::std::result::Result::Err(\
                             ::serde::Error::expected(\"an object for variant {name}::{vname}\", \
                             __inner)),\n                        }};\n                        \
                             ::std::result::Result::Ok(Self::{vname} {{"
                        );
                        out.push_str(&deserialize_field_inits(
                            fields,
                            &format!("{name}::{vname}"),
                            "                            ",
                        ));
                        out.push_str("                        })\n                    }\n");
                    }
                }
            }
            let _ = writeln!(
                out,
                "                    __other => ::std::result::Result::Err(\
                 ::serde::Error::unknown_variant(\"{name}\", __other)),\n                \
                 }}\n            }},"
            );
            let _ = writeln!(
                out,
                "            __other => ::std::result::Result::Err(::serde::Error::expected(\
                 \"a string or single-key object for enum {name}\", __other)),\n        }}"
            );
        }
    }
    out.push_str("    }\n}\n");
    out
}

/// Emit `field: <expr>,` initializers for a struct or struct-variant
/// constructor, honouring skip/default.
fn deserialize_field_inits(fields: &[Field], ty_label: &str, indent: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let fname = &f.name;
        let expr = if f.skip {
            "::std::default::Default::default()".to_string()
        } else if f.default {
            format!("::serde::__field_or_default(__obj, \"{fname}\", \"{ty_label}\")?")
        } else {
            format!("::serde::__field(__obj, \"{fname}\", \"{ty_label}\")?")
        };
        let _ = writeln!(out, "{indent}{fname}: {expr},");
    }
    out
}
