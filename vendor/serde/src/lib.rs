//! Offline stand-in for the `serde` crate.
//!
//! Instead of upstream serde's visitor architecture, this implementation
//! round-trips every serializable type through an in-memory JSON value
//! tree ([`Value`]): `Serialize` renders a type *to* a [`Value`] and
//! `Deserialize` rebuilds it *from* one. The companion `serde_json`
//! stand-in handles the text encoding, and the `serde_derive` stand-in
//! generates these impls for the workspace's concrete structs and enums
//! with upstream-compatible JSON shapes (externally tagged enums,
//! objects with field names, `#[serde(skip)]` honoured).

pub use serde_derive::{Deserialize, Serialize};

/// A JSON number: unsigned, signed, or floating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating-point number (may be non-finite in memory; encoders
    /// write non-finite values as `null`, matching upstream serde_json).
    Float(f64),
}

impl Number {
    /// The number as an `f64` (lossy for very large integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(u) => u as f64,
            Number::NegInt(i) => i as f64,
            Number::Float(f) => f,
        }
    }
}

/// An in-memory JSON document.
///
/// Objects preserve insertion order (`Vec` of pairs rather than a map),
/// so encoded artifacts keep their field order stable across round trips.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the key/value pairs if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Borrow the elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow the text if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Look up a field by name, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// A short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "a boolean",
            Value::Number(_) => "a number",
            Value::String(_) => "a string",
            Value::Array(_) => "an array",
            Value::Object(_) => "an object",
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with a caller-supplied message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// "expected X, found Y" mismatch against a concrete value.
    pub fn expected(what: &str, got: &Value) -> Self {
        Self::custom(format!("expected {what}, found {}", got.kind()))
    }

    /// A required struct field was absent.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Self::custom(format!("missing field `{field}` while deserializing {ty}"))
    }

    /// An enum tag did not name a known variant.
    pub fn unknown_variant(ty: &str, variant: &str) -> Self {
        Self::custom(format!("unknown variant `{variant}` for enum {ty}"))
    }

    /// Wrap with the field being deserialized, for error context.
    pub fn in_field(self, ty: &str, field: &str) -> Self {
        Self::custom(format!("{ty}.{field}: {}", self.msg))
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types renderable to a JSON [`Value`].
pub trait Serialize {
    /// Render to an in-memory JSON value.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from an in-memory JSON value.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Fetch and deserialize a required object field (used by derived code).
pub fn __field<T: Deserialize>(obj: &[(String, Value)], name: &str, ty: &str) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| e.in_field(ty, name)),
        None => Err(Error::missing_field(ty, name)),
    }
}

/// Fetch an optional object field, falling back to `Default` (used by
/// derived code for `#[serde(default)]`).
pub fn __field_or_default<T: Deserialize + Default>(
    obj: &[(String, Value)],
    name: &str,
    ty: &str,
) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| e.in_field(ty, name)),
        None => Ok(T::default()),
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::expected("a boolean", other)),
        }
    }
}

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let out = match v {
                    Value::Number(Number::PosInt(u)) => <$t>::try_from(*u).ok(),
                    Value::Number(Number::NegInt(_)) => None,
                    other => return Err(Error::expected("an unsigned integer", other)),
                };
                out.ok_or_else(|| Error::custom(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_serde_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 {
                    Value::Number(Number::PosInt(x as u64))
                } else {
                    Value::Number(Number::NegInt(x))
                }
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let out = match v {
                    Value::Number(Number::PosInt(u)) => <$t>::try_from(*u).ok(),
                    Value::Number(Number::NegInt(i)) => <$t>::try_from(*i).ok(),
                    other => return Err(Error::expected("an integer", other)),
                };
                out.ok_or_else(|| Error::custom(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_serde_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            other => Err(Error::expected("a number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::expected("a string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::expected("an array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(Error::expected("an array of length 2", v)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_array() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(Error::expected("an array of length 3", v)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<Option<u8>> = vec![Some(1), None];
        assert_eq!(Vec::<Option<u8>>::from_value(&v.to_value()).unwrap(), v);
    }

    #[test]
    fn type_mismatches_error() {
        assert!(u8::from_value(&Value::Number(Number::PosInt(300))).is_err());
        assert!(u64::from_value(&Value::Number(Number::NegInt(-1))).is_err());
        assert!(String::from_value(&Value::Null).is_err());
        assert!(f64::from_value(&Value::Null).is_err());
    }

    #[test]
    fn integers_widen_into_f64() {
        assert_eq!(
            f64::from_value(&Value::Number(Number::PosInt(3))).unwrap(),
            3.0
        );
        assert_eq!(
            f64::from_value(&Value::Number(Number::NegInt(-3))).unwrap(),
            -3.0
        );
    }
}
