//! The paper's Figure 3, transliterated: an external "tuning script" that
//! globs `.mtx` training matrices, sets tuning properties, and runs the
//! autotuner — producing a persisted model the library loads at runtime.
//!
//! ```text
//! cargo run --release --example tuning_script
//! ```
//!
//! Figure 3 (Python)                     | here (Rust)
//! --------------------------------------|---------------------------------
//! `spmv = code_variant("spmv", 6)`      | `build_code_variant(...)`
//! `spmv.classifier = svm_classifier()`  | `policy_mut().classifier = ...`
//! `spmv.constraints = True`             | `policy_mut().constraints = true`
//! `spmv.parallel_feature_evaluation`    | `policy_mut().parallel_feature_evaluation`
//! `spmv.async_feature_eval = False`     | `policy_mut().async_feature_eval`
//! `glob.glob("inputs/training/*.mtx")`  | `io::load_collection(dir)`
//! `tuner.tune([spmv])`                  | `Autotuner::tune(&mut spmv, ...)`

use nitro::core::{ClassifierConfig, Context};
use nitro::simt::DeviceConfig;
use nitro::sparse::{collection, io, spmv};
use nitro::tuner::Autotuner;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workdir = std::env::temp_dir().join(format!("nitro-tuning-script-{}", std::process::id()));
    let mtx_dir = workdir.join("inputs/training");
    let model_dir = workdir.join("models");

    // Stage 0 (offstage in the paper): materialize training matrices as
    // .mtx files, as if downloaded from the UFL collection.
    let (train, _) = collection::spmv_small_sets(0xF163);
    io::export_collection(&train, &mtx_dir)?;
    println!(
        "wrote {} training matrices to {}",
        train.len(),
        mtx_dir.display()
    );

    // --- The tuning script proper (paper Figure 3) ---
    let ctx = Context::with_model_dir(&model_dir);
    let mut spmv = spmv::build_code_variant(&ctx, &DeviceConfig::fermi_c2050());

    // Set tuning properties for spmv.
    spmv.policy_mut().classifier = ClassifierConfig::Svm {
        c: None,
        gamma: None,
        grid_search: true,
        cache_bytes: None,
    };
    spmv.policy_mut().constraints = true;
    spmv.policy_mut().parallel_feature_evaluation = false;
    spmv.policy_mut().async_feature_eval = false;

    // Set global tuning properties: the training inputs.
    let matrices = io::load_collection(&mtx_dir)?; // glob("inputs/training/*.mtx")
    println!("loaded {} matrices back from disk", matrices.len());

    // Tune.
    let tuner = Autotuner {
        save_model: true,
        ..Default::default()
    };
    let report = tuner.tune(&mut spmv, &matrices)?;
    println!(
        "tuned: {} inputs, per-class counts {:?}, cv accuracy {:?}",
        report.training_inputs, report.class_counts, report.cv_accuracy
    );
    println!(
        "model written to {}",
        ctx.model_path("spmv").unwrap().display()
    );

    // --- Deployment: the application loads the model and dispatches. ---
    let mut deployed = spmv::build_code_variant(&ctx, &DeviceConfig::fermi_c2050());
    deployed.load_model()?;
    let (_, test) = collection::spmv_small_sets(0xF163);
    for input in test.iter().take(4) {
        let outcome = deployed.call(input)?;
        println!("  {:<24} -> {}", input.name, outcome.variant_name);
    }

    std::fs::remove_dir_all(workdir).ok();
    Ok(())
}
