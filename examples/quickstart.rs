//! Quickstart: tune a two-variant function in ~30 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The "computation" is synthetic — variant A is fast on small inputs,
//! variant B on large ones — but the workflow is exactly the paper's:
//! register variants and features, hand the autotuner training inputs,
//! and call the tuned function on unseen data.

use nitro::core::{CodeVariant, Context, FnFeature, FnVariant};
use nitro::tuner::Autotuner;

fn main() {
    // 1. Create a tuning context and a code_variant (paper Table I).
    let ctx = Context::new();
    let mut compute = CodeVariant::<Vec<f64>>::new("compute", &ctx);

    // 2. Register functionally equivalent variants. They return their
    //    objective value — by convention, simulated time in nanoseconds.
    compute.add_variant(FnVariant::new("linear-scan", |v: &Vec<f64>| {
        40.0 + v.len() as f64 * 1.0
    }));
    compute.add_variant(FnVariant::new("blocked", |v: &Vec<f64>| {
        2_000.0 + v.len() as f64 * 0.25
    }));
    compute.set_default(0);

    // 3. Register the meta-information: input features.
    compute.add_input_feature(FnFeature::new("n", |v: &Vec<f64>| v.len() as f64));

    // 4. Train on representative inputs (exhaustive search + SVM).
    let training: Vec<Vec<f64>> = (1..40).map(|i| vec![0.0; i * 128]).collect();
    let report = Autotuner::new()
        .tune(&mut compute, &training)
        .expect("tuning succeeds");
    println!(
        "trained on {} inputs (classes: {:?}, cv accuracy: {:?})",
        report.training_inputs, report.class_counts, report.cv_accuracy
    );

    // 5. Call the tuned function on unseen inputs: Nitro picks a variant.
    for n in [64usize, 1_024, 2_048, 4_096] {
        let input = vec![0.0; n];
        let outcome = compute.call(&input).expect("dispatch succeeds");
        println!(
            "n = {:>5}  ->  {:<12} ({:.0} ns simulated)",
            n, outcome.variant_name, outcome.objective
        );
    }

    // The crossover (40 + n = 2000 + n/4 at n ≈ 2613) is learned, not
    // hard-coded.
    let stats = compute.stats();
    println!(
        "dispatches: {} (per-variant: {:?})",
        stats.calls, stats.selections
    );
}
