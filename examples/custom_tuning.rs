//! A tour of the tuning interface (paper Table II): classifier choice,
//! incremental tuning, constraints, feature subsets, and parallel /
//! asynchronous feature evaluation.
//!
//! ```text
//! cargo run --release --example custom_tuning
//! ```

use std::sync::Arc;

use nitro::core::{
    ClassifierConfig, CodeVariant, Context, FnConstraint, FnFeature, FnVariant, StoppingCriterion,
};
use nitro::ml::TreeParams;
use nitro::tuner::{Autotuner, ProfileTable};

/// A toy input: a buffer plus a "mode" flag the constraint consults.
#[derive(Debug)]
struct Input {
    data: Vec<f64>,
    gpu_resident: bool,
}

fn build(ctx: &Context) -> CodeVariant<Input> {
    let mut cv = CodeVariant::new("custom", ctx);
    cv.add_variant(FnVariant::new("host", |i: &Input| {
        100.0 + i.data.len() as f64
    }));
    cv.add_variant(FnVariant::new("device", |i: &Input| {
        5_000.0 + i.data.len() as f64 * 0.1
    }));
    cv.set_default(0);
    cv.add_input_feature(FnFeature::new("n", |i: &Input| i.data.len() as f64));
    cv.add_input_feature(FnFeature::with_cost(
        "mean",
        |i: &Input| i.data.iter().sum::<f64>() / i.data.len().max(1) as f64,
        |i: &Input| i.data.len() as f64 * 0.5,
    ));
    // The "device" variant is only legal for GPU-resident buffers.
    cv.add_constraint(1, FnConstraint::new("resident", |i: &Input| i.gpu_resident))
        .expect("variant 1 is registered");
    cv
}

fn inputs(n: usize) -> Vec<Input> {
    (1..=n)
        .map(|i| Input {
            data: vec![1.0; i * 700],
            gpu_resident: i % 3 != 0,
        })
        .collect()
}

fn main() {
    let ctx = Context::new();
    let train = inputs(30);

    // --- Option 1: classifier choice (`spmv.classifier = ...`). ---
    for config in [
        ("svm+grid", ClassifierConfig::default()),
        ("knn", ClassifierConfig::Knn { k: 3 }),
        ("tree", ClassifierConfig::Tree(TreeParams::default())),
    ] {
        let mut cv = build(&ctx);
        cv.policy_mut().classifier = config.1.clone();
        let report = Autotuner::new()
            .tune(&mut cv, &train)
            .expect("tuning succeeds");
        println!(
            "classifier {:<9} -> class counts {:?}, cv accuracy {:?}",
            config.0, report.class_counts, report.cv_accuracy
        );
    }

    // --- Option 2: incremental tuning (`itune(iter | acc)`). ---
    let mut cv = build(&ctx);
    cv.policy_mut().classifier = ClassifierConfig::Knn { k: 3 };
    cv.policy_mut().incremental = Some(StoppingCriterion::Iterations(6));
    let report = Autotuner::new()
        .tune(&mut cv, &train)
        .expect("tuning succeeds");
    println!(
        "\nincremental: profiled only {}/{} inputs ({} BvSB queries)",
        report.profiled_inputs, report.training_inputs, report.incremental_iterations
    );

    // --- Option 3: constraints on/off. ---
    let mut constrained = build(&ctx);
    constrained.policy_mut().classifier = ClassifierConfig::Knn { k: 1 };
    Autotuner::new().tune(&mut constrained, &train).unwrap();
    let non_resident = Input {
        data: vec![1.0; 20_300],
        gpu_resident: false,
    };
    let with = constrained.call(&non_resident).unwrap();
    constrained.policy_mut().constraints = false;
    let without = constrained.call(&non_resident).unwrap();
    println!(
        "\nconstraints on: {} (fell back: {}); constraints off: {}",
        with.variant_name, with.fell_back_to_default, without.variant_name
    );

    // --- Option 4: feature subsets (Figure 8's knob). ---
    let mut cv = build(&ctx);
    cv.policy_mut().classifier = ClassifierConfig::Knn { k: 3 };
    cv.policy_mut().feature_subset = Some(vec![0]); // drop the O(n) "mean"
    let table = ProfileTable::build(&cv, &train);
    println!(
        "\nfeature subset {:?}: mean feature cost {:.0} ns/input",
        cv.active_feature_names(),
        table.feature_cost_ns.iter().sum::<f64>() / table.len() as f64
    );

    // --- Option 5: parallel + asynchronous feature evaluation. ---
    let mut cv = build(&ctx);
    cv.policy_mut().classifier = ClassifierConfig::Knn { k: 3 };
    Autotuner::new().tune(&mut cv, &train).unwrap();
    cv.policy_mut().parallel_feature_evaluation = true;
    cv.policy_mut().async_feature_eval = true;
    let big = Arc::new(Input {
        data: vec![2.0; 50_000],
        gpu_resident: true,
    });
    cv.fix_inputs(Arc::clone(&big)); // features start in the background
                                     // ... overlap other work here (paper §III-C) ...
    let outcome = cv.call_fixed().unwrap(); // implicit barrier + dispatch
    println!(
        "\nasync call selected {} (feature cost charged: {:.0} ns, max not sum — parallel)",
        outcome.variant_name, outcome.feature_cost_ns
    );
}
