//! Resilient service: what a production tuning service does when things
//! go wrong — a missing model artifact, then a variant outage.
//!
//! ```text
//! cargo run --release --example resilient_service
//! ```
//!
//! Demonstrates the `nitro-guard` layer end to end:
//!
//! 1. **Degraded mode** — wrapping an untuned `code_variant` yields a
//!    guard that reports `Degraded` and serves the default variant
//!    instead of erroring.
//! 2. **Recovery by install** — tuning and installing the artifact
//!    through the audited path flips the guard back to `Healthy`.
//! 3. **Quarantine** — an injected outage makes the model's favourite
//!    variant panic; the guard retries, trips its circuit breaker and
//!    falls back to the next candidate while the outage lasts.
//! 4. **Half-open probing** — after the call-counted cooldown, the guard
//!    probes the quarantined variant and closes the breaker once the
//!    outage is over.

use nitro::core::{CodeVariant, Context, FnFeature, FnVariant};
use nitro::guard::{inject_failures, GuardPolicy, GuardedVariant};
use nitro::simt::silence_injected_panics;
use nitro::tuner::Autotuner;

fn service() -> (Context, CodeVariant<Vec<f64>>) {
    let ctx = Context::new();
    let mut compute = CodeVariant::<Vec<f64>>::new("compute", &ctx);
    compute.add_variant(FnVariant::new("linear-scan", |v: &Vec<f64>| {
        40.0 + v.len() as f64 * 1.0
    }));
    compute.add_variant(FnVariant::new("blocked", |v: &Vec<f64>| {
        2_000.0 + v.len() as f64 * 0.25
    }));
    compute.set_default(0);
    compute.add_input_feature(FnFeature::new("n", |v: &Vec<f64>| v.len() as f64));
    (ctx, compute)
}

fn main() {
    // The injected panics below are caught by the guard; keep their
    // backtraces out of the demo output.
    silence_injected_panics();
    let (_ctx, compute) = service();

    // Aggressive thresholds so every state transition shows up in a
    // short demo; production policies would be more patient.
    let policy = GuardPolicy {
        retry_budget: 1,
        quarantine_threshold: 2,
        cooldown_calls: 3,
        half_open_probes: 1,
        ..GuardPolicy::default()
    };

    // 1. No model artifact exists yet: the guard starts degraded and
    //    serves the default variant rather than failing the service.
    let mut guard = GuardedVariant::new(compute, policy).expect("policy passes audit");
    println!("health at startup: {:?}", guard.health());
    let input = vec![0.0; 8_192];
    let inv = guard.call(&input).expect("degraded dispatch still serves");
    println!(
        "degraded dispatch: n = {:>5} -> {:<12} (default, no model)\n",
        input.len(),
        inv.variant_name
    );

    // 2. Tune and install the artifact through the audited path.
    let training: Vec<Vec<f64>> = (1..40).map(|i| vec![0.0; i * 128]).collect();
    Autotuner::new()
        .tune(guard.inner_mut(), &training)
        .expect("tuning succeeds");
    let artifact = guard.inner().export_artifact().expect("model was trained");
    guard.install_artifact_or_degrade(artifact);
    println!("health after audited install: {:?}", guard.health());
    let inv = guard.call(&input).expect("healthy dispatch");
    println!(
        "healthy dispatch:  n = {:>5} -> {:<12} (model-predicted)\n",
        input.len(),
        inv.variant_name
    );

    // 3. Outage: the predicted variant starts panicking. The guard
    //    isolates the panic, retries once, quarantines the variant and
    //    falls back — callers keep getting answers.
    let blocked = 1;
    let outage = inject_failures(guard.inner_mut(), blocked, true).expect("variant exists");
    println!("-- outage begins: 'blocked' panics on every call --");
    for call in 0..2 {
        let inv = guard.call(&input).expect("fallback cascade serves");
        println!(
            "outage dispatch {}: -> {:<12} (attempts: {}, fell back: {}, breaker: {:?})",
            call,
            inv.variant_name,
            inv.attempts,
            inv.fell_back,
            guard.breaker_state(blocked).expect("breaker exists")
        );
    }

    // 4. The outage ends. After `cooldown_calls` guarded calls the
    //    breaker half-opens; the next prediction probes the variant and
    //    a single success closes it again.
    outage.store(false, std::sync::atomic::Ordering::SeqCst);
    println!("-- outage ends: waiting out the cooldown --");
    loop {
        let inv = guard.call(&input).expect("dispatch during cooldown");
        println!(
            "recovery dispatch: -> {:<12} (breaker: {:?})",
            inv.variant_name,
            guard.breaker_state(blocked).expect("breaker exists")
        );
        if !inv.fell_back {
            break;
        }
    }
    println!("\nhealth at shutdown: {:?}", guard.health());

    let stats = guard.stats();
    println!(
        "guard stats: {} calls, {} retries, {} quarantines, {} recoveries, {} fallbacks, {} degraded",
        stats.calls, stats.retries, stats.quarantines, stats.recoveries, stats.fallbacks,
        stats.degraded_calls
    );
    assert_eq!(stats.quarantines, 1, "the outage tripped the breaker once");
    assert_eq!(stats.recoveries, 1, "the probe closed the breaker again");
}
