//! Online tuning: no tuning script, no training set — the library tunes
//! itself in production (an extension toward the paper's stated goal of
//! serving "the general programming community", §VII).
//!
//! ```text
//! cargo run --release --example online_tuning
//! ```

use nitro::core::{ClassifierConfig, Context};
use nitro::simt::DeviceConfig;
use nitro::sort::keys::generate;
use nitro::sort::variants::build_code_variant;
use nitro::tuner::{OnlineCodeVariant, OnlineOptions};

fn main() {
    let ctx = Context::new();
    let mut sort = build_code_variant(&ctx, &DeviceConfig::fermi_c2050());
    sort.policy_mut().classifier = ClassifierConfig::Knn { k: 3 };

    // Wrap it: exploration starts at 50% and decays as labels accumulate.
    let mut online = OnlineCodeVariant::new(sort, OnlineOptions::default());

    // Production traffic: a mix of workloads arriving over time.
    let workloads = [
        ("uniform", false),
        ("uniform", true),
        ("almost_sorted", true),
        ("reverse", false),
    ];
    println!("{:<8} {:<22} {:<10} selected", "call", "workload", "mode");
    for call in 0..60 {
        let (category, wide) = workloads[call % workloads.len()];
        let input = generate(category, 4_000, wide, call as u64, &format!("live/{call}"));
        let before = online.stats().explorations;
        let outcome = online.call(&input).expect("dispatch succeeds");
        let mode = if online.stats().explorations > before {
            "explore"
        } else {
            "exploit"
        };
        if !(8..56).contains(&call) {
            println!(
                "{:<8} {:<22} {:<10} {}",
                call,
                format!("{category}/{}bit", if wide { 64 } else { 32 }),
                mode,
                outcome.variant_name
            );
        } else if call == 8 {
            println!("   ...");
        }
    }

    let stats = online.stats();
    println!(
        "\n{} calls: {} explorations ({} labels gathered), {} retrains",
        stats.calls,
        stats.explorations,
        online.n_labels(),
        stats.retrains
    );
    println!("Late traffic exploits a model learned entirely from live inputs.");
}
