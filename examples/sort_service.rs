//! An adaptive sorting service: tune once, persist the model, reload it
//! in a "new process", and sort mixed workloads with automatic variant
//! selection.
//!
//! ```text
//! cargo run --release --example sort_service
//! ```

use nitro::core::Context;
use nitro::simt::DeviceConfig;
use nitro::sort::keys::{generate, sort_small_sets};
use nitro::sort::variants::build_code_variant;
use nitro::tuner::Autotuner;

fn main() {
    let model_dir = std::env::temp_dir().join("nitro-sort-service");
    std::fs::create_dir_all(&model_dir).expect("create model dir");

    // --- Phase 1: offline tuning (run once, e.g. at install time). ---
    {
        let ctx = Context::with_model_dir(&model_dir);
        let mut sort = build_code_variant(&ctx, &DeviceConfig::fermi_c2050());
        let (training, _) = sort_small_sets(0xD1CE);
        let tuner = Autotuner {
            save_model: true,
            ..Default::default()
        };
        let report = tuner.tune(&mut sort, &training).expect("tuning succeeds");
        println!(
            "offline: tuned on {} sequences, model saved to {}",
            report.training_inputs,
            ctx.model_path("sort").unwrap().display()
        );
    }

    // --- Phase 2: deployment (a fresh context = a fresh process). ---
    let ctx = Context::with_model_dir(&model_dir);
    let mut sort = build_code_variant(&ctx, &DeviceConfig::fermi_c2050());
    sort.load_model().expect("model loads and validates");
    println!("online: model loaded\n");

    println!("{:<26} {:>7} {:>6}  selected", "workload", "keys", "bits");
    for (category, wide) in [
        ("uniform", false),
        ("uniform", true),
        ("almost_sorted", true),
        ("reverse", true),
        ("normal", false),
    ] {
        let input = generate(
            category,
            6_000,
            wide,
            0xACE,
            &format!("svc/{category}/{wide}"),
        );
        let outcome = sort.call(&input).expect("dispatch succeeds");
        println!(
            "{:<26} {:>7} {:>6}  {}",
            category,
            input.keys.len(),
            input.keys.bits(),
            outcome.variant_name
        );
    }

    println!("\n32-bit keys route to Radix, 64-bit to Merge/Locality, nearly-sorted");
    println!("data to Locality — matching the paper's §V-A observations.");
    std::fs::remove_dir_all(model_dir).ok();
}
