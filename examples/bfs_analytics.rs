//! Graph-analytics example: tune BFS across topologies and compare the
//! Nitro-selected variant with each fixed strategy and the dynamic
//! Hybrid baseline (paper §V-A).
//!
//! ```text
//! cargo run --release --example bfs_analytics
//! ```

use nitro::core::Context;
use nitro::graph::bfs::build_code_variant;
use nitro::graph::collection::bfs_training_set;
use nitro::graph::{gen, BfsInput, Strategy};
use nitro::simt::DeviceConfig;
use nitro::tuner::Autotuner;

fn main() {
    let cfg = DeviceConfig::fermi_c2050();
    let ctx = Context::new();
    let mut bfs = build_code_variant(&ctx, &cfg);

    let training = bfs_training_set(0x6AF);
    let report = Autotuner::new()
        .tune(&mut bfs, &training)
        .expect("tuning succeeds");
    println!("tuned BFS on {} graphs\n", report.training_inputs);

    // Three very different topologies.
    let inputs = [
        BfsInput::new("mesh-120x40", "grid", gen::grid_2d(120, 40), 3),
        BfsInput::new("social-rmat", "rmat", gen::rmat(11, 24, 77), 3),
        BfsInput::new("roads", "road", gen::road_like(64, 64, 40, 5), 3),
    ];

    println!(
        "{:<14} {:>9} {:>9}  {:<14} {:>12} {:>12}",
        "graph", "avg-deg", "deg-sd", "selected", "TEPS", "hybrid TEPS"
    );
    for input in &inputs {
        let outcome = bfs.call(input).expect("dispatch succeeds");
        let hybrid = input.hybrid_teps(&cfg);
        println!(
            "{:<14} {:>9.2} {:>9.2}  {:<14} {:>12.3e} {:>12.3e}",
            input.name,
            input.graph.avg_out_degree(),
            input.graph.degree_sd(),
            outcome.variant_name,
            outcome.objective,
            hybrid
        );
    }

    // Depth correctness sanity-check on one traversal.
    let g = &inputs[0].graph;
    let run = nitro::graph::run_bfs(g, 0, Strategy::ContractExpand, true, &cfg, 1);
    assert_eq!(run.depth, g.bfs_reference(0));
    println!("\n(traversal depths verified against the CPU reference)");
}
