//! The paper's Figure 2, end to end: a `MySparse` library whose
//! `sparse_mat_vec` entry point is Nitro-tuned internally, and an
//! end-user `main` that never sees a Nitro construct.
//!
//! ```text
//! cargo run --release --example spmv_library
//! ```

use std::sync::Mutex;

use nitro::core::{CodeVariant, Context};
use nitro::simt::DeviceConfig;
use nitro::sparse::collection::spmv_small_sets;
use nitro::sparse::spmv::build_code_variant;
use nitro::sparse::SpmvInput;
use nitro::tuner::Autotuner;

/// The expert-facing library (paper §II-B: "the details of the tuning
/// process are thus abstracted away from the end user, who can use the
/// MySparse library without ever needing to know about Nitro").
mod my_sparse {
    use super::*;

    pub struct MySparse {
        spmv: Mutex<CodeVariant<SpmvInput>>,
    }

    impl MySparse {
        /// Build the library: variants, features and constraints are
        /// registered here (Figure 2's `SparseMatVec` body), then a model
        /// is trained on representative matrices.
        pub fn new() -> Self {
            let ctx = Context::new();
            let mut spmv = build_code_variant(&ctx, &DeviceConfig::fermi_c2050());

            let (training, _) = spmv_small_sets(0x5EED);
            let report = Autotuner::new()
                .tune(&mut spmv, &training)
                .expect("tuning succeeds");
            eprintln!(
                "[my_sparse] tuned 'spmv' on {} matrices; class counts {:?}",
                report.training_inputs, report.class_counts
            );
            Self {
                spmv: Mutex::new(spmv),
            }
        }

        /// The public entry point: computes `y = A x` with the
        /// automatically selected variant, returning the chosen variant
        /// name for demonstration purposes.
        pub fn sparse_mat_vec(&self, matrix: &SpmvInput) -> (Vec<f64>, String) {
            let mut spmv = self.spmv.lock().unwrap();
            let outcome = spmv.call(matrix).expect("dispatch succeeds");
            // Nitro variants return the objective; the product itself is
            // recomputed here through the reference kernel for clarity.
            (matrix.csr.spmv_reference(&matrix.x), outcome.variant_name)
        }
    }
}

fn main() {
    // --- End-user code: no Nitro constructs below this line. ---
    let lib = my_sparse::MySparse::new();

    let (_, test_matrices) = spmv_small_sets(0x5EED);
    println!("\nmatrix                          selected variant");
    for m in test_matrices.iter().take(12) {
        let (y, variant) = lib.sparse_mat_vec(m);
        println!(
            "{:<30}  {:<12} (‖y‖₁ = {:.1})",
            m.name,
            variant,
            y.iter().map(|v| v.abs()).sum::<f64>()
        );
    }
    println!("\nBanded matrices route to DIA, uniform rows to ELL, scattered to CSR-Vec —");
    println!("all selected by the trained model, none hard-coded.");
}
