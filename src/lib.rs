//! # Nitro — adaptive code variant tuning
//!
//! Facade crate re-exporting the full workspace. See the individual crates
//! for details:
//!
//! * [`nitro_core`] — the library interface (variants, features, constraints).
//! * [`nitro_ml`] — SVM/SMO, scaling, cross-validation, active learning.
//! * [`nitro_audit`] — static analysis of registrations, artifacts and
//!   profile tables (`NITRO0xx` diagnostics).
//! * [`nitro_guard`] — resilient dispatch: retry with backoff, variant
//!   quarantine, fallback cascades and graceful degradation.
//! * [`nitro_store`] — durability and model lifecycle: resumable tuning
//!   journals, the versioned artifact store, staged promotion/rollback.
//! * [`nitro_tuner`] — the offline autotuner.
//! * [`nitro_trace`] — structured tracing, metrics and regret accounting.
//! * [`nitro_pulse`] — concurrency-first telemetry: sharded lock-free
//!   metrics, mergeable quantile sketches, continuous dispatch
//!   profiling and SLO watchdogs.
//! * [`nitro_simt`] — the simulated GPU substrate.
//! * Benchmarks: [`nitro_sparse`], [`nitro_solvers`], [`nitro_graph`],
//!   [`nitro_histogram`], [`nitro_sort`].

pub use nitro_audit as audit;
pub use nitro_core as core;
pub use nitro_graph as graph;
pub use nitro_guard as guard;
pub use nitro_histogram as histogram;
pub use nitro_ml as ml;
pub use nitro_pulse as pulse;
pub use nitro_serve as serve;
pub use nitro_simt as simt;
pub use nitro_solvers as solvers;
pub use nitro_sort as sort;
pub use nitro_sparse as sparse;
pub use nitro_store as store;
pub use nitro_trace as trace;
pub use nitro_tuner as tuner;
